"""Setuptools entry point, including the optional compiled event core.

``python setup.py build_ext --inplace`` builds ``repro.manet._evcore``
(the compiled event core of DESIGN.md §14) next to its C source under
``src/``.  The extension is strictly optional: every code path falls
back to the pure-Python reference implementation when it is missing, so
a failed build is reported as a warning, not an error, unless
``REPRO_REQUIRE_COMPILED=1`` asks for a hard failure (the CI
``tier2-compiled`` job sets it; hosts without a toolchain simply skip
the build and stay on the fallback).
"""

import os
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Build the event core if we can; degrade to pure Python if not."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # no toolchain / headers: fall back
            self._fail(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._fail(exc)

    def _fail(self, exc):
        # repro-lint: ok E301 - build-time: runs before repro is importable
        if os.environ.get("REPRO_REQUIRE_COMPILED") == "1":
            raise
        print(
            f"warning: building repro.manet._evcore failed ({exc}); "
            "the pure-Python event core will be used "
            "(set REPRO_REQUIRE_COMPILED=1 to make this fatal)",
            file=sys.stderr,
        )


# -ffp-contract=off: the bit-identity guarantee (DESIGN.md §14)
# forbids FMA contraction of the a*b+c patterns in the path-loss
# and mobility arithmetic.  Never add -ffast-math.
_COMPILE_ARGS = ["-O2", "-ffp-contract=off"]
_LINK_ARGS = []

# REPRO_SANITIZE=address,undefined builds the extension under
# ASan/UBSan for the CI tier2-analysis leg (DESIGN.md §16).  -O1 and
# frame pointers keep sanitizer reports readable; the differential
# bit-identity suite then runs against the instrumented kernel with
# LD_PRELOAD=libasan (the interpreter itself is uninstrumented).
# repro-lint: ok E301 - build-time: runs before repro is importable
_SANITIZE = os.environ.get("REPRO_SANITIZE", "").strip()
if _SANITIZE:
    _COMPILE_ARGS = [
        "-O1", "-g", "-fno-omit-frame-pointer", "-ffp-contract=off",
        f"-fsanitize={_SANITIZE}",
    ]
    _LINK_ARGS = [f"-fsanitize={_SANITIZE}"]

EVCORE = Extension(
    "repro.manet._evcore",
    sources=["src/repro/manet/_evcore.c"],
    extra_compile_args=_COMPILE_ARGS,
    extra_link_args=_LINK_ARGS,
)

setup(
    package_dir={"": "src"},
    ext_modules=[EVCORE],
    cmdclass={"build_ext": OptionalBuildExt},
)
