"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so
the package can be installed in environments without the ``wheel``
package (PEP 660 editable installs need it): ``python setup.py develop``
keeps working with plain setuptools.
"""

from setuptools import setup

setup()
