#!/usr/bin/env python
# Demonstrates: README §Package map (manet mobility models); DESIGN.md §3 mobility.
"""Is a tuned AEDB configuration robust to the mobility model?

The paper evaluates under random-walk mobility only.  This extension
example re-simulates a tuned configuration under three mobility regimes
— static, random walk (the paper's), and random waypoint — and inspects
the network topology (via the networkx-backed diagnostics) to explain
the differences.

Run:  python examples/mobility_robustness.py
"""

import numpy as np

from repro.core import AEDBMLS, MLSConfig
from repro.manet.metrics import aggregate_metrics
from repro.manet.mobility import (
    RandomWaypointMobility,
    StaticMobility,
)
from repro.manet.scenarios import make_scenarios
from repro.manet.simulator import BroadcastSimulator
from repro.manet.topology import scenario_snapshot, snapshot
from repro.tuning import make_tuning_problem


def main() -> None:
    density = 200
    print(f"tuning on {density} devices/km^2 (random walk) ...")
    problem = make_tuning_problem(density, n_networks=3)
    result = AEDBMLS(
        problem,
        MLSConfig(
            n_populations=2,
            threads_per_population=4,
            evaluations_per_thread=25,
            reset_iterations=15,
        ),
        seed=3,
    ).run()
    display = problem.display_objectives(result.objectives_matrix())
    best = result.front[int(np.argmax(display[:, 1]))]
    params = problem.params_of(best)
    print(f"selected: {params}\n")

    scenarios = make_scenarios(density, n_networks=3)
    regimes = {}
    for scenario in scenarios:
        walk = scenario.build_mobility()
        frozen = StaticMobility(
            walk.positions_at(scenario.sim.warmup_s), scenario.sim.area_side_m
        )
        waypoint = RandomWaypointMobility(
            scenario.n_nodes,
            scenario.sim.area_side_m,
            scenario.sim.horizon_s,
            rng=scenario.mobility_seed,
        )
        for label, mobility in (
            ("static", frozen),
            ("random walk", walk),
            ("random waypoint", waypoint),
        ):
            metrics = BroadcastSimulator(
                scenario, params, mobility=mobility
            ).run()
            regimes.setdefault(label, []).append(metrics)

    print(f"{'mobility':>16s} {'coverage':>9s} {'energy':>9s} "
          f"{'forward.':>9s} {'bt[s]':>7s}")
    for label, runs in regimes.items():
        m = aggregate_metrics(runs)
        print(
            f"{label:>16s} {m.coverage:>9.1f} {m.energy_dbm:>9.1f} "
            f"{m.forwardings:>9.1f} {m.broadcast_time_s:>7.2f}"
        )

    # Topology context: connectivity at broadcast time per regime.
    scenario = scenarios[0]
    walk_snap = scenario_snapshot(scenario)
    wp = RandomWaypointMobility(
        scenario.n_nodes, scenario.sim.area_side_m,
        scenario.sim.horizon_s, rng=scenario.mobility_seed,
    )
    wp_snap = snapshot(
        wp.positions_at(scenario.sim.warmup_s),
        radio=scenario.sim.radio,
        source=scenario.source,
    )
    print(
        f"\ntopology at t=30s (network 0): random walk degree "
        f"{walk_snap.mean_degree:.1f}, components "
        f"{walk_snap.component_sizes}; waypoint degree "
        f"{wp_snap.mean_degree:.1f}, components {wp_snap.component_sizes}"
    )
    print(
        "\nWaypoint mobility concentrates nodes toward the arena centre, "
        "raising connectivity — a configuration tuned under random walk "
        "stays feasible but spends more forwardings than necessary there."
    )


if __name__ == "__main__":
    main()
