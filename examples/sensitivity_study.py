#!/usr/bin/env python
# Demonstrates: README §The command line (repro-aedb sensitivity); the paper's Fig. 2 / Table I.
"""Reproduce the paper's sensitivity analysis (Sect. III-B / Fig. 2).

Runs FAST99 over the wide exploration ranges for one density, prints the
main-effect / interaction bars for the four outputs, cross-checks the
importance ranking with Morris elementary effects, and renders the
Table I summary the local-search operators were designed from.

Run:  python examples/sensitivity_study.py [--density 300] [--samples 65]
"""

import argparse

import numpy as np

from repro.experiments.figures import fig2_series
from repro.experiments.report import render_fig2
from repro.experiments.tables import table1
from repro.manet.aedb import AEDBParams
from repro.sensitivity import morris_indices
from repro.sensitivity.analysis import SENSITIVITY_RANGES
from repro.tuning import NetworkSetEvaluator


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--density", type=int, default=300)
    parser.add_argument("--samples", type=int, default=65)
    parser.add_argument("--networks", type=int, default=2)
    args = parser.parse_args()

    data = fig2_series(
        args.density, n_networks=args.networks, n_samples=args.samples
    )
    print(render_fig2(data))

    # Independent cross-check: Morris screening on the energy objective.
    evaluator = NetworkSetEvaluator.for_density(
        args.density, n_networks=args.networks
    )

    def energy_model(x: np.ndarray) -> float:
        return evaluator.evaluate(AEDBParams.from_array(x)).energy_dbm

    bounds = [(lo, hi) for _, lo, hi in SENSITIVITY_RANGES]
    names = tuple(n for n, _, _ in SENSITIVITY_RANGES)
    morris = morris_indices(energy_model, bounds, r=6, names=names, rng=1)
    print("\nMorris cross-check (energy objective):")
    print(f"  ranking by mu*: {', '.join(morris.ranking())}")

    print()
    print(
        table1(
            args.density,
            n_networks=args.networks,
            n_samples=args.samples,
        ).render()
    )


if __name__ == "__main__":
    main()
