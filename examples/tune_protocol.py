#!/usr/bin/env python
# Demonstrates: README §The command line (repro-aedb tune); DESIGN.md §8 runtime cache under an optimiser.
"""Tune AEDB with the paper's algorithm (AEDB-MLS) and inspect the front.

Runs a reduced-budget AEDB-MLS (the paper's Sect. IV algorithm: parallel
multi-start local search with BLX-α perturbations along sensitivity-
derived criteria and an Adaptive Grid Archive) on the sparsest density,
then prints the resulting energy / coverage / forwardings trade-off and
three representative operating points a protocol engineer would pick
from.

Run:  python examples/tune_protocol.py [--density 100] [--budget 40]
"""

import argparse

import numpy as np

from repro.core import AEDBMLS, MLSConfig
from repro.tuning import make_tuning_problem


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--density", type=int, default=100)
    parser.add_argument(
        "--budget", type=int, default=40,
        help="evaluations per local-search thread",
    )
    args = parser.parse_args()

    problem = make_tuning_problem(args.density, n_networks=3)
    config = MLSConfig(
        n_populations=2,
        threads_per_population=4,
        evaluations_per_thread=args.budget,
        reset_iterations=15,
        archive_capacity=60,
    )
    print(
        f"AEDB-MLS on {args.density} devices/km^2: "
        f"{config.n_populations} populations x "
        f"{config.threads_per_population} threads x "
        f"{config.evaluations_per_thread} evaluations"
    )
    result = AEDBMLS(problem, config, seed=42).run()
    display = problem.display_objectives(result.objectives_matrix())
    print(
        f"-> {len(result.front)} non-dominated configurations in "
        f"{result.runtime_s:.1f} s ({result.evaluations} evaluations)\n"
    )

    order = np.argsort(display[:, 1])  # by coverage
    print(f"{'energy[dBm]':>12s} {'coverage':>9s} {'forward.':>9s}   variables")
    for i in order:
        sol = result.front[i]
        print(
            f"{display[i, 0]:>12.1f} {display[i, 1]:>9.1f} "
            f"{display[i, 2]:>9.1f}   "
            + np.array2string(sol.variables, precision=2, suppress_small=True)
        )

    # Three operating points: frugal / balanced / max-coverage.
    frugal = result.front[int(np.argmin(display[:, 0]))]
    reach = result.front[int(np.argmax(display[:, 1]))]
    knee = result.front[
        int(np.argmin(display[:, 0] / max(display[:, 1].max(), 1) - display[:, 1]))
    ]
    print("\nsuggested operating points:")
    for label, sol in (("frugal", frugal), ("balanced", knee), ("max coverage", reach)):
        params = problem.params_of(sol)
        m = sol.attributes["metrics"]
        print(f"  {label:>12s}: {params}")
        print(f"               -> {m}")


if __name__ == "__main__":
    main()
