#!/usr/bin/env python
# Demonstrates: README §The command line (repro-aedb protocols); DESIGN.md §6 AEDB state machine.
"""Protocol showdown: AEDB against the classic broadcast-storm schemes.

The paper motivates AEDB with the *broadcast storm problem* (Ni et
al. [12]): blind flooding wastes energy and collides itself into poor
coverage.  This example runs the whole baseline suite — blind flooding,
jittered flooding, gossip, counter-based and distance-based suppression —
plus AEDB (untuned and tuned) on the same evaluation networks, at every
paper density, and prints the reachability / saved-rebroadcast /
energy trade-off table.

The "tuned" AEDB row uses a configuration from a short AEDB-MLS run,
closing the loop: the optimiser exists precisely to push that row toward
the top of this table.

Run:  python examples/protocol_showdown.py
"""

from repro import AEDBParams, make_scenarios
from repro.core import AEDBMLS, MLSConfig
from repro.manet.protocols import compare_protocols, standard_protocol_suite
from repro.manet.protocols.compare import render_comparison
from repro.manet.protocols.runner import aedb_protocol
from repro.tuning import AEDBTuningProblem, NetworkSetEvaluator


def tuned_params(scenarios) -> AEDBParams:
    """A quick MLS run; picks the highest-coverage feasible solution."""
    problem = AEDBTuningProblem(NetworkSetEvaluator(scenarios))
    config = MLSConfig(
        n_populations=2,
        threads_per_population=2,
        evaluations_per_thread=15,
        engine="serial",
    )
    result = AEDBMLS(problem, config, seed=0xC0FFEE).run()
    front = result.feasible_front() or result.front
    best = max(front, key=lambda s: -s.objectives[1])  # objectives store -coverage
    return AEDBParams.from_array(best.variables).clipped()


def main() -> None:
    for density in (100, 200, 300):
        scenarios = make_scenarios(density_per_km2=density, n_networks=3)
        print(f"\n=== {density} devices/km^2 ({scenarios[0].n_nodes} nodes) ===")

        suite = standard_protocol_suite()
        suite["AEDB(tuned)"] = aedb_protocol(tuned_params(scenarios))
        comparison = compare_protocols(suite, scenarios)
        print(render_comparison(comparison))

        best_reach = comparison.ranking("reachability")[0]
        best_srb = comparison.ranking("saved_rebroadcasts")[0]
        print(f"  best reachability: {best_reach}; most storm removed: {best_srb}")

    print(
        "\nBlind flooding self-collides (low reach, zero savings); the "
        "suppression schemes trade a little reach for large savings; AEDB "
        "adds power adaptation on top, and tuning picks the knee."
    )


if __name__ == "__main__":
    main()
