#!/usr/bin/env python
# Demonstrates: README §The command line (campaign run/status); DESIGN.md §9 persistent evaluation cache.
"""Declarative scenario-space campaign with resume.

The paper evaluates AEDB on a fixed grid of 3 densities × 10 networks.
This example shows the layer above: declare a scenario space (densities ×
mobility models × seeds), run every cell through ONE shared process pool,
and resume an interrupted campaign for free — the second run below skips
everything already on disk.

Run:  python examples/campaign_sweep.py

Equivalent CLI:
  repro-aedb campaign run --out runs/sweep \\
      --densities 100,300 --mobility random-walk,gauss-markov --seeds 3
  repro-aedb campaign report --out runs/sweep
"""

import tempfile
from pathlib import Path

from repro.campaigns import (
    CampaignExecutor,
    CampaignSpec,
    ResultStore,
    render_report,
)


def main() -> None:
    # 2 densities x 2 mobility models x 3 network draws = 12 cells, each
    # scoring the default AEDB configuration on its own network set.
    spec = CampaignSpec(
        name="mobility-sweep",
        densities=(100, 300),
        mobility_models=("random-walk", "gauss-markov"),
        n_seeds=3,
        n_networks=3,
    )
    root = Path(tempfile.mkdtemp(prefix="aedb-campaign-"))
    store = ResultStore(root)
    print(f"campaign of {spec.n_cells} cells -> {root}")

    report = CampaignExecutor(spec, store, max_workers=4).run(
        progress=lambda r: print(f"  done {r.cell.key}")
    )
    print(
        f"\nfirst run: {len(report.executed)} cells executed through one "
        f"shared pool ({report.n_simulations} simulations)"
    )

    # Resume semantics: results are content-keyed JSONL per cell, so a
    # re-run (after a crash, or tomorrow) executes only what is missing.
    again = CampaignExecutor(spec, store, max_workers=4).run()
    print(
        f"second run: {len(again.executed)} executed, "
        f"{len(again.skipped)} resumed from disk"
    )

    print()
    print(render_report(spec, store))
    print(
        "\nGauss-Markov's temporally-correlated motion keeps the network "
        "better mixed than the paper's random walk at the same density — "
        "compare the coverage column across mobility rows."
    )


if __name__ == "__main__":
    main()
