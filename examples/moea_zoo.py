#!/usr/bin/env python
# Demonstrates: README §Package map (moo optimisers) on the tuning problem of src/repro/tuning.
"""MOEA zoo: five classic optimisers and AEDB-MLS on the tuning problem.

The paper compares AEDB-MLS against NSGA-II and CellDE; the library also
ships the wider early-2000s toolbox — MOCell (the cellular GA CellDE
derives from), SPEA2 and PAES (the algorithm the Adaptive Grid Archive
comes from).  This example runs all six on one AEDB tuning instance at a
small budget, builds the joint reference front, and scores every front
with the paper's three quality indicators.

Expect the paper's qualitative picture: the MOEAs win on accuracy (IGD,
hypervolume), the local search stays competitive on spread and is the
cheapest per evaluation.

Run:  python examples/moea_zoo.py          (a few minutes)
"""

from repro.core import AEDBMLS, MLSConfig
from repro.experiments.fronts import front_matrix
from repro.moo import (
    NSGAII,
    PAES,
    SPEA2,
    CellDE,
    MOCell,
    NormalizationBounds,
    generalized_spread,
    hypervolume,
    inverted_generational_distance,
    merge_fronts,
)
from repro.tuning import make_tuning_problem

DENSITY = 100
BUDGET = 400  # evaluations per optimiser


def make_problem():
    return make_tuning_problem(DENSITY, n_networks=2, master_seed=0xAEDB)


def main() -> None:
    runs = {}
    for label, build in {
        "NSGAII": lambda p: NSGAII(p, BUDGET, population_size=20, rng=1),
        "CellDE": lambda p: CellDE(p, BUDGET, grid_side=4, rng=1),
        "MOCell": lambda p: MOCell(p, BUDGET, grid_side=4, rng=1),
        "SPEA2": lambda p: SPEA2(p, BUDGET, population_size=20, rng=1),
        "PAES": lambda p: PAES(p, BUDGET, rng=1),
        "AEDB-MLS": lambda p: AEDBMLS(
            p,
            MLSConfig(
                n_populations=2,
                threads_per_population=4,
                evaluations_per_thread=BUDGET // 8,
                engine="serial",
            ),
            seed=1,
        ),
    }.items():
        problem = make_problem()
        result = build(problem).run()
        front = [s for s in result.front if s.is_feasible] or list(result.front)
        runs[label] = (front, result)
        print(
            f"{label:>9s}: {len(front):3d} front points, "
            f"{result.evaluations} evals, {result.runtime_s:6.1f}s"
        )

    # Joint reference front + shared normalisation (the paper's Sect. VI
    # protocol, at example scale).
    reference = merge_fronts([front for front, _ in runs.values()])
    ref_matrix = front_matrix(reference)
    bounds = NormalizationBounds.from_front(ref_matrix)
    ref_norm = bounds.apply(ref_matrix)
    hv_ref_point = bounds.reference_point(0.1)

    print(f"\njoint reference front: {ref_matrix.shape[0]} points")
    print(f"{'algorithm':>9s} {'IGD':>8s} {'spread':>8s} {'HV':>8s}")
    for label, (front, _) in runs.items():
        norm = bounds.apply(front_matrix(front))
        igd = inverted_generational_distance(norm, ref_norm)
        spr = generalized_spread(norm, ref_norm)
        hv = hypervolume(norm, hv_ref_point)
        print(f"{label:>9s} {igd:>8.4f} {spr:>8.4f} {hv:>8.4f}")

    print(
        "\nLower IGD/spread and higher HV are better; the MOEAs lead on "
        "accuracy while the local search trades a little quality for a "
        "fraction of the wall-clock — the paper's headline trade-off."
    )


if __name__ == "__main__":
    main()
