#!/usr/bin/env python
# Demonstrates: README §Package map (core engines); the paper's parallel local-search claim.
"""The three AEDB-MLS execution engines side by side.

Same algorithm, same budget, three concurrency models (paper Sect. IV:
"hybrid parallel model: message-passing ... between the distributed
populations and the external archive, and shared-memory ... between
solutions in the same population"):

* serial    — deterministic round-robin reference;
* threads   — shared-memory (CPython caveat: numpy's GIL releases make
  this a semantics demo, not a speed-up, on small arrays);
* processes — message-passing populations with a parent archive server,
  the paper's deployment model.

Run:  python examples/parallel_engines.py
"""

import numpy as np

from repro.core import AEDBMLS, MLSConfig
from repro.tuning import make_tuning_problem


def main() -> None:
    base = dict(
        n_populations=2,
        threads_per_population=2,
        evaluations_per_thread=25,
        reset_iterations=15,
        archive_capacity=50,
    )
    print(f"{'engine':>10s} {'wall[s]':>8s} {'evals':>6s} {'front':>6s} "
          f"{'best coverage':>14s}")
    for engine in ("serial", "threads", "processes"):
        problem = make_tuning_problem(100, n_networks=3)
        config = MLSConfig(**base, engine=engine)
        result = AEDBMLS(problem, config, seed=11).run()
        display = problem.display_objectives(result.objectives_matrix())
        print(
            f"{engine:>10s} {result.runtime_s:>8.2f} "
            f"{result.evaluations:>6d} {len(result.front):>6d} "
            f"{display[:, 1].max():>14.1f}"
        )
        if engine == "processes":
            msgs = result.info.get("archive_messages", "?")
            print(f"{'':>10s} archive served {msgs} messages over pipes")

    print(
        "\nAll engines run the identical Fig. 3 procedure; on a "
        "many-core host the process engine is the one that scales "
        "(the paper used 8 nodes x 12 threads)."
    )


if __name__ == "__main__":
    main()
