#!/usr/bin/env python
# Demonstrates: README §Quickstart (NetworkSetEvaluator); DESIGN.md §8 runtime cache across densities.
"""How well does one tuned configuration travel across densities?

The paper optimises per density; its companion work (Ruiz et al. 2012,
reference [14]) asks for *scalable* configurations.  This example tunes
on the sparsest network set, then re-simulates the chosen operating
point on all three densities — showing why the per-density optimisation
of this paper is needed (a sparse-tuned config over-spends on dense
networks).

Run:  python examples/density_sweep.py
"""

import numpy as np

from repro.core import AEDBMLS, MLSConfig
from repro.manet.metrics import aggregate_metrics
from repro.manet.runtime import get_runtime
from repro.manet.scenarios import make_scenarios
from repro.manet.simulator import BroadcastSimulator
from repro.tuning import make_tuning_problem


def main() -> None:
    problem = make_tuning_problem(100, n_networks=3)
    config = MLSConfig(
        n_populations=2,
        threads_per_population=4,
        evaluations_per_thread=30,
        reset_iterations=15,
    )
    print("tuning on 100 devices/km^2 ...")
    result = AEDBMLS(problem, config, seed=7).run()
    display = problem.display_objectives(result.objectives_matrix())

    # Pick the highest-coverage feasible configuration.
    best = result.front[int(np.argmax(display[:, 1]))]
    params = problem.params_of(best)
    print(f"selected configuration: {params}\n")

    print(f"{'density':>8s} {'nodes':>6s} {'coverage':>12s} {'energy':>10s} "
          f"{'forward.':>9s} {'bt[s]':>7s}")
    for density in (100, 200, 300):
        scenarios = make_scenarios(density, n_networks=3)
        metrics = aggregate_metrics(
            [
                BroadcastSimulator(s, params, runtime=get_runtime(s)).run()
                for s in scenarios
            ]
        )
        print(
            f"{density:>8d} {scenarios[0].n_nodes:>6d} "
            f"{metrics.coverage:>7.1f}/{scenarios[0].n_nodes - 1:<4d} "
            f"{metrics.energy_dbm:>10.1f} {metrics.forwardings:>9.1f} "
            f"{metrics.broadcast_time_s:>7.2f}"
        )

    print(
        "\nThe sparse-tuned configuration keeps working at higher "
        "densities but burns disproportionate energy/forwardings there — "
        "the motivation for the paper's per-density tuning."
    )


if __name__ == "__main__":
    main()
