#!/usr/bin/env python
# Demonstrates: README §The command line (repro-aedb compare); the paper's Fig. 6/7 + Table IV pipeline.
"""The paper's comparison, miniaturised: NSGA-II vs CellDE vs AEDB-MLS.

Runs a few independent executions of each algorithm on one density,
builds the Reference Pareto front from the MOEAs (AGA-filtered union, as
in Sect. VI), scores every run with spread / IGD / hypervolume on
normalised fronts, and prints the Fig. 6 / Fig. 7 / Table IV artefacts.

Run:  python examples/compare_algorithms.py [--density 100] [--runs 3]
"""

import argparse

from repro.core.config import MLSConfig
from repro.experiments import build_density_artifacts, run_campaign
from repro.experiments.config import ExperimentScale
from repro.experiments.figures import fig6_series, fig7_series
from repro.experiments.report import render_fig6, render_fig7
from repro.experiments.tables import table4


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--density", type=int, default=100)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--evaluations", type=int, default=400)
    args = parser.parse_args()

    scale = ExperimentScale(
        name="example",
        n_runs=args.runs,
        n_networks=3,
        moea_evaluations=args.evaluations,
        nsgaii_population=20,
        cellde_grid_side=4,
        mls=MLSConfig(
            n_populations=2,
            threads_per_population=4,
            evaluations_per_thread=max(args.evaluations // 8, 10),
            reset_iterations=15,
        ),
    )

    campaigns = {}
    for name in ("NSGAII", "CellDE", "AEDB-MLS"):
        print(f"running {name} x{args.runs} ...", flush=True)
        campaigns[name] = run_campaign(name, args.density, scale=scale)
        runtimes = campaigns[name].runtimes
        print(f"  mean runtime {sum(runtimes) / len(runtimes):.1f} s/run")

    artifacts = build_density_artifacts(campaigns, args.density)
    print()
    print(render_fig6(fig6_series(artifacts)))
    print()
    print(render_fig7(fig7_series(artifacts)))
    print()
    print(table4({args.density: artifacts}).render())


if __name__ == "__main__":
    main()
