#!/usr/bin/env python
# Demonstrates: README §Quickstart (simulate one broadcast); DESIGN.md §2 architecture.
"""Quickstart: simulate one AEDB broadcast and read the four metrics.

Builds one of the paper's evaluation networks (300 devices/km² -> 75
nodes in a 500 m x 500 m arena), runs the dissemination with a mid-range
parameterisation, then shows how the knobs move the metrics — the
trade-off the whole paper is about.

Run:  python examples/quickstart.py
"""

from repro import AEDBParams, make_scenarios, simulate_broadcast


def main() -> None:
    scenario = make_scenarios(density_per_km2=300, n_networks=1)[0]
    print(
        f"network: {scenario.n_nodes} nodes, source node {scenario.source}, "
        f"{scenario.sim.area_side_m:.0f} m arena"
    )

    base = AEDBParams(
        min_delay_s=0.0,
        max_delay_s=1.0,
        border_threshold_dbm=-90.0,
        margin_threshold_db=1.0,
        neighbors_threshold=10.0,
    )
    print(f"\nbaseline configuration: {base}")
    print(f"  -> {simulate_broadcast(scenario, base)}")

    # Shrink the forwarding area: fewer forwarders, less energy, but the
    # message may no longer reach everyone.
    import dataclasses

    narrow = dataclasses.replace(base, border_threshold_dbm=-95.0)
    print(f"\nnarrow forwarding area (border -95 dBm):")
    print(f"  -> {simulate_broadcast(scenario, narrow)}")

    # Stretch the delay window: collisions drop but dissemination slows —
    # this is what the bt < 2 s constraint of Eq. 1 polices.
    slow = dataclasses.replace(base, min_delay_s=1.0, max_delay_s=5.0)
    print(f"\nlong delays (1-5 s):")
    print(f"  -> {simulate_broadcast(scenario, slow)}")

    print(
        "\nEach knob trades objectives against each other; "
        "examples/tune_protocol.py finds the Pareto-optimal settings."
    )


if __name__ == "__main__":
    main()
