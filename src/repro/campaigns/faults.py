"""Deterministic fault injection for the campaign resilience layer.

The chaos suite (``tests/campaigns/test_chaos.py``) needs to *cause*
worker crashes, hangs, torn store tails, and protocol exceptions on
demand — reproducibly, in specific worker processes, without patching
code across process boundaries.  This module is that plane: a fault
spec is parsed from the ``REPRO_FAULTS`` environment variable (so it
crosses ``fork``/``spawn`` for free, like every other ``REPRO_*``
toggle), and every fault decision is a pure function of the campaign
cell's content key and the attempt number — the same cell faults the
same way in every run, which is what lets chaos tests assert exact
recovery paths and byte-identical final stores.

Spec grammar (``;``-separated clauses)::

    REPRO_FAULTS="action[(param)]:selector[@N]"

    action    crash        os._exit(param or 23) — a hard worker death
              hang         time.sleep(param or 30) — a wedged worker
              raise        raise InjectedFault — a failing protocol
              torn-tail    append a partial JSON line to the freshly
                           written cell file — a crash mid-append
    selector  *            every cell
              prefix*      cell keys starting with prefix
              <hex key>    one exact cell key
              %M=R         int(sha1(key),16) % M == R — a reproducible
                           "every Mth cell" without naming keys
    @N        fire while attempt <= N (default 1): the classic
              transient fault that succeeds on retry.  @0 means always
              (a poison cell).  torn-tail counts *fires* instead of
              attempts — the store layer has no attempt in scope, and
              "tear the first N writes" is the useful chaos shape.

Example: ``crash:2f*@1;raise:%3=0@2`` — workers executing cells whose
key starts with ``2f`` die hard on the first attempt, and every cell
with ``sha1 % 3 == 0`` raises on attempts 1–2 then succeeds.

Production safety: with ``REPRO_FAULTS`` unset (the default, and the
only supported production state) both hooks reduce to one cached
``os.environ.get`` plus a ``None`` check per call — the plane has no
steady-state cost, mirroring the telemetry off-switch discipline.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass

from repro.utils import flags

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultPlane",
    "active_plane",
    "fire",
    "maybe_tear",
    "FAULTS_ENV",
]

FAULTS_ENV = "REPRO_FAULTS"

_ACTIONS = ("crash", "hang", "raise", "torn-tail")

#: Junk appended by ``torn-tail`` — a syntactically broken JSON prefix
#: with no trailing newline, exactly what a crash mid-``write`` leaves.
TORN_JUNK = '{"kind":"record","torn'


class InjectedFault(RuntimeError):
    """Raised by the ``raise`` action inside a worker."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed clause of a ``REPRO_FAULTS`` spec."""

    action: str
    selector: str
    #: crash → exit code; hang → seconds.  None = action default.
    param: float | None = None
    #: Fire while attempt (or fire count, for torn-tail) <= max_attempt;
    #: 0 = no bound (always fire).
    max_attempt: int = 1

    def matches(self, cell_key: str) -> bool:
        sel = self.selector
        if sel == "*":
            return True
        if sel.startswith("%"):
            modulus, _, residue = sel[1:].partition("=")
            return (
                int(hashlib.sha1(cell_key.encode("utf-8")).hexdigest(), 16)
                % int(modulus)
                == int(residue)
            )
        if sel.endswith("*"):
            return cell_key.startswith(sel[:-1])
        return cell_key == sel

    def armed(self, attempt: int) -> bool:
        return self.max_attempt == 0 or attempt <= self.max_attempt


def _parse_clause(clause: str) -> FaultRule:
    head, sep, selector = clause.partition(":")
    if not sep or not selector:
        raise ValueError(
            f"fault clause {clause!r} must look like action:selector[@N]"
        )
    param: float | None = None
    if "(" in head:
        head, _, raw = head.partition("(")
        raw = raw.rstrip(")")
        param = float(raw)
    action = head.strip()
    if action not in _ACTIONS:
        raise ValueError(
            f"unknown fault action {action!r} (expected one of {_ACTIONS})"
        )
    max_attempt = 1
    if "@" in selector:
        selector, _, raw = selector.rpartition("@")
        max_attempt = int(raw)
        if max_attempt < 0:
            raise ValueError(f"@N must be >= 0 in fault clause {clause!r}")
    selector = selector.strip()
    if selector.startswith("%"):
        modulus, eq, residue = selector[1:].partition("=")
        if not eq or not modulus.isdigit() or not residue.isdigit():
            raise ValueError(
                f"hash selector must be %M=R, got {selector!r}"
            )
        if int(modulus) <= 0:
            raise ValueError(f"hash selector modulus must be > 0: {selector!r}")
    return FaultRule(
        action=action, selector=selector, param=param, max_attempt=max_attempt
    )


class FaultPlane:
    """The parsed rule set for one ``REPRO_FAULTS`` value."""

    def __init__(self, spec: str):
        self.spec = spec
        self.rules = tuple(
            _parse_clause(clause.strip())
            for clause in spec.split(";")
            if clause.strip()
        )
        # torn-tail fires are counted per (rule, cell) in-process: the
        # store write path has no attempt number in scope, and a
        # process-local counter is exactly "tear the first N writes this
        # process performs for this cell".
        self._fires: dict[tuple[int, str], int] = {}
        self._lock = threading.Lock()

    def _count_fire(self, rule_index: int, cell_key: str, bound: int) -> bool:
        """Reserve one fire of a count-bounded rule; False if exhausted."""
        with self._lock:
            key = (rule_index, cell_key)
            count = self._fires.get(key, 0)
            if bound != 0 and count >= bound:
                return False
            self._fires[key] = count + 1
            return True

    # ------------------------------------------------------------------ #
    def fire(self, site: str, cell_key: str, attempt: int) -> None:
        """Trigger matching worker faults (``site`` is documentation in
        the raised error; the action set is the same everywhere)."""
        for rule in self.rules:
            if rule.action == "torn-tail":
                continue  # store-side hook, see maybe_tear()
            if not rule.armed(attempt) or not rule.matches(cell_key):
                continue
            if rule.action == "crash":
                code = 23 if rule.param is None else int(rule.param)
                os._exit(code)
            if rule.action == "hang":
                time.sleep(30.0 if rule.param is None else rule.param)
                continue  # a hang that outlives its timeout was killed
            raise InjectedFault(
                f"injected fault at {site} for cell {cell_key[:12]} "
                f"(attempt {attempt})"
            )

    def maybe_tear(self, path, cell_key: str) -> bool:
        """Append torn junk to ``path`` if a torn-tail rule fires."""
        for index, rule in enumerate(self.rules):
            if rule.action != "torn-tail" or not rule.matches(cell_key):
                continue
            if not self._count_fire(index, cell_key, rule.max_attempt):
                continue
            # repro-lint: ok J201 - this *is* the torn-tail injector
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(TORN_JUNK)
            return True
        return False


# Memoised on the env *value*, so tests that flip REPRO_FAULTS between
# runs get fresh planes while the hot path pays one dict probe.
_planes: dict[str, FaultPlane] = {}


def active_plane() -> FaultPlane | None:
    """The plane for the current ``REPRO_FAULTS`` value (None = unset)."""
    spec = flags.read_raw(FAULTS_ENV)
    if not spec:
        return None
    plane = _planes.get(spec)
    if plane is None:
        plane = FaultPlane(spec)
        _planes[spec] = plane
    return plane


def fire(site: str, cell_key: str, attempt: int) -> None:
    """Worker-side hook: crash/hang/raise if a rule matches.  No-op
    (one env lookup) when ``REPRO_FAULTS`` is unset."""
    plane = active_plane()
    if plane is not None:
        plane.fire(site, cell_key, attempt)


def maybe_tear(path, cell_key: str) -> bool:
    """Store-side hook: tear the freshly written cell file's tail if a
    ``torn-tail`` rule matches.  No-op when ``REPRO_FAULTS`` is unset."""
    plane = active_plane()
    if plane is None:
        return False
    return plane.maybe_tear(path, cell_key)
