"""Fault-tolerant campaign execution: retries, leases, heartbeats.

The resilience layer (DESIGN.md §13) makes the *scheduler* own failure
instead of the caller: a worker crash, a hung simulation, or a raising
protocol no longer aborts a campaign run.  Three pieces, shared by every
backend through the :class:`~repro.campaigns.backends.base.ExecutionContext`:

* :class:`RetryPolicy` — how many attempts a cell gets, how long to back
  off between them (exponential, with **deterministic seeded jitter**: the
  jitter is a pure function of ``(cell key, attempt)``, so two runs of
  the same campaign wait the same fractions and chaos tests replay
  exactly), the per-cell wall-clock timeout, and the worker heartbeat
  cadence.
* :class:`LeaseTable` — in-memory cell → worker leases with heartbeat
  deadlines.  The pool driver acquires a lease when a cell's first job
  enters the pool, extends it on every observed ``cell.heartbeat``, and
  treats an expired lease as a hung attempt.  The table also owns the
  per-cell attempt ledger: :meth:`LeaseTable.fail` decides *retry* vs
  *quarantine* and records poison cells in the :class:`FailureLedger`.
* :class:`FailureLedger` — the ``failures.jsonl`` file next to a
  :class:`~repro.campaigns.store.ResultStore`.  Quarantined cells are
  **recorded, never fatal**: the run completes, ``repro-aedb campaign
  failures`` renders the ledger, and entries for cells that later
  complete are pruned on the next run.

Heartbeats travel two ways.  In-process backends (inline, and the serial
executor inside a shard worker) emit ``cell.heartbeat`` telemetry events
straight into the active recorder from a daemon thread.  Pool workers
are separate processes: :func:`maybe_heartbeat` (called inside the
worker entry point) appends telemetry-shaped heartbeat lines to a
per-process file under ``REPRO_HEARTBEAT_DIR``, and the parent's
:class:`HeartbeatMonitor` tails those files incrementally to extend
leases — then folds them into the campaign's ``telemetry.jsonl`` so the
stream a dashboard tails contains the same heartbeats the scheduler saw.

Everything here observes and schedules; nothing touches payloads.  The
bit-identity contract (DESIGN.md §10) is untouched: a retried job is the
same pure function of the same cell, so recovered runs persist stores
byte-identical to fault-free ones — the invariant the chaos suite
(``tests/campaigns/test_chaos.py``) pins.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils import flags
from repro.utils.jsonl import ensure_line_boundary

__all__ = [
    "RetryPolicy",
    "Lease",
    "LeaseTable",
    "FailureLedger",
    "HeartbeatMonitor",
    "maybe_heartbeat",
    "recorder_heartbeat",
    "heartbeat_file",
    "reset_heartbeat_dir",
    "RETRY",
    "QUARANTINED",
    "HEARTBEAT_DIR_ENV",
    "HEARTBEAT_INTERVAL_ENV",
]

#: :meth:`LeaseTable.fail` verdicts.
RETRY = "retry"
QUARANTINED = "quarantined"

#: Environment plumbing for pool-worker heartbeats (set by the pool
#: backend around its worker pools, inherited by forked workers).
HEARTBEAT_DIR_ENV = "REPRO_HEARTBEAT_DIR"
HEARTBEAT_INTERVAL_ENV = "REPRO_HEARTBEAT_INTERVAL"

#: Ledger line version (readers skip foreign versions, like telemetry).
LEDGER_LINE_VERSION = 1


def _unit_fraction(key: str) -> float:
    """A deterministic uniform-ish fraction in [0, 1) from a string key.

    sha1-based like every other content keying in the campaign layer, so
    the jitter a cell draws is reproducible across processes and runs.
    """
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout/heartbeat budget for one campaign run.

    The default policy retries (3 attempts with sub-second backoff) but
    imposes no timeout and runs no heartbeats — resilient to crashes and
    raises at zero steady-state cost.  :meth:`disabled` restores the
    pre-§13 fail-fast behaviour (one attempt, nothing else).
    """

    #: Times a cell may be attempted before it is quarantined.
    max_attempts: int = 3
    #: Backoff before attempt 2 (seconds); grows by ``backoff_factor``.
    base_delay_s: float = 0.05
    backoff_factor: float = 2.0
    #: Backoff cap (pre-jitter), seconds.
    max_delay_s: float = 5.0
    #: Jitter fraction: the delay is scaled by ``1 + jitter * u`` where
    #: ``u`` is the cell's deterministic unit fraction — de-synchronises
    #: retry stampedes without sacrificing reproducibility.
    jitter: float = 0.1
    #: Per-cell wall-clock cap per attempt (None = no timeout).  Only
    #: preemptive backends (pool) can enforce it.
    cell_timeout_s: float | None = None
    #: Worker heartbeat cadence (None = heartbeats off).
    heartbeat_s: float | None = None
    #: Heartbeat silence that expires a lease (None = derived:
    #: ``max(5 * heartbeat_s, 1.0)``).
    heartbeat_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")
        for name in ("cell_timeout_s", "heartbeat_s", "heartbeat_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """No retries, no timeouts, no heartbeats (fail-fast baseline)."""
        return cls(max_attempts=1)

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """JSON-serializable form (the remote shard request carries it,
        so a remote in-shard quarantine spends the parent's budget)."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        """Inverse of :meth:`as_dict`; unknown keys are rejected by the
        constructor (a policy must never silently lose a field)."""
        return cls(**data)

    # ------------------------------------------------------------------ #
    @property
    def retries_enabled(self) -> bool:
        return self.max_attempts > 1

    @property
    def liveness_timeout_s(self) -> float | None:
        """Heartbeat silence treated as a hung attempt (None = off)."""
        if self.heartbeat_s is None:
            return None
        if self.heartbeat_timeout_s is not None:
            return self.heartbeat_timeout_s
        return max(5.0 * self.heartbeat_s, 1.0)

    def allows(self, attempts: int) -> bool:
        """May a cell that has failed ``attempts`` times try again?"""
        return attempts < self.max_attempts

    def delay_for(self, cell_key: str, attempt: int) -> float:
        """Backoff before re-running ``cell_key`` after failed ``attempt``.

        Deterministic: exponential in the attempt number, capped at
        ``max_delay_s``, scaled by the cell's seeded jitter fraction —
        a pure function of the arguments, so recovery schedules replay.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
        )
        return delay * (1.0 + self.jitter * _unit_fraction(
            f"{cell_key}#{attempt}"
        ))


# --------------------------------------------------------------------- #
@dataclass
class Lease:
    """One in-flight cell: who runs it, which attempt, until when."""

    cell: str
    worker: str
    attempt: int
    acquired_t: float
    #: Wall-clock cap for this attempt (None = no timeout).
    hard_deadline: float | None = None
    #: Heartbeat-silence deadline (None = liveness tracking off).
    liveness_deadline: float | None = None
    #: Monotonic time of the last observed heartbeat (0 = none yet).
    last_beat_t: float = 0.0

    def expired(self, now: float) -> bool:
        if self.hard_deadline is not None and now > self.hard_deadline:
            return True
        return (
            self.liveness_deadline is not None
            and now > self.liveness_deadline
        )


class LeaseTable:
    """Cell → worker leases plus the per-cell attempt/quarantine ledger.

    Thread-safe (the pool driver's heartbeat poll and drain loop share
    it).  Attempt accounting is per cell and per *attempt generation*:
    :meth:`fail` records ``attempts[cell] = max(attempts, attempt)``, so
    ten jobs of one cell all failing on attempt 1 count as one failed
    attempt, not ten — the unit the quarantine budget is spent in is a
    whole cell execution, matching the retry unit.
    """

    def __init__(self, policy: RetryPolicy, ledger: "FailureLedger | None" = None):
        self.policy = policy
        self.ledger = ledger
        self._lock = threading.Lock()
        self._leases: dict[str, Lease] = {}
        #: Highest attempt number that has failed, per cell.
        self._attempts: dict[str, int] = {}
        #: ``cell -> (attempts, error)`` for poisoned cells.
        self.quarantined: dict[str, tuple[int, str]] = {}
        #: Total failure events observed (telemetry roll-up).
        self.failures = 0
        #: Jobs/cells put back on the queue after a loss (telemetry).
        self.requeues = 0

    # ------------------------------------------------------------------ #
    def attempts(self, cell: str) -> int:
        """How many attempts of ``cell`` have failed so far."""
        with self._lock:
            return self._attempts.get(cell, 0)

    def next_attempt(self, cell: str) -> int:
        """The attempt number the next execution of ``cell`` runs as."""
        return self.attempts(cell) + 1

    def seed_attempts(self, mapping: dict[str, int]) -> None:
        """Pre-charge the attempt ledger with failures counted elsewhere
        (a shard recovery pass forwarding the parent's accounting)."""
        with self._lock:
            for cell, n in mapping.items():
                self._attempts[cell] = max(
                    self._attempts.get(cell, 0), int(n)
                )

    def is_quarantined(self, cell: str) -> bool:
        with self._lock:
            return cell in self.quarantined

    @property
    def active(self) -> list[Lease]:
        with self._lock:
            return list(self._leases.values())

    # ------------------------------------------------------------------ #
    def acquire(
        self, cell: str, worker: str, now: float | None = None
    ) -> Lease:
        """Lease ``cell`` to ``worker`` for its next attempt.

        The hard deadline applies from acquisition; the liveness
        deadline arms only when the policy runs heartbeats (a worker
        that never manages a first beat within the liveness window
        counts as hung — the pool driver keeps in-flight ≤ workers, so
        a leased job is running, not queued).
        """
        now = time.monotonic() if now is None else now
        policy = self.policy
        lease = Lease(
            cell=cell,
            worker=worker,
            attempt=self.next_attempt(cell),
            acquired_t=now,
            hard_deadline=(
                now + policy.cell_timeout_s
                if policy.cell_timeout_s is not None
                else None
            ),
            liveness_deadline=(
                now + policy.liveness_timeout_s
                if policy.liveness_timeout_s is not None
                else None
            ),
        )
        with self._lock:
            self._leases[cell] = lease
        return lease

    def holds(self, cell: str) -> bool:
        """Is a lease currently held for ``cell``?"""
        with self._lock:
            return cell in self._leases

    def attempt_of(self, cell: str) -> int | None:
        """The active lease's attempt number (None = no lease held)."""
        with self._lock:
            lease = self._leases.get(cell)
            return None if lease is None else lease.attempt

    def touch(self, cell: str, now: float | None = None) -> bool:
        """Progress evidence (a job of the cell completed): extend the
        hard *and* liveness deadlines — the per-cell timeout bounds
        inactivity, so a wide cell draining jobs steadily never trips
        it, while a wedged one does."""
        now = time.monotonic() if now is None else now
        policy = self.policy
        with self._lock:
            lease = self._leases.get(cell)
            if lease is None:
                return False
            lease.last_beat_t = now
            if policy.cell_timeout_s is not None:
                lease.hard_deadline = now + policy.cell_timeout_s
            if policy.liveness_timeout_s is not None:
                lease.liveness_deadline = now + policy.liveness_timeout_s
            return True

    def beat(self, cell: str, now: float | None = None) -> bool:
        """Extend ``cell``'s liveness deadline; False for unknown leases."""
        now = time.monotonic() if now is None else now
        timeout = self.policy.liveness_timeout_s
        with self._lock:
            lease = self._leases.get(cell)
            if lease is None:
                return False
            lease.last_beat_t = now
            if timeout is not None:
                lease.liveness_deadline = now + timeout
            return True

    def expired(self, now: float | None = None) -> list[Lease]:
        """Leases past their hard or liveness deadline (still held)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            return [l for l in self._leases.values() if l.expired(now)]

    def release(self, cell: str) -> None:
        with self._lock:
            self._leases.pop(cell, None)

    # ------------------------------------------------------------------ #
    def fail(self, cell: str, error: str, attempt: int | None = None) -> str:
        """Record one failed attempt; decide :data:`RETRY` or
        :data:`QUARANTINED` (the latter lands in the ledger)."""
        with self._lock:
            lease = self._leases.pop(cell, None)
            if attempt is None:
                attempt = (
                    lease.attempt
                    if lease is not None
                    else self._attempts.get(cell, 0) + 1
                )
            self._attempts[cell] = max(self._attempts.get(cell, 0), attempt)
            self.failures += 1
            attempts = self._attempts[cell]
            if self.policy.allows(attempts):
                return RETRY
            self.quarantined[cell] = (attempts, error)
        if self.ledger is not None:
            self.ledger.record(cell, attempts=attempts, error=error)
        return QUARANTINED

    def adopt_quarantine(self, cell: str, attempts: int, error: str) -> None:
        """Register a quarantine decided elsewhere (a shard worker's
        in-shard executor already wrote its own ledger — no re-record)."""
        with self._lock:
            self._attempts[cell] = max(self._attempts.get(cell, 0), attempts)
            self.quarantined[cell] = (attempts, error)
            self._leases.pop(cell, None)

    def count_requeue(self, n: int = 1) -> None:
        with self._lock:
            self.requeues += n


# --------------------------------------------------------------------- #
class FailureLedger:
    """``failures.jsonl`` — the quarantine record next to a store.

    Append-only JSON Lines under the repo-wide torn-tail contract: a
    line cut mid-append is skipped by every reader, never an error.
    Like ``telemetry.jsonl``, the ledger is deliberately *outside* the
    bit-identity surface — it records wall-clock and error text, and
    exists precisely for the runs whose stores are incomplete.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def record(
        self, cell: str, attempts: int, error: str, worker: str = ""
    ) -> None:
        """Append one quarantine entry (whole line, flushed)."""
        line = json.dumps(
            {
                "v": LEDGER_LINE_VERSION,
                "kind": "failure",
                "cell": cell,
                "attempts": int(attempts),
                "error": str(error),
                "worker": worker,
                "t": time.time(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        ensure_line_boundary(self.path)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    def entries(self) -> list[dict]:
        """Parsed ledger entries, newest last; torn/foreign lines skipped."""
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        out: list[dict] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crash mid-append
            if (
                isinstance(obj, dict)
                and obj.get("v") == LEDGER_LINE_VERSION
                and obj.get("kind") == "failure"
                and "cell" in obj
            ):
                out.append(obj)
        return out

    def latest_by_cell(self) -> dict[str, dict]:
        """The newest entry per cell (a re-quarantined cell supersedes)."""
        latest: dict[str, dict] = {}
        for entry in self.entries():
            latest[str(entry["cell"])] = entry
        return latest

    def prune(self, completed_keys: set[str]) -> int:
        """Drop entries for cells that have since completed; dedup by
        cell (newest wins).  Returns the number of entries removed."""
        entries = self.entries()
        latest = self.latest_by_cell()
        keep = [
            entry
            for cell, entry in sorted(latest.items())
            if cell not in completed_keys
        ]
        removed = len(entries) - len(keep)
        if removed <= 0:
            return 0
        if not keep:
            self.path.unlink(missing_ok=True)
            return removed
        lines = [
            json.dumps(entry, sort_keys=True, separators=(",", ":"))
            for entry in keep
        ]
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text("\n".join(lines) + "\n")
        os.replace(tmp, self.path)
        return removed

    def fold_from(self, source: "FailureLedger | str | Path") -> int:
        """Fold another ledger's parseable entries in (shard aggregation).

        Line-level append of whole flushed lines — the same safety
        argument as ``merge_telemetry_files`` — but **idempotent**:
        an entry whose canonical serialization is already present in
        this ledger is skipped, so folding the same shard's
        ``failures.jsonl`` twice (the retry-after-partial-fetch case
        the remote transport makes routine) records each quarantine
        exactly once.  Entries carry wall-clock timestamps, so distinct
        quarantine events never collide.  Returns lines appended.
        """
        src = (
            source
            if isinstance(source, FailureLedger)
            else FailureLedger(source)
        )
        entries = src.entries()
        if not entries:
            return 0
        seen = {
            json.dumps(entry, sort_keys=True, separators=(",", ":"))
            for entry in self.entries()
        }
        lines = [
            line
            for line in (
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
                for entry in entries
            )
            if line not in seen
        ]
        if not lines:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        ensure_line_boundary(self.path)
        with self.path.open("a", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
            fh.flush()
        return len(lines)


# --------------------------------------------------------------------- #
# Heartbeats.
class _HeartbeatThread:
    """Daemon thread calling ``emit()`` immediately and every interval."""

    def __init__(self, interval_s: float, emit) -> None:
        self._interval = interval_s
        self._emit = emit
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while True:
            try:
                self._emit()
            except Exception:  # noqa: BLE001 - observation must not kill work
                return
            if self._stop.wait(self._interval):
                return

    def __enter__(self) -> "_HeartbeatThread":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def recorder_heartbeat(cell: str, interval_s: float | None, recorder):
    """Context manager emitting ``cell.heartbeat`` telemetry events from
    a daemon thread for the duration of an in-process cell execution
    (the inline backend's side of the heartbeat contract).  ``None``
    interval → a no-op context."""
    if interval_s is None:
        return nullcontext()
    return _HeartbeatThread(
        interval_s, lambda: recorder.event("cell.heartbeat", cell=cell)
    )


class _WorkerSink:
    """Per-process append handle for a worker's heartbeat file."""

    def __init__(self, directory: str):
        self.path = Path(directory) / f"heartbeat-{os.getpid()}.jsonl"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        ensure_line_boundary(self.path)
        self._fh = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, cell: str) -> None:
        # Telemetry-shaped event lines, so the parent can both parse
        # them for liveness and fold the file straight into
        # telemetry.jsonl at the end of the run.
        line = json.dumps(
            {
                "v": 1,
                "kind": "event",
                "name": "cell.heartbeat",
                "t": time.time(),
                "attrs": {"cell": cell, "pid": os.getpid()},
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()


_worker_sinks: dict[str, _WorkerSink] = {}
_worker_sinks_lock = threading.Lock()


def _worker_sink(directory: str) -> _WorkerSink:
    with _worker_sinks_lock:
        sink = _worker_sinks.get(directory)
        if sink is None or os.getpid() != int(
            sink.path.stem.split("-", 1)[1]
        ):
            sink = _WorkerSink(directory)
            _worker_sinks[directory] = sink
        return sink


def maybe_heartbeat(cell: str):
    """The worker-side heartbeat hook (called by ``_execute_job``).

    When the parent exported :data:`HEARTBEAT_DIR_ENV` (the pool driver
    with ``heartbeat_s`` set), returns a context manager that streams
    ``cell.heartbeat`` lines to this process's heartbeat file at the
    exported cadence; otherwise a shared no-op — two env lookups per
    job, nothing else.
    """
    directory = flags.read_raw(HEARTBEAT_DIR_ENV)
    if not directory:
        return nullcontext()
    interval = flags.read_float(HEARTBEAT_INTERVAL_ENV, 1.0)
    sink = _worker_sink(directory)
    return _HeartbeatThread(interval, lambda: sink.emit(cell))


def reset_heartbeat_dir(directory: str | Path) -> int:
    """Scrub stale per-PID heartbeat files at run (or lease) start.

    Heartbeat files are named ``heartbeat-<pid>.jsonl`` and *survive*
    the process that wrote them — which is exactly right mid-run (the
    monitor must read a dead worker's last beats) and exactly wrong
    across runs: in a persistent directory (the campaign daemon's task
    dirs, a user-exported :data:`HEARTBEAT_DIR_ENV`), a file left by a
    previous run still looks live for a whole liveness window, and a
    recycled PID appending to it can mask a hung worker indefinitely.
    Callers that reuse a heartbeat directory call this before arming a
    :class:`HeartbeatMonitor`; per-run ``mkdtemp`` directories (the pool
    driver) are namespaced fresh and never need it.  Returns the number
    of stale files removed; a missing directory is not an error.
    """
    directory = Path(directory)
    removed = 0
    try:
        files = sorted(directory.glob("heartbeat-*.jsonl"))
    except OSError:
        return 0
    for path in files:
        try:
            path.unlink()
            removed += 1
        except OSError:
            continue
    return removed


@contextmanager
def heartbeat_file(directory: str | Path, label: str, interval_s: float):
    """Stream ``cell.heartbeat`` lines for ``label`` to a per-PID file
    under ``directory`` for the duration of the context.

    The service-scope worker beat: a campaign-daemon worker wraps each
    leased shard execution in this, so the serving side's
    :class:`HeartbeatMonitor` + :class:`LeaseTable` detect a killed
    worker by silence — the same machinery the pool driver uses per
    run, lifted to the fleet.  Beats start immediately (before any
    heavy imports or scenario setup in the work itself).
    """
    Path(directory).mkdir(parents=True, exist_ok=True)
    sink = _WorkerSink(str(directory))
    with _HeartbeatThread(interval_s, lambda: sink.emit(label)):
        yield


class HeartbeatMonitor:
    """Parent-side incremental tail over a heartbeat directory.

    :meth:`poll` reads only bytes appended since the previous poll and
    returns the cells that beat, tolerating the partial line a worker
    may be mid-append on (carried to the next poll — the torn-tail
    contract, applied to a live file).  :meth:`fold_into` appends every
    complete heartbeat file to the campaign's telemetry stream.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        #: path -> (byte offset consumed, carried partial line)
        self._progress: dict[Path, tuple[int, str]] = {}

    def poll(self) -> dict[str, float]:
        """``{cell: last unix heartbeat time}`` from newly appended lines."""
        beats: dict[str, float] = {}
        try:
            files = sorted(self.directory.glob("heartbeat-*.jsonl"))
        except OSError:
            return beats
        for path in files:
            offset, carry = self._progress.get(path, (0, ""))
            try:
                with path.open("r", encoding="utf-8") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
                    offset = fh.tell()
            except OSError:
                continue
            text = carry + chunk
            lines = text.split("\n")
            carry = lines.pop()  # "" on a clean final newline
            self._progress[path] = (offset, carry)
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                attrs = obj.get("attrs") or {}
                cell = attrs.get("cell")
                if obj.get("name") == "cell.heartbeat" and cell:
                    t = float(obj.get("t", 0.0))
                    if t >= beats.get(cell, 0.0):
                        beats[cell] = t
        return beats

    def fold_into(self, telemetry_path: str | Path) -> int:
        """Append every heartbeat file to ``telemetry_path`` (once, at
        the end of a run); returns lines appended."""
        from repro.telemetry import merge_telemetry_files

        total = 0
        for path in sorted(self.directory.glob("heartbeat-*.jsonl")):
            total += merge_telemetry_files(telemetry_path, path)
        return total


@contextmanager
def heartbeat_env(directory: str | Path, interval_s: float):
    """Export the worker heartbeat env around a pool's lifetime."""
    previous = {
        HEARTBEAT_DIR_ENV: flags.read_raw(HEARTBEAT_DIR_ENV),
        HEARTBEAT_INTERVAL_ENV: flags.read_raw(HEARTBEAT_INTERVAL_ENV),
    }
    # The blessed propagation seam: exports the heartbeat env to
    # forked pool workers, restored on exit below.
    os.environ[HEARTBEAT_DIR_ENV] = str(directory)  # repro-lint: ok E303
    os.environ[HEARTBEAT_INTERVAL_ENV] = repr(float(interval_s))  # repro-lint: ok E303
    try:
        yield
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
