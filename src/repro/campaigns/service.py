"""Campaign daemon: a file-queue service over the remote shard protocol.

The minimal fleet runtime (DESIGN.md §15): campaigns are **submitted**
as content-keyed descriptors into a queue directory, a **daemon**
(``repro-aedb campaign serve``) drains the queue by running each
campaign through :class:`~repro.campaigns.backends.remote.RemoteShardBackend`
with a :class:`QueueTransport`, and a fleet of **workers**
(``repro-aedb campaign worker``) claims leased shard tasks, executes
them with :func:`~repro.campaigns.backends.remote.execute_request`, and
reports back — all through one shared directory, so the service runs on
a laptop, a shared filesystem, or anything that can mount the root.

Root layout (everything atomic-rename staged, torn-tail tolerant)::

    <root>/queue/campaign-<digest>.json   submitted work (content-keyed)
    <root>/tasks/<task-id>/bundle/        one shard bundle (request.json,
                                          warm.jsonl, store/)
    <root>/tasks/<task-id>/todo           the claim token
    <root>/tasks/<task-id>/claimed-<w>    rename target: worker w owns it
    <root>/tasks/<task-id>/hb/            worker heartbeat files
    <root>/tasks/<task-id>/done           worker finished (result in bundle)
    <root>/tasks/<task-id>/failed.json    worker raised (error record)
    <root>/done/ | <root>/failed/         served campaign descriptors

Fault tolerance reuses the §13 machinery at service scope, not a new
protocol: a worker wraps each claimed task in
:func:`~repro.campaigns.resilience.heartbeat_file`, the serving side
arms a :class:`~repro.campaigns.resilience.LeaseTable` on claim and
extends it from a :class:`~repro.campaigns.resilience.HeartbeatMonitor`
over the task's ``hb/`` directory — so a ``kill -9``'d worker is
detected by silence, surfaces as a
:class:`~repro.campaigns.backends.transport.TransportError`, and the
remote backend's inherited recovery loop requeues the shard's lost
cells onto the survivors.  Claims are atomic ``os.rename`` of the claim
token: two workers racing for one task cannot both win.

Resume is free: the store is content-keyed, so re-submitting or
re-serving a half-finished campaign re-executes only its pending cells,
and a requeued shard ships its partial store back out as the bundle
seed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
import time
from contextlib import nullcontext
from pathlib import Path

from repro.campaigns.backends.remote import (
    RemoteShardBackend,
    execute_request,
)
from repro.campaigns.backends.transport import (
    REQUEST_FILE,
    RESULT_FILE,
    STORE_DIR,
    TransportError,
    fetch_tree,
)
from repro.campaigns.resilience import (
    HeartbeatMonitor,
    LeaseTable,
    RetryPolicy,
    heartbeat_file,
    reset_heartbeat_dir,
)
from repro.campaigns.spec import CampaignSpec, canonical_json
from repro.campaigns.store import ResultStore

__all__ = [
    "QueueTransport",
    "CampaignDaemon",
    "submit_campaign",
    "serve_worker",
    "QUEUE_DIR",
    "TASKS_DIR",
]

QUEUE_DIR = "queue"
TASKS_DIR = "tasks"
DONE_DIR = "done"
FAILED_DIR = "failed"

#: Task-directory member names (the worker-visible protocol).
TODO_FILE = "todo"
DONE_FILE = "done"
FAILED_FILE = "failed.json"
BUNDLE_DIR = "bundle"
HB_DIR = "hb"

_task_counter = itertools.count()


def _atomic_write_json(path: Path, obj: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(obj, sort_keys=True, indent=1))
    os.replace(tmp, path)


# --------------------------------------------------------------------- #
def submit_campaign(
    root: str | Path,
    spec: CampaignSpec,
    store_dir: str | Path,
    name: str | None = None,
) -> Path:
    """Enqueue a campaign descriptor; returns the queue file path.

    Content-keyed on ``(spec, store)`` and therefore **idempotent**: a
    duplicate submit of the same campaign to the same store is a no-op
    returning the existing entry — safe to retry blindly, like every
    other write in the campaign layer.
    """
    root = Path(root)
    queue = root / QUEUE_DIR
    queue.mkdir(parents=True, exist_ok=True)
    descriptor = {
        "v": 1,
        "spec": json.loads(spec.to_json()),
        "store": str(Path(store_dir).resolve()),
    }
    digest = hashlib.sha1(
        canonical_json(descriptor).encode("utf-8")
    ).hexdigest()[:10]
    slug = name or "campaign"
    path = queue / f"{slug}-{digest}.json"
    if path.exists():
        return path
    _atomic_write_json(path, descriptor)
    return path


# --------------------------------------------------------------------- #
class QueueTransport:
    """ShardTransport over a shared task directory and a worker fleet.

    ``run_shard`` **stages** the bundle as an atomically-renamed task
    directory with a claim token, then **waits**: before a claim, for
    ``claim_timeout_s``; after one, on the §13 lease/heartbeat contract
    (silence past the policy's liveness window = lost worker).  Success
    fetches the bundle's store back with the same idempotent file copies
    the loopback transport uses; every failure path salvages whatever
    partial store the worker left before raising
    :class:`~repro.campaigns.backends.transport.TransportError`, so
    completed cells always merge back.
    """

    name = "queue"

    def __init__(
        self,
        root: str | Path,
        policy: RetryPolicy | None = None,
        poll_s: float = 0.05,
        claim_timeout_s: float = 60.0,
        task_timeout_s: float | None = None,
    ):
        """``policy`` supplies the heartbeat liveness window (a policy
        without ``heartbeat_s`` disables silence detection — then only
        ``task_timeout_s``, if set, bounds a claimed task)."""
        self.root = Path(root)
        self.policy = policy or RetryPolicy()
        self.poll_s = poll_s
        self.claim_timeout_s = claim_timeout_s
        self.task_timeout_s = task_timeout_s

    def run_shard(
        self, shard_key: str, bundle_dir: Path, dest_store: Path
    ) -> dict:
        task_dir = self._stage(shard_key, bundle_dir)
        bundle = task_dir / BUNDLE_DIR
        try:
            return self._await_result(shard_key, task_dir, bundle, dest_store)
        finally:
            shutil.rmtree(task_dir, ignore_errors=True)

    # ------------------------------------------------------------------ #
    def _stage(self, shard_key: str, bundle_dir: Path) -> Path:
        """Publish the bundle as a claimable task (atomic rename)."""
        tasks = self.root / TASKS_DIR
        tasks.mkdir(parents=True, exist_ok=True)
        task_id = f"{shard_key}-{os.getpid()}-{next(_task_counter):04d}"
        stage = tasks / f".stage-{task_id}"
        shutil.copytree(bundle_dir, stage / BUNDLE_DIR)
        (stage / HB_DIR).mkdir()
        (stage / TODO_FILE).write_text(shard_key + "\n")
        task_dir = tasks / task_id
        os.rename(stage, task_dir)
        return task_dir

    def _await_result(
        self, shard_key: str, task_dir: Path, bundle: Path, dest_store: Path
    ) -> dict:
        leases = LeaseTable(self.policy)
        monitor = HeartbeatMonitor(task_dir / HB_DIR)
        staged_t = time.monotonic()
        claimed_t: float | None = None
        while True:
            if (task_dir / DONE_FILE).exists():
                result_path = bundle / RESULT_FILE
                if not result_path.exists():
                    self._salvage(bundle, dest_store)
                    raise TransportError(
                        f"worker for {shard_key} reported done "
                        "without a result"
                    )
                summary = json.loads(result_path.read_text())
                fetch_tree(bundle / STORE_DIR, dest_store)
                return summary
            failed_path = task_dir / FAILED_FILE
            if failed_path.exists():
                self._salvage(bundle, dest_store)
                try:
                    error = json.loads(failed_path.read_text())
                except (OSError, json.JSONDecodeError):
                    error = {}
                raise TransportError(
                    f"worker for {shard_key} failed: "
                    f"{error.get('error', 'unknown error')}"
                )
            now = time.monotonic()
            if claimed_t is None:
                claimant = self._claimant(task_dir)
                if claimant is not None:
                    claimed_t = now
                    leases.acquire(shard_key, claimant, now=now)
                elif now - staged_t > self.claim_timeout_s:
                    raise TransportError(
                        f"no worker claimed {shard_key} within "
                        f"{self.claim_timeout_s}s"
                    )
            else:
                beats = monitor.poll()
                if shard_key in beats:
                    leases.beat(shard_key, now=now)
                if leases.expired(now=now):
                    self._salvage(bundle, dest_store)
                    raise TransportError(
                        f"worker for {shard_key} went silent "
                        "(heartbeat lease expired)"
                    )
                if (
                    self.task_timeout_s is not None
                    and now - claimed_t > self.task_timeout_s
                ):
                    self._salvage(bundle, dest_store)
                    raise TransportError(
                        f"worker for {shard_key} exceeded "
                        f"{self.task_timeout_s}s"
                    )
            time.sleep(self.poll_s)

    @staticmethod
    def _claimant(task_dir: Path) -> str | None:
        for path in task_dir.glob("claimed-*"):
            return path.name[len("claimed-"):]
        return None

    @staticmethod
    def _salvage(bundle: Path, dest_store: Path) -> None:
        fetch_tree(bundle / STORE_DIR, dest_store, partial_ok=True)


# --------------------------------------------------------------------- #
def serve_worker(
    root: str | Path,
    worker_id: str | None = None,
    once: bool = False,
    poll_s: float = 0.05,
    stop=None,
) -> int:
    """Worker loop: claim shard tasks under ``root`` and execute them.

    Claiming is an atomic rename of the task's ``todo`` token to
    ``claimed-<worker_id>`` — exactly one racing worker wins.  Each
    claimed task runs under a service-scope heartbeat
    (:func:`~repro.campaigns.resilience.heartbeat_file`, cadence from
    the request's shipped retry policy), after scrubbing any stale
    heartbeat files from a previous tenancy of the task directory.  A
    worker never dies of a task: execution errors are reported as the
    task's ``failed.json`` and the loop continues.  ``once=True`` drains
    the currently claimable tasks and returns; otherwise the loop polls
    until ``stop()`` (when given) returns true.  Returns the number of
    tasks processed.
    """
    root = Path(root)
    worker = worker_id or f"worker-{os.getpid()}"
    tasks_dir = root / TASKS_DIR
    processed = 0
    while True:
        claimed_any = False
        for todo in sorted(tasks_dir.glob(f"*/{TODO_FILE}")):
            task_dir = todo.parent
            try:
                os.rename(todo, task_dir / f"claimed-{worker}")
            except OSError:
                continue  # another worker won the rename
            claimed_any = True
            processed += 1
            _run_task(task_dir, worker)
        if once and (claimed_any or not sorted(
            tasks_dir.glob(f"*/{TODO_FILE}")
        )):
            return processed
        if stop is not None and stop():
            return processed
        time.sleep(poll_s)


def _run_task(task_dir: Path, worker: str) -> None:
    """Execute one claimed task; report ``done`` or ``failed.json``."""
    bundle = task_dir / BUNDLE_DIR
    try:
        request = json.loads((bundle / REQUEST_FILE).read_text())
        label = str(request.get("shard_key", task_dir.name))
        policy_dict = request.get("retry_policy") or {}
        interval = policy_dict.get("heartbeat_s")
        hb_dir = task_dir / HB_DIR
        # A re-staged task directory (or recycled PID) must not inherit
        # a previous tenant's beats — they would mask this worker dying.
        reset_heartbeat_dir(hb_dir)
        beat = (
            heartbeat_file(hb_dir, label, float(interval))
            if interval
            else nullcontext()
        )
        with beat:
            execute_request(bundle)
        (task_dir / DONE_FILE).write_text(worker + "\n")
    except Exception as exc:  # noqa: BLE001 - reported, never fatal
        try:
            _atomic_write_json(
                task_dir / FAILED_FILE,
                {"v": 1, "worker": worker, "error": repr(exc)},
            )
        except OSError:
            pass


# --------------------------------------------------------------------- #
class CampaignDaemon:
    """Drain the submit queue through the remote backend.

    One daemon instance serves campaigns sequentially (each campaign
    already fans out across the worker fleet shard-wise); a served
    descriptor moves to ``done/`` — or ``failed/`` with an error record,
    without stopping the queue.
    """

    def __init__(
        self,
        root: str | Path,
        n_shards: int = 2,
        policy: RetryPolicy | None = None,
        keep_shards: bool = False,
        poll_s: float = 0.05,
        claim_timeout_s: float = 60.0,
        task_timeout_s: float | None = None,
        max_workers: int | None = None,
    ):
        self.root = Path(root)
        self.n_shards = int(n_shards)
        self.policy = policy or RetryPolicy()
        self.keep_shards = keep_shards
        self.poll_s = poll_s
        self.claim_timeout_s = claim_timeout_s
        self.task_timeout_s = task_timeout_s
        self.max_workers = max_workers

    def transport(self) -> QueueTransport:
        return QueueTransport(
            self.root,
            policy=self.policy,
            poll_s=self.poll_s,
            claim_timeout_s=self.claim_timeout_s,
            task_timeout_s=self.task_timeout_s,
        )

    # ------------------------------------------------------------------ #
    def serve_once(self) -> list[dict]:
        """Serve every currently queued campaign; returns outcome rows
        ``{"name", "store", "ok", "report" | "error"}`` in queue order."""
        from repro.campaigns.executor import CampaignExecutor

        outcomes: list[dict] = []
        queue = self.root / QUEUE_DIR
        for path in sorted(queue.glob("*.json")) if queue.is_dir() else []:
            descriptor = json.loads(path.read_text())
            spec = CampaignSpec.from_json(
                json.dumps(descriptor["spec"])
            )
            store = ResultStore(descriptor["store"])
            backend = RemoteShardBackend(
                self.n_shards,
                transport=self.transport(),
                max_workers=self.max_workers,
                keep_shards=self.keep_shards,
            )
            row = {"name": path.name, "store": descriptor["store"]}
            try:
                report = CampaignExecutor(
                    spec,
                    store,
                    backend=backend,
                    retry_policy=self.policy,
                    max_workers=self.max_workers,
                ).run()
            except Exception as exc:  # noqa: BLE001 - queue must drain
                row.update(ok=False, error=repr(exc))
                self._retire(path, FAILED_DIR)
            else:
                row.update(ok=True, report=report)
                self._retire(path, DONE_DIR)
            outcomes.append(row)
        return outcomes

    def serve_forever(self, stop=None) -> int:
        """Poll-and-serve until ``stop()`` (when given) returns true;
        returns campaigns served."""
        served = 0
        while True:
            served += len(self.serve_once())
            if stop is not None and stop():
                return served
            time.sleep(self.poll_s)

    def _retire(self, path: Path, subdir: str) -> None:
        dest = self.root / subdir
        dest.mkdir(parents=True, exist_ok=True)
        os.replace(path, dest / path.name)
