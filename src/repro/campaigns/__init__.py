"""Declarative scenario-space campaigns.

This package is the layer above a single
:class:`~repro.tuning.evaluation.NetworkSetEvaluator`: instead of
hand-rolling loops over densities and seeds (as the early examples and
benchmarks did), you *declare* the scenario space and let one executor
drive it through a shared worker pool with resumable on-disk results.

Quick guide
===========

1. **Declare the grid.**  A :class:`CampaignSpec` is a frozen description
   of everything to run — no code, just axes::

       from repro.campaigns import CampaignSpec

       spec = CampaignSpec(
           name="mobility-sweep",
           densities=(100, 300),
           mobility_models=("random-walk", "gauss-markov"),
           n_seeds=3,                 # 2 x 2 x 3 = 12 cells
           n_networks=5,
       )

   ``spec.cells()`` expands the grid into self-describing
   :class:`CampaignCell` units (all seeds pre-derived from
   ``master_seed``), so the same spec always names the same work.

2. **Run it.**  :class:`CampaignExecutor` skips completed cells and
   batches everything else through one persistent process pool —
   simulations interleave *across* cells, so workers never idle at cell
   boundaries::

       from repro.campaigns import CampaignExecutor, ResultStore

       store = ResultStore("runs/mobility-sweep")
       report = CampaignExecutor(spec, store, max_workers=8).run()
       print(f"{len(report.executed)} cells run, "
             f"{len(report.skipped)} resumed from disk")

3. **Resume for free.**  Results land as ``cells/<content-key>.jsonl``
   the moment each cell finishes.  Kill the campaign, run the same
   command again: only the missing cells execute.  Change the spec and
   the content keys change with it — stale results are never reused.

4. **Inspect.**  ``repro-aedb campaign run|status|report`` is the CLI
   face of the same objects; :func:`render_report` and
   :func:`render_status` produce the text views.

What the executor shares under the pool (DESIGN.md §9)
======================================================

Two layers make repeated and parallel evaluation nearly free, both
transparent (identical metrics, bit for bit) and both optional:

* **Shared-memory runtimes** — before the pool forks, the executor
  packs each pending scenario's parameter-independent substrate
  (per-tick neighbour tables, the replayed protocol RNG stream) into
  one :mod:`multiprocessing.shared_memory` segment via
  :class:`~repro.manet.shared.SharedRuntimeArena`; workers map it
  read-only instead of privately rebuilding it, so substrate memory and
  warm-up cost scale with *scenario* count, not worker count.  Opt out
  with ``shared_runtimes=False`` or ``REPRO_SHARED_RUNTIME=0``.

* **Persistent evaluation cache** — every finished simulation is
  appended to the store's ``evaluations.jsonl`` sidecar
  (:class:`~repro.tuning.cache.PersistentEvaluationCache`), keyed on
  the full ``(scenario, params)`` content.  Re-running a completed
  grid into a *fresh* store — or running a different campaign whose
  cells overlap — executes zero simulations::

      store_b = ResultStore("runs/other-dir")
      report = CampaignExecutor(
          spec, store_b,
          eval_cache="runs/mobility-sweep/evaluations.jsonl",
      ).run()
      assert report.simulations_executed == 0   # all served from disk

  ``eval_cache=None`` disables it; ``repro-aedb cache stats|flush``
  maintains it.

Workloads
=========

``algorithms=("evaluate",)`` (default) scores fixed parameter vectors
(``spec.params``) across the grid — pure simulation, maximally
batchable.  Naming optimisers instead (``("NSGAII", "AEDB-MLS")``) makes
each cell one seeded tuning run; the experiment runner's
``run_campaign`` is expressed exactly this way, reproducing its
historical seeds bit-for-bit.

Execution backends (DESIGN.md §10)
==================================

*How* the cells run is a pluggable strategy behind the
:class:`~repro.campaigns.backends.Backend` protocol —
``CampaignExecutor(..., backend=...)`` or ``repro-aedb campaign run
--backend {inline,pool,shard:N,remote:N}``:

* ``inline`` — serial, in-process; the debuggable reference;
* ``pool`` (default) — one shared process pool over all cells' jobs;
* ``shard:N`` — the cells partition into N content-keyed shards, each
  run by a subprocess against **its own** store directory (own
  ``evaluations.jsonl`` handle, warmed from the parent's), then merged
  back with dedup-by-key and conflict detection.  ``repro-aedb
  campaign merge <dirs...>`` exposes the same merge standalone;
* ``remote:N[@transport]`` — the same shard protocol over a pluggable
  transport (DESIGN.md §15): each shard ships as a self-contained
  bundle (``request.json`` + cache warm start + seed store), runs via
  ``repro-aedb campaign shard-exec`` on a worker, and streams its
  store back for the identical merge.  ``@loopback`` (default) runs
  workers as local subprocesses; ``@ssh:host`` runs the same worker
  over ssh.  ``repro-aedb campaign serve`` / ``worker`` turn the
  transport into a queue-backed daemon + fleet
  (:mod:`repro.campaigns.service`).

All backends produce **byte-identical** stores for the same spec —
the invariant ``tests/campaigns/test_backend_identity.py`` pins — so
backend choice is purely an execution/deployment decision.

Failure semantics (DESIGN.md §13)
=================================

The scheduler owns failure, not the caller.  Every run carries a
:class:`~repro.campaigns.resilience.RetryPolicy` (``repro-aedb campaign
run --retries/--cell-timeout/--heartbeat``): failed attempts retry with
deterministic backoff, the pool backend survives broken pools and
wedged workers (leases + ``cell.heartbeat`` telemetry), the shard
backend requeues a dead shard's lost cells onto a recovery pass, and a
cell that exhausts its budget is **quarantined** into the store's
``failures.jsonl`` (``repro-aedb campaign failures``) instead of
aborting anything.  Recovered runs stay byte-identical to fault-free
ones; ``tests/campaigns/test_chaos.py`` proves every path against the
deterministic fault plane in :mod:`repro.campaigns.faults`.

Follow-ups tracked in ROADMAP.md: result dashboards on top of the
JSONL store.
"""

from repro.campaigns.backends import (
    Backend,
    InlineBackend,
    LoopbackTransport,
    PoolBackend,
    RemoteShardBackend,
    ShardBackend,
    ShardTransport,
    SSHTransport,
    TransportError,
    resolve_backend,
)
from repro.campaigns.executor import (
    CampaignExecutor,
    CampaignRunReport,
    CellFailure,
    CellResult,
)
from repro.campaigns.faults import FaultPlane, InjectedFault
from repro.campaigns.report import (
    render_failures,
    render_merge,
    render_report,
    render_status,
)
from repro.campaigns.resilience import (
    FailureLedger,
    LeaseTable,
    RetryPolicy,
)
from repro.campaigns.service import (
    CampaignDaemon,
    QueueTransport,
    serve_worker,
    submit_campaign,
)
from repro.campaigns.spec import (
    DEFAULT_PARAMS,
    EVALUATE,
    CampaignCell,
    CampaignSpec,
)
from repro.campaigns.store import (
    CampaignStatus,
    MergeConflictError,
    MergeReport,
    ResultStore,
)

__all__ = [
    "CampaignSpec",
    "CampaignCell",
    "CampaignExecutor",
    "CampaignRunReport",
    "CellResult",
    "ResultStore",
    "CampaignStatus",
    "MergeConflictError",
    "MergeReport",
    "Backend",
    "InlineBackend",
    "PoolBackend",
    "ShardBackend",
    "RemoteShardBackend",
    "ShardTransport",
    "LoopbackTransport",
    "SSHTransport",
    "TransportError",
    "CampaignDaemon",
    "QueueTransport",
    "submit_campaign",
    "serve_worker",
    "resolve_backend",
    "render_report",
    "render_status",
    "render_merge",
    "render_failures",
    "EVALUATE",
    "DEFAULT_PARAMS",
    "RetryPolicy",
    "LeaseTable",
    "FailureLedger",
    "CellFailure",
    "FaultPlane",
    "InjectedFault",
]
