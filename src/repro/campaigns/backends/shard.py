"""Sharded campaign execution: partition cells, merge stores back.

The distributed seam the ROADMAP promised: a campaign's pending cells
are partitioned into N **content-keyed shard specs** (a cell's shard is
a pure function of its content key, so any machine partitioning the
same spec derives the same shards), each shard runs against **its own**
:class:`~repro.campaigns.store.ResultStore` directory with its own
evaluation-cache sidecar handle (single writer per file), and the shard
stores are merged back into the parent store with dedup-by-key and
conflict detection (:meth:`ResultStore.merge_from`).

Today the transport is local subprocesses — one
:class:`~concurrent.futures.ProcessPoolExecutor` worker per shard, each
running its shard's cells through an in-shard
:class:`~repro.campaigns.executor.CampaignExecutor`.  Because a shard is
fully described by ``(spec JSON, cell keys, store directory)``, a
remote transport later needs only a new backend that ships
:class:`ShardSpec`-shaped work over the wire and rsyncs the shard
directories back; the partition, store layout, and merge semantics are
already transport-agnostic (DESIGN.md §10).

Failure handling works at two granularities (DESIGN.md §13).  *Inside*
a shard, the in-shard executor owns cell-level retries and quarantines
under the parent's :class:`~repro.campaigns.resilience.RetryPolicy`;
its quarantines travel back in the shard result (and its
``failures.jsonl`` is folded into the parent's ledger with the
telemetry stream).  A shard *worker death* is recovered within the same
run: the dead shard's completed cells are already on disk in its store
and merge back like any crashed campaign's, and its genuinely lost
cells are charged one attempt each and **requeued onto a recovery pass
over the surviving shard count** — repartitioned content-keyed, with
the parent's attempt accounting forwarded so a cell that keeps killing
its shard exhausts the same budget it would anywhere else and lands in
the ledger instead of looping.  Requeues are counted in telemetry
(``campaign.requeued_cells``, ``shard.requeue`` events); nothing is
dropped silently, and nothing aborts the run.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path

from repro.campaigns.backends.base import ExecutionContext
from repro.campaigns.resilience import QUARANTINED, FailureLedger
from repro.campaigns.spec import CampaignCell, CampaignSpec, canonical_json
from repro.campaigns.store import ResultStore

__all__ = ["ShardBackend", "ShardSpec", "partition_cells", "shard_index_for"]

#: Subdirectory of the parent store that holds in-flight shard stores.
SHARDS_DIR = "shards"


def shard_index_for(cell_key: str, n_shards: int) -> int:
    """The shard a cell belongs to — a pure function of its content key.

    Hash-based (not round-robin over expansion order) so the assignment
    is stable under any reordering or subsetting of the cell list: two
    parties partitioning overlapping pending sets agree on every shared
    cell's shard.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    digest = hashlib.sha1(cell_key.encode("utf-8")).hexdigest()
    return int(digest, 16) % n_shards


@dataclass(frozen=True)
class ShardSpec:
    """One shard's worth of a campaign — self-describing and content-keyed."""

    index: int
    n_shards: int
    cells: tuple[CampaignCell, ...]

    @property
    def cell_keys(self) -> tuple[str, ...]:
        return tuple(cell.key for cell in self.cells)

    @property
    def key(self) -> str:
        """Readable slug + hash of the shard's full contents.

        Names the shard's store directory, so a leftover directory from
        a crashed run is resumed only when the partition (same pending
        cells, same shard count) is exactly reproduced — a changed
        partition gets fresh directories and stale ones are swept on the
        next successful merge.  Recovery passes repartition over a
        different shard count, so their directories never collide with
        the round that lost the cells.
        """
        digest = hashlib.sha1(
            canonical_json(
                {
                    "index": self.index,
                    "n_shards": self.n_shards,
                    "cells": list(self.cell_keys),
                }
            ).encode("utf-8")
        ).hexdigest()[:10]
        return f"shard-{self.index:02d}of{self.n_shards:02d}-{digest}"


def partition_cells(
    cells: list[CampaignCell], n_shards: int
) -> list[ShardSpec]:
    """Partition cells into ``n_shards`` content-keyed shards.

    Total and disjoint by construction (every cell lands in exactly one
    shard via :func:`shard_index_for`); cells keep their input order
    within a shard; empty shards are returned too (callers skip them)
    so shard indices always run 0..n_shards-1.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    buckets: list[list[CampaignCell]] = [[] for _ in range(n_shards)]
    for cell in cells:
        buckets[shard_index_for(cell.key, n_shards)].append(cell)
    return [
        ShardSpec(index=i, n_shards=n_shards, cells=tuple(bucket))
        for i, bucket in enumerate(buckets)
    ]


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ShardTask:
    """Everything a shard worker needs (picklable, self-contained)."""

    spec_json: str
    cell_keys: tuple[str, ...]
    #: This shard's index — tags the worker's telemetry stream.
    shard_index: int
    #: Shard store directory (None = storeless parent: results travel
    #: back in-memory only).
    root: str | None
    #: Open a per-shard evaluation-cache sidecar?
    use_cache: bool
    #: Parent sidecar to preload read-only (warm start), or None.
    warm_cache: str | None
    #: Ad-hoc scale override (or None → cells resolve their named scale).
    scale: object
    mls_engine: str | None
    #: The parent run's retry policy (None = the executor default) and
    #: its attempt accounting for this shard's cells, so in-shard
    #: retries/quarantines spend the same budget as anywhere else.
    retry_policy: object = None
    initial_attempts: tuple = ()


@dataclass(frozen=True)
class _ShardResult:
    """What one shard worker did (cell keys, records, live payloads)."""

    #: ``(cell_key, records, payloads)`` for cells executed this run.
    executed: tuple
    #: Same shape for cells already complete in the shard store (a
    #: resumed shard from a crashed earlier attempt); payloads are ().
    resumed: tuple
    cache_hits: int
    simulations_executed: int
    #: ``(cell_key, attempts, error)`` for cells the in-shard executor
    #: quarantined (already in the shard's own failures ledger).
    failed: tuple = ()


def _run_shard(task: _ShardTask) -> _ShardResult:
    """Worker entry point: run one shard's cells against its own store.

    The shard owns its cache handle — its own ``evaluations.jsonl``
    writer, warmed (memory-only) from the parent's sidecar — so the
    single-writer-per-file contract holds with any number of concurrent
    shards.  Cells run through a serial in-shard executor: parallelism
    comes from running shards concurrently, not from nesting pools.
    """
    from repro.campaigns.executor import CampaignExecutor
    from repro.tuning.cache import PersistentEvaluationCache

    spec = CampaignSpec.from_json(task.spec_json)
    store = ResultStore(task.root) if task.root is not None else None
    cache = None
    if task.use_cache and store is not None:
        cache = PersistentEvaluationCache(store.eval_cache_path)
        if task.warm_cache is not None:
            cache.warm_from(task.warm_cache)
    executor = CampaignExecutor(
        spec,
        store,
        serial=True,
        scale=task.scale,
        mls_engine=task.mls_engine,
        eval_cache=cache,
        only_cells=task.cell_keys,
        # With REPRO_TELEMETRY set (inherited from the parent), the
        # in-shard run streams to the shard store's telemetry.jsonl,
        # every line tagged with this shard's index; the parent folds
        # the file into its own stream after the merge (DESIGN.md §12).
        telemetry_attrs={"shard": task.shard_index},
        retry_policy=task.retry_policy,
        initial_attempts=dict(task.initial_attempts),
    )
    # The parent emits the campaign-wide roll-up counters after the
    # merge; a shard re-emitting its slice would double-count them in
    # the folded stream (per-shard numbers ride the shard's
    # ``campaign.run.finished`` event attrs instead).
    executor._emit_rollup_counters = False
    try:
        report = executor.run()
    finally:
        if cache is not None:
            cache.close()
    executed = tuple(
        (r.cell.key, r.records, r.payloads) for r in report.executed
    )
    resumed = ()
    if store is not None and report.skipped:
        # Cells complete in a leftover shard store from a crashed run:
        # surface their records so the parent reports them as done.
        resumed = tuple(
            (cell.key, store.read_cell(cell), []) for cell in report.skipped
        )
    return _ShardResult(
        executed=executed,
        resumed=resumed,
        cache_hits=report.cache_hits,
        simulations_executed=report.simulations_executed,
        failed=tuple(
            (f.cell_key, f.attempts, f.error) for f in report.failed
        ),
    )


# --------------------------------------------------------------------- #
class ShardBackend:
    """Partition cells into per-store shards; run; merge; recover."""

    def __init__(
        self,
        n_shards: int,
        max_workers: int | None = None,
        keep_shards: bool = False,
    ):
        """``n_shards`` fixes the partition (and the parallelism: one
        subprocess per non-empty shard, capped by ``max_workers`` or the
        executor's setting).  ``keep_shards=True`` leaves the shard
        stores under ``<store>/shards`` after a successful merge — the
        inputs the standalone ``repro-aedb campaign merge`` command
        operates on.
        """
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.n_shards = int(n_shards)
        self.max_workers = max_workers
        self.keep_shards = keep_shards
        self.name = f"shard:{self.n_shards}"

    # ------------------------------------------------------------------ #
    @staticmethod
    def _fully_cached(ctx: ExecutionContext, jobs: list) -> list | None:
        """All-jobs-cached payloads for a cell, or None (probe only).

        Unlike the pool backend, the unit shipped to a worker is a whole
        cell, so the parent pre-resolves only cells it can finish
        *entirely* from its cache; partially-cached cells ship wholesale
        and the shard serves the cached part from its warm start.  The
        probe does not touch report counters — hits are counted when the
        cell is actually finished.
        """
        from repro.campaigns import executor as executor_mod

        if ctx.cache is None:
            return None
        payloads = []
        for job in jobs:
            if not isinstance(job, executor_mod._SimJob):
                return None  # tune jobs are never cached
            stored = ctx.cache.get_metrics(job.scenario, job.params)
            if stored is None:
                return None
            payloads.append(stored)
        return payloads

    def execute(self, ctx: ExecutionContext) -> None:
        # 1. Parent-cache pre-filter: cells fully served from the cache
        #    complete here, without a shard (and without a subprocess) —
        #    a cached re-run spawns nothing and simulates nothing.
        rec = ctx.recorder
        remaining: list[CampaignCell] = []
        for cell in ctx.pending:
            payloads = self._fully_cached(ctx, ctx.jobs_for(cell))
            if payloads is not None:
                rec.event("cell.leased", cell=cell.key, backend=self.name)
                rec.event("cell.started", cell=cell.key, backend=self.name,
                          cached=True)
                t0 = time.perf_counter()
                ctx.report.cache_hits += len(payloads)
                ctx.finish_cell(cell, payloads)
                rec.record_span(
                    "campaign.cell", time.perf_counter() - t0,
                    cell=cell.key, backend=self.name,
                )
            else:
                remaining.append(cell)
        if not remaining:
            return
        # Shard stores live under the parent store; a storeless run with
        # a cache still gets (temporary) shard stores, so shards keep
        # their warm-started sidecars and the run's cache still
        # accumulates the new results — same contract as inline/pool.
        tmp = None
        if ctx.store is not None:
            shards_root = ctx.store.root / SHARDS_DIR
        elif ctx.cache is not None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-aedb-shards-")
            shards_root = Path(tmp.name)
        else:
            shards_root = None  # fully in-memory: results return by IPC
        use_cache = ctx.cache is not None and shards_root is not None
        # 2..4 Dispatch/merge/report rounds: the first round covers all
        #    remaining cells over the full shard count; each dead shard
        #    triggers a recovery round over the survivors with the lost
        #    (retryable) cells repartitioned.
        reported: set[str] = set()
        todo = remaining
        shard_count = self.n_shards
        round_no = 0
        try:
            while todo:
                shards = [
                    s for s in partition_cells(todo, shard_count) if s.cells
                ]
                results, failures = self._dispatch_round(
                    ctx, shards, shards_root, use_cache, round_no
                )
                if shards_root is not None:
                    self._merge_round(ctx, shards, shards_root)
                self._report_round(ctx, shards, results, reported)
                if not failures:
                    break
                failed_shards = [s for s in shards if s.index in failures]
                retryable = self._requeue_lost(
                    ctx, failed_shards, failures, reported
                )
                if not retryable:
                    break  # every lost cell is quarantined: recovered
                survivors = max(1, shard_count - len(failed_shards))
                ctx.leases.count_requeue(len(retryable))
                rec.event(
                    "shard.requeue",
                    round=round_no + 1,
                    n_cells=len(retryable),
                    n_shards=survivors,
                )
                time.sleep(
                    max(
                        ctx.policy.delay_for(
                            c.key, ctx.leases.attempts(c.key)
                        )
                        for c in retryable
                    )
                )
                todo = retryable
                shard_count = survivors
                round_no += 1
        finally:
            if tmp is not None:
                tmp.cleanup()
        # 5. Sweep the shard scratch space once every pending cell is
        #    accounted for (complete or quarantined) — a partial
        #    recovery keeps its directories for the next invocation.
        if (
            ctx.store is not None
            and not self.keep_shards
            and all(
                c.key in reported or ctx.leases.is_quarantined(c.key)
                for c in remaining
            )
        ):
            shutil.rmtree(ctx.store.root / SHARDS_DIR, ignore_errors=True)

    # ------------------------------------------------------------------ #
    def _dispatch_round(
        self, ctx, shards, shards_root, use_cache, round_no
    ):
        """One subprocess per shard; ``(results by index, exceptions)``."""
        rec = ctx.recorder
        warm = None
        if use_cache and Path(ctx.cache.path).exists():
            warm = str(ctx.cache.path)
        tasks = [
            _ShardTask(
                spec_json=ctx.spec.to_json(),
                cell_keys=shard.cell_keys,
                shard_index=shard.index,
                root=(
                    str(shards_root / shard.key)
                    if shards_root is not None
                    else None
                ),
                use_cache=use_cache,
                warm_cache=warm,
                scale=ctx.scale_override,
                mls_engine=ctx.mls_engine,
                retry_policy=ctx.policy,
                initial_attempts=tuple(
                    (key, ctx.leases.attempts(key))
                    for key in shard.cell_keys
                    if ctx.leases.attempts(key) > 0
                ),
            )
            for shard in shards
        ]
        max_workers = self.max_workers or ctx.max_workers
        n_procs = min(len(tasks), max_workers or len(tasks))
        results: dict[int, _ShardResult] = {}
        failures: dict[int, Exception] = {}
        with ProcessPoolExecutor(max_workers=n_procs) as pool:
            futures = {}
            for task, shard in zip(tasks, shards):
                # The parent's lease: cell → shard assignment.  The
                # worker re-emits its own (inline-tagged) lifecycle
                # into the shard stream, merged back below.
                for key in shard.cell_keys:
                    rec.event("cell.leased", cell=key,
                              backend=self.name, shard=shard.index)
                rec.event("shard.dispatched", shard=shard.index,
                          n_cells=len(shard.cells), round=round_no)
                futures[pool.submit(_run_shard, task)] = shard
            for future in as_completed(futures):
                shard = futures[future]
                try:
                    results[shard.index] = future.result()
                    rec.event("shard.finished", shard=shard.index,
                              round=round_no)
                except Exception as exc:  # noqa: BLE001
                    # A dead shard loses only its *uncompleted* cells,
                    # and only until the recovery round below — never
                    # the run.
                    failures[shard.index] = exc
                    rec.event("shard.failed", shard=shard.index,
                              round=round_no, error=repr(exc))
        return results, failures

    @staticmethod
    def _merge_round(ctx, shards, shards_root) -> None:
        """Fold every shard store back — results, telemetry, failures.

        Includes dead shards' stores: their completed cells persist
        exactly like a crashed campaign's, so recovery re-executes only
        what was genuinely lost.  Shard sidecar entries go to the run's
        *actual* cache file: the store sidecar under ``eval_cache="auto"``,
        the shared file under an explicit ``--cache`` (where inline and
        pool would have appended them).
        """
        from repro.telemetry import merge_telemetry_files

        for shard in shards:
            shard_store = ResultStore(shards_root / shard.key)
            if ctx.store is not None:
                # Fold the shard's observation streams (if any) into
                # the parent's.  Idempotent per shard key: counter
                # lines are deltas and ledger entries per-quarantine,
                # so the fold layer dedups re-merges — a resumed run
                # re-merging a leftover shard directory, or a remote
                # shard fetched twice, folds each line exactly once.
                merge_telemetry_files(
                    ctx.store.telemetry_path,
                    shard_store.telemetry_path,
                    source_id=shard.key,
                )
                if shard_store.failures_path.exists():
                    FailureLedger(ctx.store.failures_path).fold_from(
                        shard_store.failures_path
                    )
            if not shard_store.spec_path.exists():
                continue  # shard died before writing anything
            if ctx.store is not None:
                ctx.store.merge_from(
                    shard_store,
                    eval_dest=(
                        Path(ctx.cache.path)
                        if ctx.cache is not None
                        else None
                    ),
                )
            elif ctx.cache is not None:
                ResultStore.merge_eval_files(
                    Path(ctx.cache.path),
                    shard_store.eval_cache_path,
                )

    @staticmethod
    def _report_round(ctx, shards, results, reported: set[str]) -> None:
        """Adopt shard outcomes into the run's report and lease table.

        (Spec order is restored centrally by the executor.)
        """
        from repro.campaigns.executor import CellResult

        cell_by_key = {
            cell.key: cell for shard in shards for cell in shard.cells
        }
        for shard in shards:
            result = results.get(shard.index)
            if result is None:
                continue
            ctx.report.cache_hits += result.cache_hits
            ctx.report.simulations_executed += result.simulations_executed
            for key, attempts, error in result.failed:
                # Already in the shard's ledger (folded into the
                # parent's above) — adopt without re-recording.
                ctx.leases.adopt_quarantine(key, attempts, error)
                ctx.recorder.event(
                    "cell.quarantined", cell=key, attempts=attempts,
                    error=error, shard=shard.index,
                )
            for key, records, payloads in (*result.executed,
                                           *result.resumed):
                if key in reported:
                    continue
                reported.add(key)
                ctx.report_cell(
                    CellResult(
                        cell=cell_by_key[key],
                        records=records,
                        payloads=payloads,
                    )
                )

    @staticmethod
    def _requeue_lost(ctx, failed_shards, failures, reported: set[str]):
        """Charge one attempt per genuinely lost cell; return the
        retryable ones (quarantined cells stay in the ledger)."""
        from repro.campaigns.executor import CellResult

        retryable = []
        for shard in failed_shards:
            exc = failures[shard.index]
            for cell in shard.cells:
                if ctx.leases.is_quarantined(cell.key):
                    continue
                if ctx.store is not None and ctx.store.is_complete(cell):
                    # Completed inside the dead shard before it died and
                    # merged back above — done, not lost.
                    if cell.key not in reported:
                        reported.add(cell.key)
                        ctx.report_cell(
                            CellResult(
                                cell=cell,
                                records=ctx.store.read_cell(cell),
                                payloads=[],
                            )
                        )
                    continue
                verdict = ctx.fail_cell(
                    cell.key,
                    f"shard {shard.index} worker died: {exc!r}",
                )
                if verdict != QUARANTINED:
                    retryable.append(cell)
        return retryable
