"""The campaign execution-strategy seam.

A :class:`Backend` owns *how* a campaign's pending cells turn into
persisted results; the :class:`~repro.campaigns.executor.CampaignExecutor`
owns everything strategy-independent — grid expansion, resume filtering,
cache resolution, record serialisation, store writes — and hands a
backend one :class:`ExecutionContext` per run.

The contract every backend must keep (DESIGN.md §10):

* **Bit-identity.**  For the same :class:`CampaignSpec`, the records a
  backend persists must be byte-identical to every other backend's —
  records derive only from ``(cell, payloads)`` and payloads are pure
  functions of their jobs, so a backend may reorder, distribute, batch,
  or cache-resolve work freely, but must reassemble each cell's
  payloads in job-index order.  ``tests/campaigns/test_backend_identity.py``
  pins this across all shipped backends.
* **Crash-isolation.**  A failed cell (or shard) must not abort the
  rest of the run; everything that completed persists, so the next
  invocation re-executes only what failed.
* **Cache discipline.**  Persistent-cache hits are resolved through
  :meth:`ExecutionContext.cached_payload` / counted through
  :meth:`ExecutionContext.record_executed`, so reports can never
  diverge between backends.

Shipped backends: :class:`~repro.campaigns.backends.inline.InlineBackend`
(serial, in-process — the debuggable reference),
:class:`~repro.campaigns.backends.pool.PoolBackend` (one shared process
pool over all cells' jobs), and
:class:`~repro.campaigns.backends.shard.ShardBackend` (content-keyed
cell partitions into per-shard stores, merged back).  A remote transport
is "only" a fourth implementation of this protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.campaigns.resilience import (
    QUARANTINED,
    LeaseTable,
    RetryPolicy,
)
from repro.telemetry import NULL, Recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaigns.executor import (
        CampaignExecutor,
        CampaignRunReport,
        CellResult,
    )
    from repro.campaigns.spec import CampaignCell, CampaignSpec
    from repro.campaigns.store import ResultStore
    from repro.tuning.cache import PersistentEvaluationCache

__all__ = ["Backend", "ExecutionContext"]


@runtime_checkable
class Backend(Protocol):
    """One execution strategy for a campaign's pending cells."""

    #: Stable identifier (``"inline"``, ``"pool"``, ``"shard:4"``, ...).
    name: str

    def execute(self, ctx: "ExecutionContext") -> None:
        """Run every cell in ``ctx.pending``, finishing each through
        ``ctx`` so persistence and reporting stay backend-agnostic."""
        ...  # pragma: no cover - protocol


@dataclass
class ExecutionContext:
    """Everything a backend needs for one :meth:`CampaignExecutor.run`.

    Thin by design: the heavy machinery (job expansion, record
    serialisation, store writes, cache bookkeeping) stays on the
    executor, and the context narrows it to exactly the operations a
    strategy is allowed to use — keeping every backend on the same
    persistence and accounting paths.
    """

    executor: "CampaignExecutor"
    #: Cells to execute this run (resume-filtered, spec order).
    pending: "list[CampaignCell]"
    report: "CampaignRunReport"
    #: Resolved persistent evaluation cache (None = disabled).
    cache: "PersistentEvaluationCache | None"
    #: Per-cell completion callback (or None).
    progress: Callable | None
    #: Telemetry sink for this run (DESIGN.md §12) — the shared no-op
    #: :data:`~repro.telemetry.NULL` when ``REPRO_TELEMETRY`` is off.
    #: Backends emit lifecycle events (``cell.leased``/``cell.started``)
    #: and ``campaign.cell`` spans through it; they must never let it
    #: influence scheduling or payloads (bit-identity contract above).
    recorder: Recorder = field(default=NULL)
    #: The run's lease/attempt table (DESIGN.md §13).  Owns the retry
    #: policy and the quarantine record; backends route every failed
    #: attempt through :meth:`fail_cell` so retry accounting, the
    #: ``failures.jsonl`` ledger, and the report can never diverge.
    leases: LeaseTable = field(
        default_factory=lambda: LeaseTable(RetryPolicy())
    )

    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> "CampaignSpec":
        return self.executor.spec

    @property
    def store(self) -> "ResultStore | None":
        return self.executor.store

    @property
    def max_workers(self) -> int | None:
        return self.executor.max_workers

    @property
    def shared_runtimes(self) -> bool:
        return self.executor.shared_runtimes

    @property
    def scale_override(self):
        """Ad-hoc scale object (or None), forwarded to sub-executors."""
        return self.executor._scale_override

    @property
    def mls_engine(self) -> str | None:
        return self.executor.mls_engine

    @property
    def policy(self) -> RetryPolicy:
        """The run's retry/timeout/heartbeat budget (via the leases —
        one source of truth)."""
        return self.leases.policy

    # ------------------------------------------------------------------ #
    def jobs_for(self, cell: "CampaignCell") -> list:
        """The cell's job objects (index order)."""
        return self.executor._jobs_for(cell)

    def finish_cell(self, cell: "CampaignCell", payloads: list) -> None:
        """Serialise, persist, report, and fire progress for one cell."""
        self.executor._finish_cell(cell, payloads, self.report, self.progress)

    def report_cell(self, result: "CellResult") -> None:
        """Report a cell finished *elsewhere* (already persisted —
        e.g. written by a shard store and merged); fires progress."""
        self.report.executed.append(result)
        if self.progress is not None:
            self.progress(result)

    def cached_payload(self, job):
        """Persistent-cache hit for ``job`` or None (hits are counted)."""
        return self.executor._cached_payload(job, self.report, self.cache)

    def record_executed(self, job, payload) -> None:
        """Count one live execution; persist a simulation's result."""
        self.executor._record_executed(job, payload, self.report, self.cache)

    def resolve_job(self, job):
        """One job's payload: cache hit or in-process execution."""
        return self.executor._resolve_serial_job(job, self.report, self.cache)

    def fail_cell(
        self, cell_key: str, error: str, attempt: int | None = None
    ) -> str:
        """Record one failed attempt of a cell and emit its lifecycle
        event; returns :data:`~repro.campaigns.resilience.RETRY` or
        :data:`~repro.campaigns.resilience.QUARANTINED`.  Quarantine is
        terminal for the run but never fatal: the cell lands in the
        ledger and ``report.failed``, and everything else proceeds.
        """
        verdict = self.leases.fail(cell_key, error, attempt)
        attempts = self.leases.attempts(cell_key)
        if verdict == QUARANTINED:
            self.recorder.event(
                "cell.quarantined", cell=cell_key,
                attempts=attempts, error=error,
            )
        else:
            self.recorder.event(
                "cell.retry", cell=cell_key,
                attempts=attempts, error=error,
            )
        return verdict
