"""Process-pool campaign execution — one shared pool over all cells.

This is the strategy PR 1 shipped inside the executor, extracted behind
the :class:`~repro.campaigns.backends.base.Backend` protocol: every
pending cell's jobs are built up front and submitted to ONE persistent
:class:`~concurrent.futures.ProcessPoolExecutor`, so simulations
interleave *across* cells (no per-cell pool spin-up, no idle workers at
cell boundaries), persistent-cache hits resolve before the pool even
exists, and a :class:`~repro.manet.shared.SharedRuntimeArena` gives
every worker a read-only mapping of each scenario's precomputed
substrate (DESIGN.md §9).

PR 7 made the pool *survive its workers* (DESIGN.md §13).  The drain
loop became a lease-driven driver:

* a cell is **leased** when its first job enters the pool (at most
  ``workers`` jobs are in flight, so a leased job is running, not
  queued) and every completed job extends the lease — the per-cell
  timeout bounds *inactivity*, and the heartbeat monitor extends the
  liveness deadline from the ``cell.heartbeat`` lines workers stream;
* a **raising** job fails its cell's attempt: the cell's lost jobs are
  requeued with deterministic backoff, or the cell is quarantined into
  ``failures.jsonl`` once the budget is spent — never aborting the run;
* a **broken pool** (worker OOM-killed, segfault, injected crash) is
  survived: in-flight jobs requeue, the attempt is charged to the
  casualty cell only when attribution is unambiguous (all casualties
  belong to one cell — guaranteed at 1 worker, so poison-cell hunts
  terminate), and the pool is rebuilt **degraded** to half the workers,
  down to inline-equivalent single-worker execution;
* an **expired lease** (hard timeout or heartbeat silence) means a
  wedged worker the futures API cannot reclaim: the pool's processes
  are killed, innocent in-flight jobs requeue free of charge, and the
  hung cell is charged one attempt.

Payloads are pure functions of their jobs, so a retried job lands the
same bytes and completed sibling jobs of a failed attempt keep their
results — recovery re-executes only what was lost, and final stores
stay byte-identical to fault-free runs (the chaos suite pins this).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import replace

from repro.campaigns.backends.base import ExecutionContext
from repro.campaigns.resilience import (
    QUARANTINED,
    HeartbeatMonitor,
    heartbeat_env,
)
from repro.manet.shared import SharedRuntimeArena
from repro.telemetry import telemetry_enabled

__all__ = ["PoolBackend"]


class PoolBackend:
    """Batch all pending cells' jobs through one shared process pool."""

    name = "pool"

    def __init__(self, max_workers: int | None = None):
        """``max_workers=None`` defers to the executor's setting (and
        from there to the ``ProcessPoolExecutor`` default)."""
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers

    def execute(self, ctx: ExecutionContext) -> None:
        # The worker entry point is looked up through the executor module
        # at submission time, so tests (and instrumentation) can swap it.
        from repro.campaigns import executor as executor_mod

        max_workers = self.max_workers or ctx.max_workers
        # Build every job up front so the pool sees the whole campaign's
        # work at once; buckets reassemble payloads per cell in job order.
        jobs_by_cell = {cell.key: ctx.jobs_for(cell) for cell in ctx.pending}
        cell_by_key = {cell.key: cell for cell in ctx.pending}
        buckets: dict[str, dict[int, object]] = {
            key: {} for key in jobs_by_cell
        }
        # Persistent-cache hits resolve before the pool exists; cells
        # fully served from disk complete without a single worker.
        submit: list = []
        for key, jobs in jobs_by_cell.items():
            for job in jobs:
                stored = ctx.cached_payload(job)
                if stored is not None:
                    buckets[key][job.index] = stored
                else:
                    submit.append(job)
        rec = ctx.recorder
        for cell in ctx.pending:
            bucket = buckets[cell.key]
            if len(bucket) == len(jobs_by_cell[cell.key]):
                # Fully cache-served: the whole lifecycle happens here.
                rec.event("cell.leased", cell=cell.key, backend=self.name)
                rec.event("cell.started", cell=cell.key, backend=self.name,
                          cached=True)
                t0 = time.perf_counter()
                ctx.finish_cell(cell, [bucket[i] for i in sorted(bucket)])
                rec.record_span(
                    "campaign.cell", time.perf_counter() - t0,
                    cell=cell.key, backend=self.name,
                )
        if not submit:
            return  # everything came from the cache: no pool, no arena
        arena = None
        if ctx.shared_runtimes:
            # One shared-memory precompute per distinct pending scenario,
            # created once and reused across every pool incarnation the
            # driver builds: the arena is owned by the parent, so worker
            # deaths never invalidate the segments.  None = shared
            # memory unavailable; workers fall back per process.
            arena = SharedRuntimeArena.create(
                [
                    j.scenario
                    for j in submit
                    if isinstance(j, executor_mod._SimJob)
                ]
            )
        try:
            _PoolDriver(
                backend_name=self.name,
                ctx=ctx,
                executor_mod=executor_mod,
                jobs=submit,
                jobs_by_cell=jobs_by_cell,
                cell_by_key=cell_by_key,
                buckets=buckets,
                max_workers=max_workers,
                arena=arena,
            ).drive()
        finally:
            if arena is not None:
                arena.close()


class _PoolDriver:
    """One campaign's drain loop over (possibly several) process pools.

    All mutable scheduling state lives here; the pool object itself is
    disposable — breakage and hangs abandon it and build a fresh one,
    while the queue, buckets, leases, and the shared-runtime arena
    carry over.
    """

    #: Floor for the lease-check tick so a tight timeout cannot turn
    #: the drain loop into a busy-wait.
    MIN_TICK_S = 0.05

    def __init__(
        self, backend_name, ctx, executor_mod, jobs, jobs_by_cell,
        cell_by_key, buckets, max_workers, arena,
    ):
        self.name = backend_name
        self.ctx = ctx
        self.rec = ctx.recorder
        self.leases = ctx.leases
        self.policy = ctx.policy
        self.executor_mod = executor_mod
        self.jobs_by_cell = jobs_by_cell
        self.cell_by_key = cell_by_key
        self.buckets = buckets
        self.arena = arena
        #: FIFO of jobs waiting for a pool slot (attempt stamped at
        #: submission, so requeued entries need no rewriting).
        self.queue: list = list(jobs)
        #: Per-cell backoff gate: no job of the cell submits before t.
        self.cell_not_before: dict[str, float] = {}
        self.futures: dict = {}
        self.workers = max(1, max_workers or os.cpu_count() or 1)
        self.pool: ProcessPoolExecutor | None = None
        self.started: set[str] = set()
        self.finished: set[str] = set()
        self.cell_t0: dict[str, float] = {}
        timeouts = [
            t
            for t in (self.policy.cell_timeout_s,
                      self.policy.liveness_timeout_s)
            if t is not None
        ]
        #: None = no deadlines to police: block until a future lands.
        self.tick = (
            max(self.MIN_TICK_S, min(timeouts) / 4.0) if timeouts else None
        )
        self.monitor: HeartbeatMonitor | None = None
        self.hb_dir: str | None = None

    # ------------------------------------------------------------------ #
    def drive(self) -> None:
        hb = self.policy.heartbeat_s
        if hb is not None:
            self.hb_dir = tempfile.mkdtemp(prefix="repro-aedb-hb-")
            self.monitor = HeartbeatMonitor(self.hb_dir)
        try:
            if hb is not None:
                with heartbeat_env(self.hb_dir, hb):
                    self._drain()
            else:
                self._drain()
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
            if self.hb_dir is not None:
                if (
                    self.monitor is not None
                    and telemetry_enabled()
                    and self.ctx.store is not None
                ):
                    self.monitor.fold_into(self.ctx.store.telemetry_path)
                shutil.rmtree(self.hb_dir, ignore_errors=True)

    def _drain(self) -> None:
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        while self.queue or self.futures:
            now = time.monotonic()
            self._submit_ready(now)
            if not self.futures:
                if not self.queue:
                    break  # everything left was quarantined and dropped
                # All queued cells are inside their backoff window.
                gate = min(
                    self.cell_not_before.get(j.cell_key, now)
                    for j in self.queue
                )
                time.sleep(min(max(gate - now, 0.0) + 1e-3, 0.25))
                continue
            done, _ = wait(
                set(self.futures),
                timeout=self.tick,
                return_when=FIRST_COMPLETED,
            )
            self._drain_done(done)
            if self.tick is not None:
                self._police_leases(time.monotonic())
        self.pool.shutdown(wait=True)
        self.pool = None

    # ------------------------------------------------------------------ #
    def _submit_ready(self, now: float) -> None:
        """Submit queued jobs while pool slots are free.

        In-flight is capped at the worker count on purpose: a submitted
        job is *running*, so lease deadlines measure worker time, not
        queue time (a job stuck behind a long queue must not count
        against its cell's timeout).
        """
        if not self.queue:
            return
        held: list = []
        while self.queue and len(self.futures) < self.workers:
            job = self.queue.pop(0)
            key = job.cell_key
            if self.leases.is_quarantined(key):
                continue  # budget spent: drop the cell's remaining work
            if self.cell_not_before.get(key, 0.0) > now:
                held.append(job)
                continue
            if self.leases.holds(key):
                attempt = self.leases.attempt_of(key)
            else:
                lease = self.leases.acquire(key, worker="pool", now=now)
                attempt = lease.attempt
                if key not in self.cell_t0:
                    self.cell_t0[key] = time.perf_counter()
                self.rec.event("cell.leased", cell=key, backend=self.name,
                               attempt=attempt)
            job = replace(job, attempt=attempt)
            if self.arena is not None and isinstance(
                job, self.executor_mod._SimJob
            ):
                job = replace(job, handle=self.arena.handle_for(job.scenario))
            try:
                future = self.pool.submit(
                    self.executor_mod._execute_job, job
                )
            except BrokenExecutor as exc:
                held.append(job)
                self.queue = held + self.queue
                casualties = list(self.futures.values())
                self.futures = {}
                self._handle_breakage(casualties, exc)
                return
            self.futures[future] = job
        self.queue = held + self.queue

    # ------------------------------------------------------------------ #
    def _drain_done(self, done) -> None:
        casualties: list = []
        broken: BaseException | None = None
        for future in done:
            job = self.futures.pop(future)
            try:
                payload = future.result()
            except BrokenExecutor as exc:
                # The pool died under this job; siblings in the same
                # ``done`` batch may still hold *successful* results
                # harvested before the break — keep them, they're paid
                # for (and payloads are pure, so keeping them is safe).
                casualties.append(job)
                broken = exc
                continue
            except Exception as exc:  # noqa: BLE001 - §13: never fatal
                self._job_failed(job, exc)
                continue
            self._job_done(job, payload)
        if broken is not None:
            casualties.extend(self.futures.values())
            self.futures = {}
            self._handle_breakage(casualties, broken)

    def _job_done(self, job, payload) -> None:
        key = job.cell_key
        self.ctx.record_executed(job, payload)
        self.leases.touch(key)
        if self.leases.is_quarantined(key):
            return  # late result of a quarantined cell: cached, not kept
        if key not in self.started:
            self.started.add(key)
            self.rec.event("cell.started", cell=key, backend=self.name)
        bucket = self.buckets[key]
        bucket[job.index] = payload
        if (
            key not in self.finished
            and len(bucket) == len(self.jobs_by_cell[key])
        ):
            self.finished.add(key)
            self.leases.release(key)
            self.ctx.finish_cell(
                self.cell_by_key[key], [bucket[i] for i in sorted(bucket)]
            )
            self.rec.record_span(
                "campaign.cell",
                time.perf_counter() - self.cell_t0.get(
                    key, time.perf_counter()
                ),
                cell=key, backend=self.name,
            )

    def _job_failed(self, job, exc: BaseException) -> None:
        key = job.cell_key
        if self.leases.is_quarantined(key):
            return  # a sibling already spent the budget
        verdict = self.ctx.fail_cell(key, repr(exc), attempt=job.attempt)
        if verdict == QUARANTINED:
            return  # queued siblings are dropped at submission time
        self.cell_not_before[key] = time.monotonic() + self.policy.delay_for(
            key, job.attempt
        )
        self.queue.append(job)

    # ------------------------------------------------------------------ #
    def _handle_breakage(self, casualties: list, exc: BaseException) -> None:
        """Survive a dead pool: requeue, attribute, degrade, rebuild.

        The attempt is charged only when every casualty belongs to one
        cell — with several cells in flight the killer is ambiguous and
        everyone requeues free.  Degrading to half the workers converges
        on 1, where attribution is always unambiguous, so a genuinely
        poisonous cell is quarantined after at most
        ``log2(workers) + max_attempts`` pool rebuilds.
        """
        suspects = {j.cell_key for j in casualties}
        requeue: list = []
        for job in casualties:
            if len(suspects) == 1 and job.cell_key in suspects:
                continue  # handled below via fail_cell
            requeue.append(job)
        if len(suspects) == 1:
            key = next(iter(suspects))
            attempt = max(j.attempt for j in casualties)
            verdict = self.ctx.fail_cell(key, repr(exc), attempt=attempt)
            if verdict != QUARANTINED:
                self.cell_not_before[key] = (
                    time.monotonic()
                    + self.policy.delay_for(key, attempt)
                )
                requeue.extend(j for j in casualties if j.cell_key == key)
        else:
            for key in suspects:
                self.leases.release(key)
        if requeue:
            self.leases.count_requeue(
                len({j.cell_key for j in requeue})
            )
            self.queue = requeue + self.queue
        old = self.workers
        if len(suspects) > 1:
            # Ambiguous breakage may mean resource pressure (OOM), not a
            # poison cell: halve the blast radius before trying again.
            self.workers = max(1, self.workers // 2)
        self.rec.event(
            "pool.degraded",
            error=repr(exc),
            workers_before=old,
            workers_after=self.workers,
            requeued=len(requeue),
        )
        self._rebuild_pool()

    def _police_leases(self, now: float) -> None:
        """Detect hangs: hard-deadline and heartbeat-silence expiry."""
        if self.monitor is not None:
            for cell in self.monitor.poll():
                self.leases.beat(cell)
        expired = self.leases.expired(now)
        if not expired:
            return
        hung = {lease.cell: lease for lease in expired}
        # The futures API cannot reclaim a wedged worker process: kill
        # the pool's processes and rebuild.  Innocent in-flight jobs
        # requeue free of charge; the hung cells are charged an attempt.
        casualties = list(self.futures.values())
        self.futures = {}
        self._kill_pool()
        innocents: list = []
        for job in casualties:
            if job.cell_key not in hung:
                # Release so resubmission re-acquires with a fresh
                # deadline (queue time must not count against the cell)
                # — attempts only advance through fail_cell, so the
                # re-acquired lease keeps the same attempt number.
                self.leases.release(job.cell_key)
                innocents.append(job)
        for key, lease in sorted(hung.items()):
            self.rec.event(
                "cell.hung", cell=key, backend=self.name,
                attempt=lease.attempt,
            )
            verdict = self.ctx.fail_cell(
                key,
                f"hung: no progress or heartbeat within the lease "
                f"deadline (attempt {lease.attempt})",
                attempt=lease.attempt,
            )
            if verdict != QUARANTINED:
                self.cell_not_before[key] = now + self.policy.delay_for(
                    key, lease.attempt
                )
                innocents.extend(
                    j for j in casualties if j.cell_key == key
                )
        if innocents:
            self.leases.count_requeue(
                len({j.cell_key for j in innocents})
            )
            self.queue = innocents + self.queue
        self._rebuild_pool()

    def _kill_pool(self) -> None:
        if self.pool is None:
            return
        procs = getattr(self.pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.kill()
            except Exception:  # noqa: BLE001 - already-dead children
                pass
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = None

    def _rebuild_pool(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
