"""Process-pool campaign execution — one shared pool over all cells.

This is the strategy PR 1 shipped inside the executor, extracted behind
the :class:`~repro.campaigns.backends.base.Backend` protocol: every
pending cell's jobs are built up front and submitted to ONE persistent
:class:`~concurrent.futures.ProcessPoolExecutor`, so simulations
interleave *across* cells (no per-cell pool spin-up, no idle workers at
cell boundaries), persistent-cache hits resolve before the pool even
exists, and a :class:`~repro.manet.shared.SharedRuntimeArena` gives
every worker a read-only mapping of each scenario's precomputed
substrate (DESIGN.md §9).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import replace

from repro.campaigns.backends.base import ExecutionContext
from repro.manet.shared import SharedRuntimeArena

__all__ = ["PoolBackend"]


class PoolBackend:
    """Batch all pending cells' jobs through one shared process pool."""

    name = "pool"

    def __init__(self, max_workers: int | None = None):
        """``max_workers=None`` defers to the executor's setting (and
        from there to the ``ProcessPoolExecutor`` default)."""
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers

    def execute(self, ctx: ExecutionContext) -> None:
        # The worker entry point is looked up through the executor module
        # at submission time, so tests (and instrumentation) can swap it.
        from repro.campaigns import executor as executor_mod

        max_workers = self.max_workers or ctx.max_workers
        # Build every job up front so the pool sees the whole campaign's
        # work at once; buckets reassemble payloads per cell in job order.
        jobs_by_cell = {cell.key: ctx.jobs_for(cell) for cell in ctx.pending}
        cell_by_key = {cell.key: cell for cell in ctx.pending}
        buckets: dict[str, dict[int, object]] = {
            key: {} for key in jobs_by_cell
        }
        # Persistent-cache hits resolve before the pool exists; cells
        # fully served from disk complete without a single worker.
        submit: list = []
        for key, jobs in jobs_by_cell.items():
            for job in jobs:
                stored = ctx.cached_payload(job)
                if stored is not None:
                    buckets[key][job.index] = stored
                else:
                    submit.append(job)
        rec = ctx.recorder
        for cell in ctx.pending:
            bucket = buckets[cell.key]
            if len(bucket) == len(jobs_by_cell[cell.key]):
                # Fully cache-served: the whole lifecycle happens here.
                rec.event("cell.leased", cell=cell.key, backend=self.name)
                rec.event("cell.started", cell=cell.key, backend=self.name,
                          cached=True)
                t0 = time.perf_counter()
                ctx.finish_cell(cell, [bucket[i] for i in sorted(bucket)])
                rec.record_span(
                    "campaign.cell", time.perf_counter() - t0,
                    cell=cell.key, backend=self.name,
                )
        if not submit:
            return  # everything came from the cache: no pool, no arena
        arena = None
        if ctx.shared_runtimes:
            # One shared-memory precompute per distinct pending scenario,
            # created before the pool so workers fork with the segments
            # (and the resource tracker) already in place.  None = shared
            # memory unavailable; workers fall back per process.
            arena = SharedRuntimeArena.create(
                [
                    j.scenario
                    for j in submit
                    if isinstance(j, executor_mod._SimJob)
                ]
            )
        failures: dict[str, Exception] = {}
        # Lifecycle bookkeeping: a cell is *leased* when its first job
        # enters the pool, *started* when its first payload lands, and
        # its ``campaign.cell`` span covers lease → persisted records.
        cell_t0: dict[str, float] = {}
        started: set[str] = set()
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {}
                for job in submit:
                    if job.cell_key not in cell_t0:
                        cell_t0[job.cell_key] = time.perf_counter()
                        rec.event("cell.leased", cell=job.cell_key,
                                  backend=self.name)
                    if arena is not None and isinstance(
                        job, executor_mod._SimJob
                    ):
                        job = replace(
                            job, handle=arena.handle_for(job.scenario)
                        )
                    futures[pool.submit(executor_mod._execute_job, job)] = job
                remaining = set(futures)
                try:
                    while remaining:
                        done, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            job = futures[future]
                            # A failed job fails its cell but never the
                            # drain: every other cell still completes and
                            # persists, keeping the resume contract (the
                            # next run re-executes only the failed cells).
                            try:
                                payload = future.result()
                            except Exception as exc:  # noqa: BLE001
                                failures.setdefault(job.cell_key, exc)
                                continue
                            ctx.record_executed(job, payload)
                            if job.cell_key not in started:
                                started.add(job.cell_key)
                                rec.event("cell.started", cell=job.cell_key,
                                          backend=self.name)
                            bucket = buckets[job.cell_key]
                            bucket[job.index] = payload
                            if (
                                job.cell_key not in failures
                                and len(bucket)
                                == len(jobs_by_cell[job.cell_key])
                            ):
                                payloads = [bucket[i] for i in sorted(bucket)]
                                ctx.finish_cell(
                                    cell_by_key[job.cell_key], payloads
                                )
                                rec.record_span(
                                    "campaign.cell",
                                    time.perf_counter()
                                    - cell_t0[job.cell_key],
                                    cell=job.cell_key, backend=self.name,
                                )
                except BaseException:
                    # Finished cells are already on disk; don't burn
                    # through the rest of the queue before re-raising.
                    for future in remaining:
                        future.cancel()
                    raise
        finally:
            if arena is not None:
                arena.close()
        if failures:
            details = "; ".join(
                f"{key}: {exc!r}" for key, exc in sorted(failures.items())
            )
            raise RuntimeError(
                f"{len(failures)} campaign cell(s) failed (completed cells "
                f"were persisted and will be skipped on re-run) — {details}"
            )
