"""Serial in-process campaign execution — the reference backend."""

from __future__ import annotations

import time
from dataclasses import replace

from repro.campaigns.backends.base import ExecutionContext
from repro.campaigns.resilience import QUARANTINED, recorder_heartbeat

__all__ = ["InlineBackend"]


class InlineBackend:
    """Run every job in-process, in spec order.

    No pool, no subprocesses, no shared memory: the cheapest path for
    tiny sweeps, the mode the experiment runner uses to reproduce its
    historical single-threaded behaviour exactly, and the debuggable
    reference the other backends are bit-compared against (a breakpoint
    lands in the same process; tracebacks are undecorated).

    Resilience here is the in-process slice of DESIGN.md §13: a raising
    cell is retried with backoff up to the policy's budget, then
    quarantined (recorded, never fatal) — but crashes and hangs cannot
    be survived without process isolation, so ``cell_timeout_s`` is not
    enforced and a worker-killing fault kills the run.  Heartbeats, when
    enabled, go straight to the active recorder from a daemon thread.
    """

    name = "inline"

    def execute(self, ctx: ExecutionContext) -> None:
        rec = ctx.recorder
        policy = ctx.policy
        for cell in ctx.pending:
            while True:
                lease = ctx.leases.acquire(cell.key, worker="inline")
                rec.event("cell.leased", cell=cell.key, backend=self.name,
                          attempt=lease.attempt)
                rec.event("cell.started", cell=cell.key, backend=self.name)
                try:
                    with rec.span("campaign.cell", cell=cell.key,
                                  backend=self.name):
                        with recorder_heartbeat(
                            cell.key, policy.heartbeat_s, rec
                        ):
                            payloads = [
                                ctx.resolve_job(
                                    replace(job, attempt=lease.attempt)
                                )
                                for job in ctx.jobs_for(cell)
                            ]
                        ctx.finish_cell(cell, payloads)
                    ctx.leases.release(cell.key)
                    break
                except Exception as exc:  # noqa: BLE001 - §13: never fatal
                    verdict = ctx.fail_cell(
                        cell.key, repr(exc), attempt=lease.attempt
                    )
                    if verdict == QUARANTINED:
                        break
                    time.sleep(policy.delay_for(cell.key, lease.attempt))
