"""Serial in-process campaign execution — the reference backend."""

from __future__ import annotations

from repro.campaigns.backends.base import ExecutionContext

__all__ = ["InlineBackend"]


class InlineBackend:
    """Run every job in-process, in spec order.

    No pool, no subprocesses, no shared memory: the cheapest path for
    tiny sweeps, the mode the experiment runner uses to reproduce its
    historical single-threaded behaviour exactly, and the debuggable
    reference the other backends are bit-compared against (a breakpoint
    lands in the same process; tracebacks are undecorated).
    """

    name = "inline"

    def execute(self, ctx: ExecutionContext) -> None:
        rec = ctx.recorder
        for cell in ctx.pending:
            rec.event("cell.leased", cell=cell.key, backend=self.name)
            rec.event("cell.started", cell=cell.key, backend=self.name)
            with rec.span("campaign.cell", cell=cell.key,
                          backend=self.name):
                payloads = [
                    ctx.resolve_job(job) for job in ctx.jobs_for(cell)
                ]
                ctx.finish_cell(cell, payloads)
