"""Pluggable campaign execution backends.

One campaign, four ways to run it — all bit-identical by contract
(DESIGN.md §10, pinned by ``tests/campaigns/test_backend_identity.py``):

==========  ========================================================
backend     strategy
==========  ========================================================
inline      serial, in-process — debuggable reference implementation
pool        one shared process pool over every cell's jobs (DESIGN §9)
shard:N     N content-keyed shards, each with its own store, merged
            back with dedup + conflict detection
remote:N    the shard protocol over a pluggable transport — bundles
            shipped to workers, stores streamed back (DESIGN §15);
            ``remote:N@loopback`` (default) or ``remote:N@ssh:host``
==========  ========================================================

Select one with ``CampaignExecutor(..., backend="shard:4")`` (a string
or a :class:`Backend` instance) or ``repro-aedb campaign run --backend
shard:4``; :func:`resolve_backend` is the shared parser.
"""

from __future__ import annotations

from repro.campaigns.backends.base import Backend, ExecutionContext
from repro.campaigns.backends.inline import InlineBackend
from repro.campaigns.backends.pool import PoolBackend
from repro.campaigns.backends.remote import RemoteShardBackend
from repro.campaigns.backends.shard import (
    ShardBackend,
    ShardSpec,
    partition_cells,
    shard_index_for,
)
from repro.campaigns.backends.transport import (
    LoopbackTransport,
    ShardTransport,
    SSHTransport,
    TransportError,
)

__all__ = [
    "Backend",
    "ExecutionContext",
    "InlineBackend",
    "PoolBackend",
    "ShardBackend",
    "ShardSpec",
    "RemoteShardBackend",
    "ShardTransport",
    "LoopbackTransport",
    "SSHTransport",
    "TransportError",
    "partition_cells",
    "shard_index_for",
    "resolve_backend",
]

#: Default shard count when ``"shard"``/``"remote"`` is given bare.
DEFAULT_SHARDS = 2


def _parse_count(raw: str, value: str, form: str) -> int:
    """A positive shard count, or a ValueError naming the bad string.

    Validation happens here — at parse time — so ``--backend shard:0``
    fails with the offending string before any campaign state exists,
    not as a partition error mid-run.
    """
    try:
        n_shards = int(raw)
    except ValueError:
        n_shards = 0
    if n_shards <= 0:
        raise ValueError(
            f"bad shard count in backend {value!r}; use {form} with N >= 1"
        )
    return n_shards


def _parse_remote(spec: str, value: str, keep_shards: bool) -> Backend:
    """``remote[:N[@loopback | @ssh:host]]`` → a RemoteShardBackend."""
    rest = spec.split(":", 1)[1] if ":" in spec else str(DEFAULT_SHARDS)
    count_part, _, transport_part = rest.partition("@")
    n_shards = _parse_count(count_part, value, "remote:N")
    if not transport_part or transport_part == "loopback":
        transport = LoopbackTransport()
    elif transport_part.startswith("ssh:"):
        host = transport_part.split(":", 1)[1]
        if not host:
            raise ValueError(
                f"missing host in backend {value!r}; use remote:N@ssh:host"
            )
        transport = SSHTransport(host)
    else:
        raise ValueError(
            f"unknown transport in backend {value!r}; "
            "use remote:N@loopback or remote:N@ssh:host"
        )
    return RemoteShardBackend(
        n_shards, transport=transport, keep_shards=keep_shards
    )


def resolve_backend(
    value: "Backend | str", keep_shards: bool = False
) -> Backend:
    """A :class:`Backend` from an instance or a CLI-style string.

    Accepted strings: ``"inline"``, ``"pool"``, ``"shard"`` (=
    ``shard:2``), ``"shard:N"``, ``"remote"`` (= ``remote:2`` over
    loopback), ``"remote:N"``, ``"remote:N@loopback"``,
    ``"remote:N@ssh:host"``.  ``keep_shards`` applies to shard-family
    backends only (other strings ignore it).
    """
    if not isinstance(value, str):
        if isinstance(value, Backend):
            return value
        raise ValueError(
            f"backend must be a string or a Backend instance, got {value!r}"
        )
    spec = value.strip().lower()
    if spec == "inline":
        return InlineBackend()
    if spec == "pool":
        return PoolBackend()
    if spec == "shard":
        return ShardBackend(DEFAULT_SHARDS, keep_shards=keep_shards)
    if spec.startswith("shard:"):
        n_shards = _parse_count(spec.split(":", 1)[1], value, "shard:N")
        return ShardBackend(n_shards, keep_shards=keep_shards)
    if spec == "remote" or spec.startswith("remote:"):
        return _parse_remote(spec, value, keep_shards)
    raise ValueError(
        f"unknown backend {value!r}; expected 'inline', 'pool', "
        "'shard:N', or 'remote:N[@transport]'"
    )
