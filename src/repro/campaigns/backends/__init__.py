"""Pluggable campaign execution backends.

One campaign, three ways to run it — all bit-identical by contract
(DESIGN.md §10, pinned by ``tests/campaigns/test_backend_identity.py``):

========  ==========================================================
backend   strategy
========  ==========================================================
inline    serial, in-process — debuggable reference implementation
pool      one shared process pool over every cell's jobs (DESIGN §9)
shard:N   N content-keyed shards, each with its own store, merged
          back with dedup + conflict detection
========  ==========================================================

Select one with ``CampaignExecutor(..., backend="shard:4")`` (a string
or a :class:`Backend` instance) or ``repro-aedb campaign run --backend
shard:4``; :func:`resolve_backend` is the shared parser.
"""

from __future__ import annotations

from repro.campaigns.backends.base import Backend, ExecutionContext
from repro.campaigns.backends.inline import InlineBackend
from repro.campaigns.backends.pool import PoolBackend
from repro.campaigns.backends.shard import (
    ShardBackend,
    ShardSpec,
    partition_cells,
    shard_index_for,
)

__all__ = [
    "Backend",
    "ExecutionContext",
    "InlineBackend",
    "PoolBackend",
    "ShardBackend",
    "ShardSpec",
    "partition_cells",
    "shard_index_for",
    "resolve_backend",
]

#: Default shard count when ``"shard"`` is given without ``:N``.
DEFAULT_SHARDS = 2


def resolve_backend(
    value: "Backend | str", keep_shards: bool = False
) -> Backend:
    """A :class:`Backend` from an instance or a CLI-style string.

    Accepted strings: ``"inline"``, ``"pool"``, ``"shard"`` (=
    ``shard:2``), ``"shard:N"``.  ``keep_shards`` applies to shard
    backends only (other strings ignore it).
    """
    if not isinstance(value, str):
        if isinstance(value, Backend):
            return value
        raise ValueError(
            f"backend must be a string or a Backend instance, got {value!r}"
        )
    spec = value.strip().lower()
    if spec == "inline":
        return InlineBackend()
    if spec == "pool":
        return PoolBackend()
    if spec == "shard":
        return ShardBackend(DEFAULT_SHARDS, keep_shards=keep_shards)
    if spec.startswith("shard:"):
        raw = spec.split(":", 1)[1]
        try:
            n_shards = int(raw)
        except ValueError:
            n_shards = 0
        if n_shards <= 0:
            raise ValueError(
                f"bad shard count in backend {value!r}; use shard:N with N >= 1"
            )
        return ShardBackend(n_shards, keep_shards=keep_shards)
    raise ValueError(
        f"unknown backend {value!r}; expected 'inline', 'pool', or 'shard:N'"
    )
