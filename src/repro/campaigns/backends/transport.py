"""Shard transports: ship a shard bundle to a worker, stream the store back.

The remote backend (:mod:`repro.campaigns.backends.remote`) is
deliberately transport-agnostic: everything a worker needs travels as a
self-contained **bundle directory** —

* ``request.json`` — the shard work order (spec JSON, cell keys, shard
  index, serialized retry policy, forwarded attempt ledger);
* ``warm.jsonl``  — optional read-only warm start for the shard's
  evaluation-cache sidecar (a copy of the parent's cache file);
* ``store/``      — optional seed store: the parent-side shard store
  left by an earlier (crashed or partially fetched) attempt, shipped so
  the worker *resumes* it exactly like a local shard worker would
  instead of re-simulating completed cells.

and everything the parent needs travels back as the shard's
:class:`~repro.campaigns.store.ResultStore` directory plus a
``result.json`` summary.  A transport implements exactly one method::

    run_shard(shard_key, bundle_dir, dest_store) -> dict   # the summary

and signals *any* worker loss — nonzero exit, SIGKILL, connection drop,
heartbeat silence — by raising :class:`TransportError`.  The backend
turns that into the same recovery path a dead local shard takes:
completed cells merge back from whatever partial store was fetched, the
genuinely lost cells are charged one attempt and requeued onto the
surviving shard count (DESIGN.md §15).

Two transports live here.  :class:`LoopbackTransport` runs the worker
as a local subprocess (``repro-aedb campaign shard-exec``) against a
private scratch directory and copies the store back file-by-file — the
CI-exercised reference that models the full ship/execute/fetch cycle,
partial fetches included.  :class:`SSHTransport` wraps the *same*
worker command in ``ssh`` with ``tar`` pipes for ship and fetch; its
command construction is unit-tested, the network leg is not (CI has no
fleet).  The queue transport behind the campaign daemon lives in
:mod:`repro.campaigns.service`.

Fetches are **idempotent and crash-isolated**: every file is copied via
a temp file + ``os.replace`` in sorted order, so re-fetching a shard
(the retry-after-partial-fetch case) overwrites cleanly, and a fetch
that dies mid-way leaves only whole files — exactly the shapes
``ResultStore.merge_from`` already absorbs with dedup and torn-tail
skipping.
"""

from __future__ import annotations

import os
import shlex
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Protocol, runtime_checkable

__all__ = [
    "ShardTransport",
    "TransportError",
    "LoopbackTransport",
    "SSHTransport",
    "fetch_tree",
    "worker_command",
]

#: Names of the pieces of a shard bundle (shared with remote.py).
REQUEST_FILE = "request.json"
RESULT_FILE = "result.json"
WARM_FILE = "warm.jsonl"
STORE_DIR = "store"


class TransportError(RuntimeError):
    """A worker was lost (exit, kill, drop, silence) — requeue its shard."""


@runtime_checkable
class ShardTransport(Protocol):
    """The pluggable seam between the remote backend and the fleet."""

    name: str

    def run_shard(
        self, shard_key: str, bundle_dir: Path, dest_store: Path
    ) -> dict:  # pragma: no cover - protocol signature
        """Ship ``bundle_dir``, execute the shard, stream the store back
        into ``dest_store``; return the worker's ``result.json`` summary.
        Raises :class:`TransportError` on any worker loss."""
        ...


# --------------------------------------------------------------------- #
def fetch_tree(src: Path, dest: Path, partial_ok: bool = False) -> int:
    """Copy every file under ``src`` into ``dest`` (atomic per file).

    Sorted order, temp-file + ``os.replace`` per file: re-fetching is a
    clean overwrite and an interrupted fetch leaves only whole files.
    ``partial_ok=True`` is the failure-path salvage: copy what exists,
    swallow per-file errors (the merge layer skips incomplete cells
    anyway).  Returns the number of files copied.
    """
    src, dest = Path(src), Path(dest)
    if not src.is_dir():
        if partial_ok:
            return 0
        raise TransportError(f"no shard store to fetch at {src}")
    copied = 0
    for path in sorted(p for p in src.rglob("*") if p.is_file()):
        target = dest / path.relative_to(src)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=target.parent, prefix=f".{target.name}."
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(path.read_bytes())
                os.replace(tmp, target)
            except BaseException:
                os.unlink(tmp)
                raise
            copied += 1
        except OSError:
            if not partial_ok:
                raise
    return copied


def worker_command(
    request_dir: str, python: str = sys.executable
) -> list[str]:
    """The shard worker invocation both transports run.

    ``repro-aedb campaign shard-exec --request <bundle>`` executes the
    bundle's cells against ``<bundle>/store`` and writes
    ``<bundle>/result.json`` — everything stays inside the bundle, so
    "fetch" is the same operation everywhere: copy the bundle's store
    out.
    """
    return [python, "-m", "repro", "campaign", "shard-exec",
            "--request", str(request_dir)]


def _repro_pythonpath() -> str:
    """PYTHONPATH that makes ``import repro`` work in a child process."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH")
    if existing:
        return os.pathsep.join([src_root, existing])
    return src_root


# --------------------------------------------------------------------- #
class LoopbackTransport:
    """Localhost reference transport: subprocess worker, file copies.

    Models the full remote cycle — the worker runs in its **own scratch
    workdir** on a private copy of the bundle (it never touches the
    parent's store directly), and the shard store is streamed back with
    :func:`fetch_tree` — so every distributed failure shape (worker
    death, partial fetch, duplicate fetch) is reproducible on one
    machine.  ``REPRO_*`` toggles (faults, telemetry, compiled core)
    inherit through the environment like every other worker boundary.
    """

    name = "loopback"

    def __init__(
        self,
        python: str | None = None,
        timeout_s: float | None = None,
        env: dict | None = None,
    ):
        """``timeout_s`` hard-caps one shard execution (None = no cap);
        a timed-out worker is killed and reported as lost."""
        self.python = python or sys.executable
        self.timeout_s = timeout_s
        self.env = env

    def run_shard(
        self, shard_key: str, bundle_dir: Path, dest_store: Path
    ) -> dict:
        import json

        workdir = Path(tempfile.mkdtemp(prefix="repro-aedb-remote-"))
        try:
            bundle = workdir / "bundle"
            shutil.copytree(bundle_dir, bundle)
            env = dict(self.env if self.env is not None else os.environ)
            env["PYTHONPATH"] = _repro_pythonpath()
            try:
                proc = subprocess.run(
                    worker_command(str(bundle), self.python),
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=self.timeout_s,
                )
            except subprocess.TimeoutExpired as exc:
                self._salvage(bundle, dest_store)
                raise TransportError(
                    f"worker for {shard_key} timed out after "
                    f"{self.timeout_s}s"
                ) from exc
            if proc.returncode != 0:
                # Partial fetch first: cells the worker completed before
                # dying merge back; only the rest is requeued.
                self._salvage(bundle, dest_store)
                tail = (proc.stderr or "").strip().splitlines()[-3:]
                raise TransportError(
                    f"worker for {shard_key} exited "
                    f"{proc.returncode}: {' | '.join(tail)}"
                )
            result_path = bundle / RESULT_FILE
            if not result_path.exists():
                self._salvage(bundle, dest_store)
                raise TransportError(
                    f"worker for {shard_key} exited 0 without a result"
                )
            summary = json.loads(result_path.read_text())
            fetch_tree(bundle / STORE_DIR, dest_store)
            return summary
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    @staticmethod
    def _salvage(bundle: Path, dest_store: Path) -> None:
        fetch_tree(bundle / STORE_DIR, dest_store, partial_ok=True)


# --------------------------------------------------------------------- #
class SSHTransport:
    """The same worker protocol over ``ssh`` + ``tar`` pipes.

    Ship: ``tar -c`` the bundle locally, pipe into ``ssh host tar -x``
    under a per-shard directory beneath ``remote_root``.  Execute: the
    identical :func:`worker_command`, quoted for the remote shell.
    Fetch: ``ssh host tar -c store`` piped into a local ``tar -x`` at
    the destination.  Command construction is pure (unit-testable
    without a network); ``run_shard`` wires the pipes and maps any
    nonzero leg to :class:`TransportError`.
    """

    name = "ssh"

    def __init__(
        self,
        host: str,
        python: str = "python3",
        remote_root: str = "/tmp/repro-aedb-remote",
        ssh: tuple[str, ...] = ("ssh", "-o", "BatchMode=yes"),
        timeout_s: float | None = None,
    ):
        if not host:
            raise ValueError("SSHTransport needs a host")
        self.host = host
        self.python = python
        self.remote_root = remote_root.rstrip("/")
        self.ssh = tuple(ssh)
        self.timeout_s = timeout_s

    # -- command construction (pure, unit-tested) ---------------------- #
    def _remote_bundle(self, shard_key: str) -> str:
        return f"{self.remote_root}/{shard_key}"

    def ship_command(self, shard_key: str) -> list[str]:
        """Remote side of the ship pipe (reads a tar stream on stdin)."""
        bundle = self._remote_bundle(shard_key)
        return [
            *self.ssh, self.host,
            f"mkdir -p {shlex.quote(bundle)} && "
            f"tar -x -C {shlex.quote(bundle)}",
        ]

    def exec_command(self, shard_key: str) -> list[str]:
        remote = " ".join(
            shlex.quote(part)
            for part in worker_command(
                self._remote_bundle(shard_key), self.python
            )
        )
        return [*self.ssh, self.host, remote]

    def fetch_command(self, shard_key: str) -> list[str]:
        """Remote side of the fetch pipe (writes a tar stream to stdout).

        Streams ``store`` and ``result.json`` together; missing pieces
        (a worker that died before writing) are tolerated so the parent
        can salvage whatever exists.
        """
        bundle = self._remote_bundle(shard_key)
        return [
            *self.ssh, self.host,
            f"cd {shlex.quote(bundle)} && "
            f"tar -c {STORE_DIR} {RESULT_FILE} 2>/dev/null || true",
        ]

    def cleanup_command(self, shard_key: str) -> list[str]:
        return [
            *self.ssh, self.host,
            f"rm -rf {shlex.quote(self._remote_bundle(shard_key))}",
        ]

    # -- execution ----------------------------------------------------- #
    def run_shard(
        self, shard_key: str, bundle_dir: Path, dest_store: Path
    ) -> dict:  # pragma: no cover - needs a live fleet
        import io
        import json
        import tarfile

        buf = io.BytesIO()
        with tarfile.open(fileobj=buf, mode="w") as tar:
            for path in sorted(Path(bundle_dir).rglob("*")):
                tar.add(path, arcname=str(path.relative_to(bundle_dir)))
        self._run(self.ship_command(shard_key), shard_key, buf.getvalue())
        self._run(self.exec_command(shard_key), shard_key)
        out = self._run(self.fetch_command(shard_key), shard_key)
        scratch = Path(tempfile.mkdtemp(prefix="repro-aedb-ssh-fetch-"))
        try:
            with tarfile.open(fileobj=io.BytesIO(out), mode="r") as tar:
                tar.extractall(scratch, filter="data")
            result_path = scratch / RESULT_FILE
            if not result_path.exists():
                fetch_tree(scratch / STORE_DIR, dest_store, partial_ok=True)
                raise TransportError(
                    f"worker for {shard_key} on {self.host} left no result"
                )
            summary = json.loads(result_path.read_text())
            fetch_tree(scratch / STORE_DIR, dest_store)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
            subprocess.run(
                self.cleanup_command(shard_key), capture_output=True
            )
        return summary

    def _run(
        self, cmd: list[str], shard_key: str, stdin: bytes | None = None
    ) -> bytes:  # pragma: no cover - needs a live fleet
        try:
            proc = subprocess.run(
                cmd, input=stdin, capture_output=True,
                timeout=self.timeout_s,
            )
        except subprocess.TimeoutExpired as exc:
            raise TransportError(
                f"ssh leg for {shard_key} timed out: {cmd[-1]!r}"
            ) from exc
        if proc.returncode != 0:
            tail = proc.stderr.decode(errors="replace").strip()[-200:]
            raise TransportError(
                f"ssh leg for {shard_key} exited {proc.returncode}: {tail}"
            )
        return proc.stdout
