"""Remote shard execution: the shard protocol over a pluggable transport.

:class:`RemoteShardBackend` is the fourth implementation of the backend
protocol (DESIGN.md §10) and deliberately a *thin* one: the partition,
store layout, merge semantics, and dead-shard recovery loop are all
inherited from :class:`~repro.campaigns.backends.shard.ShardBackend` —
the remote backend only replaces *how a shard runs* (a transport ships
a bundle and streams the store back, instead of a local subprocess
returning results over IPC) and *how its outcome travels* (a JSON
``result.json`` summary of cell keys and counters; the records
themselves ride in the shard store files, which is the only channel a
remote machine has anyway).

The wire format is the content-keyed shard bundle described in
:mod:`repro.campaigns.backends.transport`: ``request.json`` carries the
spec JSON, the shard's cell keys, the serialized
:class:`~repro.campaigns.resilience.RetryPolicy`, and the parent's
attempt ledger for those cells — so an in-shard quarantine on a remote
machine spends exactly the budget it would locally.  Ad-hoc scale
*objects* cannot cross the wire; remote campaigns use the spec's named
scale (the executor's ``scale=`` override raises here).

Worker loss (nonzero exit, ``kill -9``, fetch failure) surfaces as a
:class:`~repro.campaigns.backends.transport.TransportError` from the
transport, which the inherited recovery loop treats exactly like a dead
local shard: the partial store the transport salvaged merges back, lost
cells are charged one attempt and requeued over the survivors, and the
run never aborts (DESIGN.md §15).  A twice-fetched or re-merged shard
is absorbed by ``ResultStore.merge_from`` dedup plus the idempotent
telemetry/ledger folds.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from pathlib import Path

from repro.campaigns.backends.shard import ShardBackend, ShardSpec
from repro.campaigns.backends.transport import (
    REQUEST_FILE,
    RESULT_FILE,
    STORE_DIR,
    WARM_FILE,
    LoopbackTransport,
    ShardTransport,
)
from repro.campaigns.resilience import RetryPolicy
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore

__all__ = [
    "RemoteShardBackend",
    "write_request",
    "execute_request",
    "REQUEST_VERSION",
]

#: ``request.json`` schema version (workers reject foreign versions).
REQUEST_VERSION = 1


# --------------------------------------------------------------------- #
def write_request(
    bundle_dir: Path,
    *,
    spec: CampaignSpec,
    shard: ShardSpec,
    use_cache: bool,
    warm_path: Path | None = None,
    seed_store: Path | None = None,
    mls_engine: str | None = None,
    policy: RetryPolicy | None = None,
    initial_attempts: dict[str, int] | None = None,
) -> Path:
    """Materialise one shard's work order as a transportable bundle."""
    bundle_dir = Path(bundle_dir)
    bundle_dir.mkdir(parents=True, exist_ok=True)
    if warm_path is not None and Path(warm_path).exists():
        shutil.copyfile(warm_path, bundle_dir / WARM_FILE)
    if seed_store is not None and Path(seed_store).is_dir():
        # Resume shipping: the parent-side shard store from an earlier
        # attempt travels with the request, so the worker skips its
        # completed cells exactly like a resumed local shard.
        shutil.copytree(
            seed_store, bundle_dir / STORE_DIR, dirs_exist_ok=True
        )
    request = {
        "v": REQUEST_VERSION,
        "shard_key": shard.key,
        "shard_index": shard.index,
        "n_shards": shard.n_shards,
        "cells": list(shard.cell_keys),
        "spec": json.loads(spec.to_json()),
        "use_cache": bool(use_cache),
        "mls_engine": mls_engine,
        "retry_policy": (
            policy.as_dict() if policy is not None else None
        ),
        "initial_attempts": dict(initial_attempts or {}),
    }
    path = bundle_dir / REQUEST_FILE
    path.write_text(json.dumps(request, sort_keys=True, indent=1))
    return path


def execute_request(
    bundle_dir: str | Path,
    store_dir: str | Path | None = None,
    result_path: str | Path | None = None,
) -> dict:
    """The worker side: run one shard bundle, write store + summary.

    The remote twin of the local backend's ``_run_shard`` — a serial
    in-shard :class:`~repro.campaigns.executor.CampaignExecutor` against
    the bundle's own store (``<bundle>/store`` by default), its cache
    sidecar warmed read-only from the shipped ``warm.jsonl``.  The
    summary (written atomically to ``<bundle>/result.json``) carries
    only keys and counters; records live in the store files the
    transport fetches back.  ``repro-aedb campaign shard-exec`` is the
    CLI face of this function.
    """
    from repro.campaigns.executor import CampaignExecutor
    from repro.tuning.cache import PersistentEvaluationCache

    bundle = Path(bundle_dir)
    request = json.loads((bundle / REQUEST_FILE).read_text())
    if request.get("v") != REQUEST_VERSION:
        raise ValueError(
            f"unsupported shard request version {request.get('v')!r} "
            f"in {bundle / REQUEST_FILE}"
        )
    spec = CampaignSpec.from_json(json.dumps(request["spec"]))
    store = ResultStore(
        Path(store_dir) if store_dir is not None else bundle / STORE_DIR
    )
    policy = None
    if request.get("retry_policy") is not None:
        policy = RetryPolicy.from_dict(request["retry_policy"])
    cache = None
    if request.get("use_cache"):
        cache = PersistentEvaluationCache(store.eval_cache_path)
        warm = bundle / WARM_FILE
        if warm.exists():
            cache.warm_from(str(warm))
    executor = CampaignExecutor(
        spec,
        store,
        serial=True,
        mls_engine=request.get("mls_engine"),
        eval_cache=cache if cache is not None else None,
        only_cells=tuple(request["cells"]),
        telemetry_attrs={"shard": int(request["shard_index"])},
        retry_policy=policy,
        initial_attempts={
            str(k): int(n)
            for k, n in (request.get("initial_attempts") or {}).items()
        },
    )
    # The parent emits the campaign-wide roll-up counters after the
    # merge (same contract as the local shard worker).
    executor._emit_rollup_counters = False
    try:
        report = executor.run()
    finally:
        if cache is not None:
            cache.close()
    summary = {
        "v": REQUEST_VERSION,
        "shard_key": request["shard_key"],
        "shard_index": int(request["shard_index"]),
        "executed": [r.cell.key for r in report.executed],
        "resumed": [cell.key for cell in report.skipped],
        "failed": [
            [f.cell_key, f.attempts, f.error] for f in report.failed
        ],
        "cache_hits": report.cache_hits,
        "simulations_executed": report.simulations_executed,
        "store_digest": store.content_digest(),
    }
    out = Path(
        result_path if result_path is not None else bundle / RESULT_FILE
    )
    tmp = out.with_suffix(out.suffix + ".tmp")
    tmp.write_text(json.dumps(summary, sort_keys=True, indent=1))
    tmp.replace(out)
    return summary


# --------------------------------------------------------------------- #
class RemoteShardBackend(ShardBackend):
    """Run content-keyed shards on remote workers behind a transport.

    Inherits the parent-cache pre-filter, the dispatch/merge/report
    round loop, dead-shard requeue over survivors, and the final sweep
    from :class:`ShardBackend`; only dispatch is replaced (threads
    waiting on the transport instead of a local process pool).
    """

    def __init__(
        self,
        n_shards: int,
        transport: ShardTransport | None = None,
        max_workers: int | None = None,
        keep_shards: bool = False,
    ):
        super().__init__(n_shards, max_workers, keep_shards)
        self.transport = transport or LoopbackTransport()
        self.name = f"remote:{self.n_shards}@{self.transport.name}"

    def execute(self, ctx) -> None:
        if ctx.store is None and ctx.cache is None:
            raise ValueError(
                "remote backend needs a store or an evaluation cache: "
                "results travel back as shard store files, not over IPC"
            )
        if ctx.scale_override is not None:
            raise ValueError(
                "remote backend cannot ship ad-hoc scale objects; "
                "name the scale in the spec (CampaignSpec(scale=...))"
            )
        super().execute(ctx)

    # ------------------------------------------------------------------ #
    def _dispatch_round(self, ctx, shards, shards_root, use_cache, round_no):
        """One transport call per shard, concurrently; same return shape
        as the local backend: ``(results by index, exceptions)``."""
        rec = ctx.recorder
        warm = None
        if use_cache and Path(ctx.cache.path).exists():
            warm = Path(ctx.cache.path)
        max_workers = self.max_workers or ctx.max_workers
        n_threads = min(len(shards), max_workers or len(shards))
        results, failures = {}, {}
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = {}
            for shard in shards:
                for key in shard.cell_keys:
                    rec.event("cell.leased", cell=key,
                              backend=self.name, shard=shard.index)
                rec.event("shard.dispatched", shard=shard.index,
                          n_cells=len(shard.cells), round=round_no,
                          transport=self.transport.name)
                futures[pool.submit(
                    self._run_remote, ctx, shard, shards_root,
                    use_cache, warm,
                )] = shard
            for future in as_completed(futures):
                shard = futures[future]
                try:
                    results[shard.index] = future.result()
                    rec.event("shard.finished", shard=shard.index,
                              round=round_no)
                except Exception as exc:  # noqa: BLE001
                    failures[shard.index] = exc
                    rec.event("shard.failed", shard=shard.index,
                              round=round_no, error=repr(exc))
        return results, failures

    def _run_remote(self, ctx, shard, shards_root, use_cache, warm):
        """Bundle → transport → fetched store → a local-shaped result."""
        from repro.campaigns.backends.shard import _ShardResult

        dest = Path(shards_root) / shard.key
        with tempfile.TemporaryDirectory(
            prefix="repro-aedb-bundle-"
        ) as tmp:
            bundle = Path(tmp) / "bundle"
            write_request(
                bundle,
                spec=ctx.spec,
                shard=shard,
                use_cache=use_cache,
                warm_path=warm,
                seed_store=dest if dest.is_dir() else None,
                mls_engine=ctx.mls_engine,
                policy=ctx.policy,
                initial_attempts={
                    key: ctx.leases.attempts(key)
                    for key in shard.cell_keys
                    if ctx.leases.attempts(key) > 0
                },
            )
            t0 = time.perf_counter()
            summary = self.transport.run_shard(shard.key, bundle, dest)
            ctx.recorder.record_span(
                "shard.transport", time.perf_counter() - t0,
                shard=shard.index, transport=self.transport.name,
            )
        fetched = ResultStore(dest)
        cell_by_key = {cell.key: cell for cell in shard.cells}
        executed = tuple(
            (key, fetched.read_cell(cell_by_key[key]), [])
            for key in summary.get("executed", ())
        )
        resumed = tuple(
            (key, fetched.read_cell(cell_by_key[key]), [])
            for key in summary.get("resumed", ())
        )
        return _ShardResult(
            executed=executed,
            resumed=resumed,
            cache_hits=int(summary.get("cache_hits", 0)),
            simulations_executed=int(
                summary.get("simulations_executed", 0)
            ),
            failed=tuple(
                (str(key), int(attempts), str(error))
                for key, attempts, error in summary.get("failed", ())
            ),
        )
