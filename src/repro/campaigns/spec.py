"""Declarative scenario-space sweeps.

A :class:`CampaignSpec` names a grid — densities × mobility models ×
arena sizes × seeds × algorithms — and expands it into concrete
:class:`CampaignCell` units of work.  A cell is entirely self-describing
(every seed it needs is derived at expansion time), so it can be shipped
to a worker process, content-addressed on disk, and re-derived bit-for-bit
from the same spec on another machine.

Two workloads share the cell shape:

* ``algorithm == "evaluate"`` — score the spec's parameter
  configurations on the cell's network set (one simulation per
  configuration × network; fully batchable across cells);
* ``algorithm == <optimiser name>`` — run one seeded optimiser
  (NSGA-II, CellDE, AEDB-MLS, ...) against the cell's tuning problem
  (one job per cell).

Seed discipline (all streams fan out of ``master_seed`` through
:class:`repro.utils.rng.RngFactory`):

* evaluate cells draw a fresh ``scenario_seed`` per seed index — the
  seeds axis sweeps *network populations*, the classic scenario study;
* tune cells keep the paper's methodology — fixed evaluation networks
  (``scenario_seed = master_seed``) and a per-run ``algorithm_seed``
  derived with the exact key the experiment runner has always used, so a
  campaign-expressed run reproduces ``run_campaign`` bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.manet.aedb import AEDBParams
from repro.manet.config import SimulationConfig
from repro.manet.scenarios import (
    MOBILITY_MODELS,
    NetworkScenario,
    make_scenarios,
)
from repro.utils.rng import RngFactory

__all__ = [
    "EVALUATE",
    "DEFAULT_PARAMS",
    "CampaignCell",
    "CampaignSpec",
    "canonical_json",
]

#: The non-optimiser workload label: score fixed configurations.
EVALUATE = "evaluate"

#: The default AEDB configuration as a plain vector (spec-friendly).
DEFAULT_PARAMS = tuple(float(v) for v in AEDBParams().as_array())


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CampaignCell:
    """One grid point of a campaign — the unit of execution and storage."""

    #: Devices/km² (kept at the spec's original type: the RNG keying is
    #: repr-based, so ``100`` and ``100.0`` are different streams).
    density_per_km2: float
    #: Motion regime, one of :data:`repro.manet.scenarios.MOBILITY_MODELS`.
    mobility_model: str
    #: Side of the square arena, m.
    area_side_m: float
    #: Position along the spec's seeds axis.
    seed_index: int
    #: ``"evaluate"`` or an optimiser name from the experiment runner.
    algorithm: str
    #: Evaluation networks in the cell's set.
    n_networks: int
    #: Node-count override (tests / quick sweeps); None = density-derived.
    n_nodes: int | None
    #: Master seed of the cell's network set.
    scenario_seed: int
    #: Optimiser seed (0 and unused for evaluate cells).
    algorithm_seed: int
    #: Scale preset name for tune cells ("" for evaluate cells).
    scale: str
    #: Parameter vectors scored by evaluate cells (() for tune cells).
    params: tuple[tuple[float, ...], ...]

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """Plain-JSON form (stable field set; the content key hashes it)."""
        return {
            "density_per_km2": self.density_per_km2,
            "mobility_model": self.mobility_model,
            "area_side_m": self.area_side_m,
            "seed_index": self.seed_index,
            "algorithm": self.algorithm,
            "n_networks": self.n_networks,
            "n_nodes": self.n_nodes,
            "scenario_seed": self.scenario_seed,
            "algorithm_seed": self.algorithm_seed,
            "scale": self.scale,
            "params": [list(p) for p in self.params],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignCell":
        return cls(
            density_per_km2=data["density_per_km2"],
            mobility_model=data["mobility_model"],
            area_side_m=data["area_side_m"],
            seed_index=int(data["seed_index"]),
            algorithm=data["algorithm"],
            n_networks=int(data["n_networks"]),
            n_nodes=None if data["n_nodes"] is None else int(data["n_nodes"]),
            scenario_seed=int(data["scenario_seed"]),
            algorithm_seed=int(data["algorithm_seed"]),
            scale=data["scale"],
            params=tuple(tuple(float(v) for v in p) for p in data["params"]),
        )

    @property
    def key(self) -> str:
        """Content key: readable slug + hash of the full cell contents.

        Any change to what the cell would compute (parameters, seeds,
        network count, ...) changes the key, so a stale result can never
        be mistaken for the current cell's.
        """
        digest = hashlib.sha1(
            canonical_json(self.as_dict()).encode("utf-8")
        ).hexdigest()[:10]
        slug = (
            f"d{self.density_per_km2:g}-{self.mobility_model}"
            f"-a{self.area_side_m:g}-s{self.seed_index}"
            f"-{self.algorithm.lower()}"
        )
        return f"{slug}-{digest}"

    # ------------------------------------------------------------------ #
    def sim_config(self) -> SimulationConfig:
        """The cell's simulation timeline/arena."""
        return SimulationConfig(area_side_m=self.area_side_m)

    def scenarios(self) -> list[NetworkScenario]:
        """Materialise the cell's evaluation network set."""
        return make_scenarios(
            self.density_per_km2,
            n_networks=self.n_networks,
            sim=self.sim_config(),
            master_seed=self.scenario_seed,
            n_nodes=self.n_nodes,
            mobility_model=self.mobility_model,
        )

    def param_sets(self) -> list[AEDBParams]:
        """Decode the evaluate-cell parameter vectors."""
        return [AEDBParams.from_array(p).clipped() for p in self.params]

    @property
    def n_simulations(self) -> int:
        """Direct simulation jobs this cell expands into (0 = one tune job)."""
        if self.algorithm != EVALUATE:
            return 0
        return len(self.params) * self.n_networks


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative grid of campaign cells."""

    name: str = "campaign"
    densities: tuple[float, ...] = (100, 200, 300)
    mobility_models: tuple[str, ...] = ("random-walk",)
    area_sides_m: tuple[float, ...] = (500.0,)
    #: Grid points along the seeds axis (network draws for evaluate
    #: cells, independent optimiser runs for tune cells).
    n_seeds: int = 1
    algorithms: tuple[str, ...] = (EVALUATE,)
    #: Configurations scored by evaluate cells.
    params: tuple[tuple[float, ...], ...] = (DEFAULT_PARAMS,)
    n_networks: int = 10
    n_nodes: int | None = None
    master_seed: int = 0xAEDB
    #: Scale preset name budgeting tune cells.
    scale: str = "quick"
    #: Preferred execution backend ("inline", "pool", "shard:N"), or
    #: None to defer to the executor/CLI.  An execution *hint*, not
    #: content: cells (and their keys) ignore it — every backend
    #: produces byte-identical results (DESIGN.md §10) — so it is
    #: serialised only when set and never invalidates stored cells.
    backend: str | None = None

    def __post_init__(self) -> None:
        for axis, label in (
            (self.densities, "densities"),
            (self.mobility_models, "mobility_models"),
            (self.area_sides_m, "area_sides_m"),
            (self.algorithms, "algorithms"),
        ):
            if not axis:
                raise ValueError(f"{label} must be non-empty")
            if len(set(axis)) != len(axis):
                # Duplicate grid points expand to identical cells that
                # would race for the same store file.
                raise ValueError(f"{label} contains duplicates: {axis}")
        for model in self.mobility_models:
            if model not in MOBILITY_MODELS:
                raise ValueError(
                    f"unknown mobility model {model!r}; "
                    f"choose from {MOBILITY_MODELS}"
                )
        if self.n_seeds <= 0:
            raise ValueError(f"n_seeds must be positive, got {self.n_seeds}")
        if self.n_networks <= 0:
            raise ValueError(
                f"n_networks must be positive, got {self.n_networks}"
            )
        if EVALUATE in self.algorithms and not self.params:
            raise ValueError("evaluate campaigns need at least one params vector")
        if self.backend is not None:
            # Fail at declaration time, not mid-campaign: reuse the one
            # canonical parser (lazy import: backends import this module).
            from repro.campaigns.backends import resolve_backend

            resolve_backend(self.backend)

    # ------------------------------------------------------------------ #
    @property
    def n_cells(self) -> int:
        """Grid size before expansion."""
        return (
            len(self.densities)
            * len(self.mobility_models)
            * len(self.area_sides_m)
            * len(self.algorithms)
            * self.n_seeds
        )

    def cells(self) -> list[CampaignCell]:
        """Expand the grid, outermost axis first (stable order)."""
        factory = RngFactory(self.master_seed)
        out: list[CampaignCell] = []
        for density in self.densities:
            for mobility in self.mobility_models:
                for area in self.area_sides_m:
                    for algorithm in self.algorithms:
                        for k in range(self.n_seeds):
                            out.append(
                                self._make_cell(
                                    factory, density, mobility, area,
                                    algorithm, k,
                                )
                            )
        return out

    def _make_cell(
        self, factory: RngFactory, density, mobility: str, area: float,
        algorithm: str, k: int,
    ) -> CampaignCell:
        if algorithm == EVALUATE:
            scenario_seed = int(
                factory.seed_sequence("networks", k).generate_state(1)[0]
            )
            algorithm_seed = 0
            scale = ""
            params = self.params
        else:
            # The experiment runner's exact keying — a campaign-expressed
            # run_campaign reproduces the historical seeds bit-for-bit.
            scenario_seed = self.master_seed
            algorithm_seed = int(
                factory.seed_sequence(
                    "run", algorithm, density, k
                ).generate_state(1)[0]
            )
            scale = self.scale
            params = ()
        return CampaignCell(
            density_per_km2=density,
            mobility_model=mobility,
            area_side_m=float(area),
            seed_index=k,
            algorithm=algorithm,
            n_networks=self.n_networks,
            n_nodes=self.n_nodes,
            scenario_seed=scenario_seed,
            algorithm_seed=algorithm_seed,
            scale=scale,
            params=params,
        )

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        data = {
            "name": self.name,
            "densities": list(self.densities),
            "mobility_models": list(self.mobility_models),
            "area_sides_m": list(self.area_sides_m),
            "n_seeds": self.n_seeds,
            "algorithms": list(self.algorithms),
            "params": [list(p) for p in self.params],
            "n_networks": self.n_networks,
            "n_nodes": self.n_nodes,
            "master_seed": self.master_seed,
            "scale": self.scale,
        }
        if self.backend is not None:
            # Only when set: a backend-less spec round-trips to the
            # historical JSON, so pre-§10 spec.json files still match.
            data["backend"] = self.backend
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        return cls(
            name=data.get("name", "campaign"),
            densities=tuple(data["densities"]),
            mobility_models=tuple(data.get("mobility_models", ("random-walk",))),
            area_sides_m=tuple(data.get("area_sides_m", (500.0,))),
            n_seeds=int(data.get("n_seeds", 1)),
            algorithms=tuple(data.get("algorithms", (EVALUATE,))),
            params=tuple(
                tuple(float(v) for v in p)
                for p in data.get("params", [list(DEFAULT_PARAMS)])
            ),
            n_networks=int(data.get("n_networks", 10)),
            n_nodes=(
                None if data.get("n_nodes") is None else int(data["n_nodes"])
            ),
            master_seed=int(data.get("master_seed", 0xAEDB)),
            scale=data.get("scale", "quick"),
            backend=data.get("backend"),
        )

    def to_json(self) -> str:
        """Human-diffable JSON form (stable key order)."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())

    def with_name(self, name: str) -> "CampaignSpec":
        """A copy under a different campaign name."""
        return replace(self, name=name)
