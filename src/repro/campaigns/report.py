"""Plain-text campaign status, result, and merge rendering (CLI surface)."""

from __future__ import annotations

from repro.campaigns.spec import EVALUATE, CampaignSpec
from repro.campaigns.store import MergeReport, ResultStore

__all__ = [
    "render_status",
    "render_report",
    "render_merge",
    "render_failures",
]


def render_status(spec: CampaignSpec, store: ResultStore) -> str:
    """Completion census, cache/simulation tallies, pending cell keys."""
    from repro.telemetry import TelemetrySummary
    from repro.tuning.cache import PersistentEvaluationCache

    status = store.status(spec)
    lines = [
        f"campaign '{spec.name}': {status.complete}/{status.total} cells "
        f"complete ({status.pending} pending)",
        f"grid: {len(spec.densities)} densities x "
        f"{len(spec.mobility_models)} mobility models x "
        f"{len(spec.area_sides_m)} arenas x {spec.n_seeds} seeds x "
        f"{len(spec.algorithms)} algorithms",
        f"store: {store.root}",
    ]
    if store.eval_cache_path.exists():
        entries = PersistentEvaluationCache._read_entries(
            store.eval_cache_path
        )
        lines.append(
            f"evaluation cache: {len(entries)} stored simulation(s)"
        )
    telemetry = TelemetrySummary.from_file(store.telemetry_path)
    if not telemetry.is_empty:
        # The same counters `campaign telemetry` reports — status and
        # telemetry must agree because both read one stream.
        lines.append(
            "telemetry: "
            f"{telemetry.counter('campaign.cache_hits')} cache hit(s), "
            f"{telemetry.counter('campaign.simulations_executed')} "
            "simulation(s) executed"
        )
    from repro.campaigns.resilience import FailureLedger

    quarantined = FailureLedger(store.failures_path).latest_by_cell()
    if quarantined:
        lines.append(
            f"quarantined: {len(quarantined)} cell(s) in "
            f"{store.FAILURES_FILE} (see `campaign failures`)"
        )
    pending = store.pending_cells(spec)
    if pending:
        lines.append("pending cells:")
        lines += [
            f"  {cell.key}"
            + ("  [quarantined]" if cell.key in quarantined else "")
            for cell in pending
        ]
    return "\n".join(lines)


def render_report(spec: CampaignSpec, store: ResultStore) -> str:
    """One row per completed record across the whole grid."""
    header = (
        f"{'density':>8s} {'mobility':>16s} {'arena':>6s} {'seed':>4s} "
        f"{'algorithm':>12s} {'coverage':>9s} {'energy':>10s} "
        f"{'forward.':>9s} {'bt[s]':>6s} {'front':>6s} {'evals':>6s}"
    )
    lines = [f"campaign '{spec.name}' results", header]
    incomplete = 0
    for cell in spec.cells():
        try:
            records = store.read_cell(cell)
        except FileNotFoundError:
            incomplete += 1
            continue
        prefix = (
            f"{cell.density_per_km2:>8g} {cell.mobility_model:>16s} "
            f"{cell.area_side_m:>6g} {cell.seed_index:>4d} "
            f"{cell.algorithm:>12s}"
        )
        for record in records:
            if cell.algorithm == EVALUATE:
                agg = record["aggregate"]
                lines.append(
                    f"{prefix} {agg['coverage']:>9.1f} "
                    f"{agg['energy_dbm']:>10.1f} {agg['forwardings']:>9.1f} "
                    f"{agg['broadcast_time_s']:>6.2f} {'-':>6s} {'-':>6s}"
                )
            else:
                lines.append(
                    f"{prefix} {'-':>9s} {'-':>10s} {'-':>9s} {'-':>6s} "
                    f"{len(record['front']):>6d} {record['evaluations']:>6d}"
                )
    if incomplete:
        lines.append(f"({incomplete} cells not yet complete)")
    return "\n".join(lines)


def render_merge(dest: ResultStore, reports: list[MergeReport]) -> str:
    """One line per merged source plus totals (``campaign merge``)."""
    lines = [f"merging {len(reports)} store(s) into {dest.root}"]
    for report in reports:
        lines.append(
            f"  {report.source}: {report.cells_merged} cells merged, "
            f"{report.cells_deduped} identical, "
            f"{report.cells_skipped} incomplete skipped; "
            f"{report.eval_entries_merged} eval entries merged "
            f"({report.eval_entries_deduped} identical)"
        )
    lines.append(
        f"total: {sum(r.cells_merged for r in reports)} cells merged, "
        f"{sum(r.eval_entries_merged for r in reports)} eval entries merged"
    )
    return "\n".join(lines)


def render_failures(spec: CampaignSpec, store: ResultStore) -> str:
    """The quarantine ledger, newest entry per cell (``campaign
    failures``).  Entries for cells that have since completed were
    pruned by the run that recovered them; anything listed here is a
    cell the retry budget could not save (DESIGN.md §13)."""
    import time as _time

    from repro.campaigns.resilience import FailureLedger

    ledger = FailureLedger(store.failures_path)
    latest = ledger.latest_by_cell()
    if not latest:
        return (
            f"campaign '{spec.name}': no quarantined cells "
            f"(no {store.FAILURES_FILE} entries under {store.root})"
        )
    known = {cell.key: cell for cell in spec.cells()}
    lines = [
        f"campaign '{spec.name}': {len(latest)} quarantined cell(s)",
        f"ledger: {store.failures_path}",
    ]
    for key in sorted(latest, key=lambda k: latest[k].get("t", 0.0)):
        entry = latest[key]
        cell = known.get(key)
        what = (
            f"{cell.density_per_km2:g}/km2 {cell.mobility_model} "
            f"seed {cell.seed_index} {cell.algorithm}"
            if cell is not None
            else "(not in current spec)"
        )
        stamp = _time.strftime(
            "%Y-%m-%d %H:%M:%S", _time.localtime(entry.get("t", 0.0))
        )
        lines.append(
            f"  {key}  {what}\n"
            f"    {entry.get('attempts', '?')} attempt(s), last {stamp}: "
            f"{entry.get('error', '')}"
        )
    lines.append(
        "re-run the campaign to retry quarantined cells "
        "(completed cells are skipped; recovered cells are pruned "
        "from the ledger)"
    )
    return "\n".join(lines)
