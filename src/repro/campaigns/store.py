"""Resumable on-disk campaign results.

Layout under one campaign directory::

    <root>/
      spec.json            # the CampaignSpec that owns this directory
      cells/<key>.jsonl    # one file per completed cell

The optional ``evaluations.jsonl`` sidecar is the campaign's persistent
per-simulation evaluation cache
(:class:`~repro.tuning.cache.PersistentEvaluationCache`, written by the
executor): cells resolve at cell granularity from ``cells/``, individual
simulations at (scenario, params) granularity from the sidecar — which
also serves *other* campaigns whose grids overlap.

A cell file is JSON Lines: a header line carrying the full cell
description, one line per result record, and a terminal ``done`` marker.
Files are written whole and atomically (temp file + ``os.replace``), so
a crash mid-campaign leaves *missing* cells, never half-written ones —
resume is simply "run the cells whose files lack a done marker".  Cell
files are content-keyed by :attr:`CampaignCell.key`: editing the spec
changes the keys, so stale results are never picked up by mistake.

Reading is torn-tail tolerant, the same contract
:class:`~repro.tuning.cache.PersistentEvaluationCache` applies to its
sidecar: a final line cut mid-record (a crash during an external copy or
merge) drops just that line and leaves the cell *incomplete* — never an
error, and never a half-trusted read.  Damage earlier in the file marks
the whole cell incomplete; either way the next run re-executes it and
the atomic rewrite heals the file.

:meth:`ResultStore.merge_from` folds another store — typically a shard
store produced by the shard backend — into this one: complete cell files
copy over byte-for-byte, cells present on both sides must be
*byte-identical* (dedup) or the merge raises :class:`MergeConflictError`
(a silently "winning" payload would break the campaign determinism
contract), and the ``evaluations.jsonl`` sidecars merge key-by-key under
the same dedup/conflict rule.

All JSON is canonically encoded (sorted keys, fixed separators), which
makes a re-run of the same spec + seed produce bit-identical files —
the determinism contract the campaign tests pin down.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.campaigns.spec import CampaignCell, CampaignSpec, canonical_json
from repro.utils import flags
from repro.utils.jsonl import ensure_line_boundary

__all__ = ["ResultStore", "CampaignStatus", "MergeConflictError", "MergeReport"]


class MergeConflictError(ValueError):
    """Two stores hold *different* completed payloads for the same key.

    Raised instead of silently overwriting: a conflicting record means
    the stores were produced by diverging code or inputs, and picking a
    winner would hide the divergence.
    """


@dataclass(frozen=True)
class MergeReport:
    """What one :meth:`ResultStore.merge_from` call did."""

    #: Root of the store that was merged in.
    source: str
    #: Complete cell files copied into this store.
    cells_merged: int
    #: Cells already present with byte-identical contents.
    cells_deduped: int
    #: Source cell files skipped because incomplete/torn (re-run later).
    cells_skipped: int
    #: Evaluation-cache entries appended to this store's sidecar.
    eval_entries_merged: int
    #: Evaluation-cache entries already present (identical payload).
    eval_entries_deduped: int


@dataclass(frozen=True)
class CampaignStatus:
    """Completion census of a campaign directory."""

    total: int
    complete: int

    @property
    def pending(self) -> int:
        return self.total - self.complete

    @property
    def is_complete(self) -> bool:
        return self.complete == self.total


class ResultStore:
    """JSONL-per-cell result persistence with content-keyed resume."""

    SPEC_FILE = "spec.json"
    CELLS_DIR = "cells"
    EVAL_CACHE_FILE = "evaluations.jsonl"
    TELEMETRY_FILE = "telemetry.jsonl"
    FAILURES_FILE = "failures.jsonl"

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    @property
    def spec_path(self) -> Path:
        return self.root / self.SPEC_FILE

    @property
    def eval_cache_path(self) -> Path:
        """Default location of the persistent evaluation-cache sidecar."""
        return self.root / self.EVAL_CACHE_FILE

    @property
    def telemetry_path(self) -> Path:
        """The campaign's telemetry stream (DESIGN.md §12).

        An append-only observation log written by the executor's
        :class:`~repro.telemetry.JsonlRecorder` when ``REPRO_TELEMETRY``
        is set.  Deliberately *outside* the bit-identity surface: the
        determinism contract covers ``spec.json`` + ``cells/`` (and the
        eval sidecar's key set), never this file's wall-clock content.
        """
        return self.root / self.TELEMETRY_FILE

    @property
    def failures_path(self) -> Path:
        """The campaign's quarantine ledger (DESIGN.md §13).

        Written by the resilience layer's
        :class:`~repro.campaigns.resilience.FailureLedger` when a cell
        exhausts its retry budget.  Like the telemetry stream, outside
        the bit-identity surface — it exists precisely for the runs
        whose stores are incomplete.
        """
        return self.root / self.FAILURES_FILE

    def cell_path(self, cell: CampaignCell) -> Path:
        return self.root / self.CELLS_DIR / f"{cell.key}.jsonl"

    def content_digest(self) -> str:
        """sha1 over the sorted cell files — the store's result identity.

        Hashes exactly the bit-identity surface (``cells/*.jsonl``, name
        and bytes; never telemetry, ledger, or sidecar).  Two stores
        holding the same completed results digest identically whatever
        backend or transport produced them — the remote worker stamps
        this into its ``result.json`` so the serving side can assert a
        fetched shard arrived whole, and the identity tests compare it
        directly.
        """
        digest = hashlib.sha1()
        cells_dir = self.root / self.CELLS_DIR
        files = sorted(cells_dir.glob("*.jsonl")) if cells_dir.is_dir() else []
        for path in files:
            digest.update(path.name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    def save_spec(self, spec: CampaignSpec) -> None:
        """Record the owning spec (refuses to mix campaigns in one dir)."""
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / self.CELLS_DIR).mkdir(exist_ok=True)
        text = spec.to_json()
        if self.spec_path.exists():
            existing = self.spec_path.read_text()
            if existing != text:
                raise ValueError(
                    f"{self.spec_path} already holds a different campaign "
                    "spec; use a fresh directory (or delete it) to change "
                    "the grid"
                )
            return
        self._write_atomic(self.spec_path, text)

    def load_spec(self) -> CampaignSpec:
        """The spec recorded by :meth:`save_spec`."""
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"no campaign spec at {self.spec_path}; run the campaign "
                "first (or point --out at a campaign directory)"
            )
        return CampaignSpec.from_json(self.spec_path.read_text())

    # ------------------------------------------------------------------ #
    def write_cell(self, cell: CampaignCell, records: list[dict]) -> None:
        """Persist one completed cell (atomic; done marker terminates)."""
        lines = [
            canonical_json({"kind": "cell", "key": cell.key,
                            "cell": cell.as_dict()})
        ]
        lines += [canonical_json(record) for record in records]
        lines.append(canonical_json({"kind": "done",
                                     "n_records": len(records)}))
        path = self.cell_path(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_atomic(path, "\n".join(lines) + "\n")
        if flags.read_raw("REPRO_FAULTS"):
            # Chaos-only hook: simulate a crash mid-append after the
            # atomic write (DESIGN.md §13).  Unreachable in production.
            from repro.campaigns import faults

            faults.maybe_tear(path, cell.key)

    def read_cell(self, cell: CampaignCell) -> list[dict]:
        """The result records of a completed cell (raises if incomplete).

        Single read: completeness (the terminal done marker, and no
        torn or damaged lines) is checked on the same parse that yields
        the records, so :meth:`read_cell` and :meth:`is_complete` can
        never disagree about a file.
        """
        path = self.cell_path(cell)
        try:
            lines = path.read_text().splitlines()
        except FileNotFoundError:
            raise FileNotFoundError(
                f"cell {cell.key} has no completed results under {self.root}"
            ) from None
        entries = self._complete_entries(lines)
        if entries is None:
            raise FileNotFoundError(
                f"cell {cell.key} has no completed results under {self.root}"
            )
        return [e for e in entries if e.get("kind") == "record"]

    def delete_cell(self, cell: CampaignCell) -> None:
        """Forget one cell's results (the next run re-executes it)."""
        self.cell_path(cell).unlink(missing_ok=True)

    def is_complete(self, cell: CampaignCell) -> bool:
        """True when the cell file parses whole and ends with ``done``."""
        path = self.cell_path(cell)
        try:
            lines = path.read_text().splitlines()
        except FileNotFoundError:
            return False
        return self._complete_entries(lines) is not None

    def heal_cell(self, cell: CampaignCell) -> bool:
        """Repair a cell file whose only damage is a torn tail *after*
        the done marker (junk appended by a crash mid-copy or a chaos
        ``torn-tail`` fault).  The valid prefix — header, records, done
        marker — is rewritten atomically in canonical form, so a healed
        file is byte-identical to a cleanly written one.  Returns True
        iff the file was healed to complete; anything unrecoverable
        (missing, mid-file damage, no done marker: the cell genuinely
        needs re-execution) is left alone and returns False.
        """
        path = self.cell_path(cell)
        try:
            lines = path.read_text().splitlines()
        except FileNotFoundError:
            return False
        entries, damaged = self._parse_entries(lines)
        if not damaged:
            return False  # clean file: complete or not, nothing to heal
        if (
            not entries
            or entries[-1].get("kind") != "done"
            or entries[0].get("kind") != "cell"
            or entries[0].get("key") != cell.key
        ):
            return False
        self._write_atomic(
            path, "\n".join(canonical_json(e) for e in entries) + "\n"
        )
        return True

    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_entries(lines: list[str]) -> tuple[list[dict], bool]:
        """``(entries, damaged)`` from cell-file lines, tolerating a torn tail.

        A final line cut mid-record — a crash during an external copy or
        append, the exact failure mode the evaluation cache's loader
        already tolerates — drops just that line (``damaged=True``).
        An unparseable line anywhere *earlier* means the file cannot be
        trusted at all and yields ``([], True)``.
        """
        content = [line for line in lines if line.strip()]
        entries: list[dict] = []
        for i, line in enumerate(content):
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(content) - 1:
                    return entries, True  # torn tail: valid prefix stands
                return [], True  # mid-file damage: trust nothing
        return entries, False

    @classmethod
    def _complete_entries(cls, lines: list[str]) -> list[dict] | None:
        """The file's entries iff it is a complete cell file, else None."""
        entries, damaged = cls._parse_entries(lines)
        if damaged or not entries or entries[-1].get("kind") != "done":
            return None
        return entries

    # ------------------------------------------------------------------ #
    def merge_from(
        self,
        source: "ResultStore | str | Path",
        eval_dest: str | Path | None = None,
    ) -> MergeReport:
        """Fold another store's results into this one (dedup by key).

        The operation behind ``repro-aedb campaign merge`` and the shard
        backend's recombination step:

        * the source's ``spec.json`` is adopted if this store has none,
          and must match byte-for-byte if it does — one directory, one
          campaign, same rule as :meth:`save_spec`;
        * every *complete* source cell file is copied byte-for-byte
          (atomic write); incomplete/torn source cells are skipped and
          counted, never an error;
        * a cell present on both sides must be byte-identical (counted
          as dedup) — different completed payloads raise
          :class:`MergeConflictError`.  An *incomplete* local copy is
          replaced by the source's complete one;
        * ``evaluations.jsonl`` sidecar entries merge key-by-key under
          the same identical-or-conflict rule, preserving source order.
          They land in this store's sidecar by default; ``eval_dest``
          redirects them (the shard backend points it at the run's
          actual cache file, which under ``--cache`` is *not* the
          store's sidecar).

        Merging is idempotent: re-merging the same source is all dedup
        and changes nothing.  A source that is not a campaign directory
        (missing, or lacking ``spec.json``) raises — a typo'd path must
        not report a successful 0-cell merge.
        """
        src = source if isinstance(source, ResultStore) else ResultStore(source)
        if not src.spec_path.exists():
            raise FileNotFoundError(
                f"{src.root} is not a campaign directory (no "
                f"{self.SPEC_FILE}); nothing to merge"
            )
        text = src.spec_path.read_text()
        if self.spec_path.exists():
            if self.spec_path.read_text() != text:
                raise MergeConflictError(
                    f"{src.root} holds a different campaign spec than "
                    f"{self.root}; merge only shards of one campaign"
                )
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            (self.root / self.CELLS_DIR).mkdir(exist_ok=True)
            self._write_atomic(self.spec_path, text)
        merged = deduped = skipped = 0
        src_cells_dir = src.root / self.CELLS_DIR
        src_files = sorted(src_cells_dir.glob("*.jsonl")) if src_cells_dir.is_dir() else []
        for path in src_files:
            text = path.read_text()
            entries = self._complete_entries(text.splitlines())
            if entries is None:
                skipped += 1
                continue
            head = entries[0]
            if head.get("kind") != "cell" or f"{head.get('key')}.jsonl" != path.name:
                skipped += 1  # foreign or mislabelled file: don't propagate
                continue
            dest = self.root / self.CELLS_DIR / path.name
            if dest.exists():
                dest_text = dest.read_text()
                if dest_text == text:
                    deduped += 1
                    continue
                if self._complete_entries(dest_text.splitlines()) is not None:
                    raise MergeConflictError(
                        f"cell {head['key']}: {path} and {dest} hold "
                        "different completed results"
                    )
                # Local copy incomplete/torn: the complete source wins.
            dest.parent.mkdir(parents=True, exist_ok=True)
            self._write_atomic(dest, text)
            merged += 1
        eval_merged, eval_deduped = self.merge_eval_files(
            Path(eval_dest) if eval_dest is not None else self.eval_cache_path,
            src.eval_cache_path,
        )
        return MergeReport(
            source=str(src.root),
            cells_merged=merged,
            cells_deduped=deduped,
            cells_skipped=skipped,
            eval_entries_merged=eval_merged,
            eval_entries_deduped=eval_deduped,
        )

    @staticmethod
    def merge_eval_files(dest: Path, src: Path) -> tuple[int, int]:
        """Merge one evaluation-cache file into another; ``(merged, deduped)``.

        Line-level, matching the cache's own load contract: unparseable
        lines (torn tails) are skipped, keys are deduped on identical
        payload lines, and a key mapping to a *different* payload raises
        :class:`MergeConflictError`.  Appended lines keep the source's
        order, and the single append + flush keeps the sidecar's crash
        contract (a torn tail is skipped by the next loader).  Writes
        use a private ``O_APPEND`` handle of whole flushed lines, so a
        live :class:`~repro.tuning.cache.PersistentEvaluationCache`
        writer on ``dest`` cannot be torn by a concurrent merge (during
        shard runs the executor's cache only reads anyway).
        """
        def entries_of(path: Path) -> dict[str, str]:
            try:
                text = path.read_text()
            except FileNotFoundError:
                return {}
            out: dict[str, str] = {}
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    key = json.loads(line).get("key")
                except json.JSONDecodeError:
                    continue  # torn tail from a crash mid-append
                if key is not None:
                    out[key] = line
            return out

        src_entries = entries_of(src)
        if not src_entries:
            return 0, 0
        dest_entries = entries_of(dest)
        fresh: list[str] = []
        deduped = 0
        for key, line in src_entries.items():
            have = dest_entries.get(key)
            if have is None:
                fresh.append(line)
            elif have == line:
                deduped += 1
            else:
                raise MergeConflictError(
                    f"evaluation-cache entry {key}: {src} "
                    f"and {dest} hold different payloads"
                )
        if fresh:
            dest.parent.mkdir(parents=True, exist_ok=True)
            ensure_line_boundary(dest)
            with dest.open("a", encoding="utf-8") as fh:
                fh.write("\n".join(fresh) + "\n")
                fh.flush()
        return len(fresh), deduped

    # ------------------------------------------------------------------ #
    def completed_cells(self, spec: CampaignSpec) -> list[CampaignCell]:
        return [c for c in spec.cells() if self.is_complete(c)]

    def pending_cells(self, spec: CampaignSpec) -> list[CampaignCell]:
        return [c for c in spec.cells() if not self.is_complete(c)]

    def status(self, spec: CampaignSpec) -> CampaignStatus:
        cells = spec.cells()
        done = sum(1 for c in cells if self.is_complete(c))
        return CampaignStatus(total=len(cells), complete=done)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
