"""Resumable on-disk campaign results.

Layout under one campaign directory::

    <root>/
      spec.json            # the CampaignSpec that owns this directory
      cells/<key>.jsonl    # one file per completed cell

The optional ``evaluations.jsonl`` sidecar is the campaign's persistent
per-simulation evaluation cache
(:class:`~repro.tuning.cache.PersistentEvaluationCache`, written by the
executor): cells resolve at cell granularity from ``cells/``, individual
simulations at (scenario, params) granularity from the sidecar — which
also serves *other* campaigns whose grids overlap.

A cell file is JSON Lines: a header line carrying the full cell
description, one line per result record, and a terminal ``done`` marker.
Files are written whole and atomically (temp file + ``os.replace``), so
a crash mid-campaign leaves *missing* cells, never half-written ones —
resume is simply "run the cells whose files lack a done marker".  Cell
files are content-keyed by :attr:`CampaignCell.key`: editing the spec
changes the keys, so stale results are never picked up by mistake.

All JSON is canonically encoded (sorted keys, fixed separators), which
makes a re-run of the same spec + seed produce bit-identical files —
the determinism contract the campaign tests pin down.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.campaigns.spec import CampaignCell, CampaignSpec, canonical_json

__all__ = ["ResultStore", "CampaignStatus"]


@dataclass(frozen=True)
class CampaignStatus:
    """Completion census of a campaign directory."""

    total: int
    complete: int

    @property
    def pending(self) -> int:
        return self.total - self.complete

    @property
    def is_complete(self) -> bool:
        return self.complete == self.total


class ResultStore:
    """JSONL-per-cell result persistence with content-keyed resume."""

    SPEC_FILE = "spec.json"
    CELLS_DIR = "cells"
    EVAL_CACHE_FILE = "evaluations.jsonl"

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    @property
    def spec_path(self) -> Path:
        return self.root / self.SPEC_FILE

    @property
    def eval_cache_path(self) -> Path:
        """Default location of the persistent evaluation-cache sidecar."""
        return self.root / self.EVAL_CACHE_FILE

    def cell_path(self, cell: CampaignCell) -> Path:
        return self.root / self.CELLS_DIR / f"{cell.key}.jsonl"

    # ------------------------------------------------------------------ #
    def save_spec(self, spec: CampaignSpec) -> None:
        """Record the owning spec (refuses to mix campaigns in one dir)."""
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / self.CELLS_DIR).mkdir(exist_ok=True)
        text = spec.to_json()
        if self.spec_path.exists():
            existing = self.spec_path.read_text()
            if existing != text:
                raise ValueError(
                    f"{self.spec_path} already holds a different campaign "
                    "spec; use a fresh directory (or delete it) to change "
                    "the grid"
                )
            return
        self._write_atomic(self.spec_path, text)

    def load_spec(self) -> CampaignSpec:
        """The spec recorded by :meth:`save_spec`."""
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"no campaign spec at {self.spec_path}; run the campaign "
                "first (or point --out at a campaign directory)"
            )
        return CampaignSpec.from_json(self.spec_path.read_text())

    # ------------------------------------------------------------------ #
    def write_cell(self, cell: CampaignCell, records: list[dict]) -> None:
        """Persist one completed cell (atomic; done marker terminates)."""
        lines = [
            canonical_json({"kind": "cell", "key": cell.key,
                            "cell": cell.as_dict()})
        ]
        lines += [canonical_json(record) for record in records]
        lines.append(canonical_json({"kind": "done",
                                     "n_records": len(records)}))
        path = self.cell_path(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_atomic(path, "\n".join(lines) + "\n")

    def read_cell(self, cell: CampaignCell) -> list[dict]:
        """The result records of a completed cell (raises if incomplete).

        Single read: completeness (the terminal done marker) is checked
        on the same parse that yields the records.
        """
        path = self.cell_path(cell)
        try:
            lines = path.read_text().splitlines()
        except FileNotFoundError:
            raise FileNotFoundError(
                f"cell {cell.key} has no completed results under {self.root}"
            ) from None
        try:
            entries = [json.loads(line) for line in lines if line.strip()]
        except json.JSONDecodeError:
            entries = []
        if not entries or entries[-1].get("kind") != "done":
            raise FileNotFoundError(
                f"cell {cell.key} has no completed results under {self.root}"
            )
        return [e for e in entries if e.get("kind") == "record"]

    def delete_cell(self, cell: CampaignCell) -> None:
        """Forget one cell's results (the next run re-executes it)."""
        self.cell_path(cell).unlink(missing_ok=True)

    def is_complete(self, cell: CampaignCell) -> bool:
        """True when the cell file exists and ends with the done marker."""
        path = self.cell_path(cell)
        if not path.exists():
            return False
        lines = path.read_text().splitlines()
        for line in reversed(lines):
            if line.strip():
                try:
                    return json.loads(line).get("kind") == "done"
                except json.JSONDecodeError:
                    return False
        return False

    # ------------------------------------------------------------------ #
    def completed_cells(self, spec: CampaignSpec) -> list[CampaignCell]:
        return [c for c in spec.cells() if self.is_complete(c)]

    def pending_cells(self, spec: CampaignSpec) -> list[CampaignCell]:
        return [c for c in spec.cells() if not self.is_complete(c)]

    def status(self, spec: CampaignSpec) -> CampaignStatus:
        cells = spec.cells()
        done = sum(1 for c in cells if self.is_complete(c))
        return CampaignStatus(total=len(cells), complete=done)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
