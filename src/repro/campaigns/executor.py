"""Campaign execution: resume filtering, job/record plumbing, backends.

The executor expands a :class:`CampaignSpec`, skips every cell the
:class:`ResultStore` already holds, and hands the remaining work to a
pluggable execution **backend** (:mod:`repro.campaigns.backends`,
DESIGN.md §10):

* ``backend="inline"`` runs every job in-process in spec order — the
  mode the experiment runner uses to reproduce its historical
  single-threaded behaviour exactly, and the cheapest path for tiny
  sweeps (``serial=True`` is the legacy spelling);
* ``backend="pool"`` (the default) pushes all cells' jobs through ONE
  persistent process pool: evaluate cells flatten into individual
  ``(scenario, params)`` simulation jobs so workers interleave
  simulations *across* cells, and tune cells ship as one
  whole-optimiser job each, filling the pool while simulation jobs of
  other cells drain;
* ``backend="shard:N"`` partitions the cells into N content-keyed
  shards, runs each against its own store directory in a subprocess,
  and merges the shard stores back (dedup + conflict detection).

Whatever the backend, each cell's results persist the moment its last
job lands, so an interrupted campaign keeps everything finished so far
and the next invocation re-runs only the missing cells.  Results are
deterministic and **backend-independent**: job payloads are reassembled
in job order, and every record derives only from ``(cell, payloads)`` —
never from wall-clock or scheduling order (tune records carry a
``runtime_s`` diagnostic, which is the one intentionally
non-reproducible field).  ``tests/campaigns/test_backend_identity.py``
pins all backends to byte-identical stores.

Two transparent layers sit under every backend (DESIGN.md §9):

* a :class:`~repro.manet.shared.SharedRuntimeArena` packs each pending
  scenario's substrate into shared memory once, so every pool worker
  maps the same precompute read-only instead of privately rebuilding it
  (``shared_runtimes=False`` or ``REPRO_SHARED_RUNTIME=0`` opts out);
* a :class:`~repro.tuning.cache.PersistentEvaluationCache` sidecar next
  to the store (``evaluations.jsonl``) records every simulation result,
  so re-running a grid — or a *different* campaign whose cells overlap
  on (scenario, params, seed) — serves those simulations from disk
  without touching a worker.  Cached results are the exact stored
  metrics, so resumed and fresh runs stay bit-identical.

With ``REPRO_TELEMETRY`` set, a third observation-only layer streams
``telemetry.jsonl`` next to the store (DESIGN.md §12): per-cell
lifecycle events (``cell.queued`` → ``cell.leased`` → ``cell.started``
→ ``cell.finished``, tagged with the backend id and — under the shard
backend — the shard index), ``campaign.cell`` timing spans, and the
``campaign.cache_hits`` / ``campaign.simulations_executed`` counters
that ``campaign status`` surfaces.  Telemetry never perturbs results;
stores stay byte-identical with it off, on, or deep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.campaigns import faults
from repro.campaigns.resilience import (
    FailureLedger,
    LeaseTable,
    RetryPolicy,
    maybe_heartbeat,
)
from repro.campaigns.spec import EVALUATE, CampaignCell, CampaignSpec
from repro.campaigns.store import ResultStore
from repro.manet.aedb import AEDBParams
from repro.manet.metrics import BroadcastMetrics, aggregate_metrics
from repro.manet.scenarios import NetworkScenario
from repro.manet.shared import SharedRuntimeHandle, attach_runtime
from repro.manet.simulator import BroadcastSimulator
from repro.telemetry import (
    NULL,
    JsonlRecorder,
    Recorder,
    get_recorder,
    telemetry_enabled,
    using,
)
from repro.tuning.cache import PersistentEvaluationCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaigns.backends.base import Backend

__all__ = [
    "CampaignExecutor",
    "CampaignRunReport",
    "CellResult",
    "CellFailure",
]


# --------------------------------------------------------------------- #
# Job shapes (module-level, picklable).
@dataclass(frozen=True)
class _SimJob:
    cell_key: str
    index: int
    scenario: NetworkScenario
    params: AEDBParams
    #: Pointer to the scenario's shared-memory substrate, attached by
    #: the executor just before submission (None = per-process runtime).
    handle: SharedRuntimeHandle | None = None
    #: Which attempt of the owning cell this job belongs to (1-based).
    #: Stamped by the backend at submission; payloads never depend on it
    #: (bit-identity), but the fault plane and heartbeat attrs do.
    attempt: int = 1


@dataclass(frozen=True)
class _TuneJob:
    cell_key: str
    index: int
    algorithm: str
    density: float
    mobility_model: str
    area_side_m: float
    n_networks: int
    n_nodes: int | None
    master_seed: int
    seed: int
    scale: object  # ExperimentScale (kept untyped to avoid an import cycle)
    mls_engine: str | None
    #: Attempt number of the owning cell (see :class:`_SimJob`).
    attempt: int = 1


def _execute_job(job):
    """Worker entry point: one simulation or one optimiser run.

    Simulation jobs carrying a shared-runtime handle map the parent's
    one precompute (snapshot timeline, protocol RNG stream, and the
    interval live-mask index, DESIGN.md §9/§11); jobs without (or whose
    attach cannot be honoured) resolve their scenario's
    :class:`~repro.manet.runtime.ScenarioRuntime`
    from the worker's per-process LRU instead, so cells that reference
    the same scenario — within a campaign or across param-sweep cells —
    still share one precomputed beacon grid per worker.  Workers run
    the batched delivery path by default and honour the parent's
    ``REPRO_BATCH_DELIVERIES`` / ``REPRO_LIVE_INDEX`` settings (read at
    simulator construction).  Results are bit-identical on every path.

    Two resilience hooks bracket the work (DESIGN.md §13), both free
    when their env toggles are unset: the fault plane may crash, hang,
    or raise *before* the heartbeat starts (an injected hang models a
    worker wedged so hard it never reports), and ``maybe_heartbeat``
    streams ``cell.heartbeat`` lines at the parent's cadence while the
    job runs so the pool driver can tell a long job from a dead one.
    """
    faults.fire("worker", job.cell_key, job.attempt)
    with maybe_heartbeat(job.cell_key):
        if isinstance(job, _SimJob):
            return BroadcastSimulator(
                job.scenario, job.params,
                runtime=attach_runtime(job.scenario, job.handle),
            ).run()
        return _run_tune_job(job)


def _run_tune_job(job: _TuneJob):
    # Local imports: evaluate-only campaigns never pay for the optimiser
    # stack, and module-level imports here would cycle with
    # repro.experiments.runner.
    from repro.experiments.runner import make_algorithm
    from repro.manet.config import SimulationConfig
    from repro.tuning import make_tuning_problem

    problem = make_tuning_problem(
        job.density,
        n_networks=job.n_networks,
        master_seed=job.master_seed,
        n_nodes=job.n_nodes,
        sim=SimulationConfig(area_side_m=job.area_side_m),
        mobility_model=job.mobility_model,
    )
    alg = make_algorithm(job.algorithm, problem, job.scale, job.seed,
                         job.mls_engine)
    return alg.run()


# --------------------------------------------------------------------- #
def _metrics_dict(metrics: BroadcastMetrics) -> dict:
    return {
        "coverage": metrics.coverage,
        "energy_dbm": metrics.energy_dbm,
        "forwardings": metrics.forwardings,
        "broadcast_time_s": metrics.broadcast_time_s,
        "n_nodes": metrics.n_nodes,
    }


def _plain(value):
    """Best-effort conversion to JSON-encodable data (records only)."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _records_for(cell: CampaignCell, payloads: list) -> list[dict]:
    """Serialise a cell's job payloads (job order) into store records."""
    if cell.algorithm == EVALUATE:
        records = []
        n_scen = cell.n_networks
        for i, params in enumerate(cell.param_sets()):
            runs = payloads[i * n_scen:(i + 1) * n_scen]
            records.append({
                "kind": "record",
                "index": i,
                "params": [float(v) for v in params.as_array()],
                "aggregate": _metrics_dict(aggregate_metrics(runs)),
                "per_network": [_metrics_dict(m) for m in runs],
            })
        return records
    from repro.experiments.io import front_to_jsonable

    result = payloads[0]
    return [{
        "kind": "record",
        "index": 0,
        "algorithm": cell.algorithm,
        "evaluations": int(result.evaluations),
        "runtime_s": float(result.runtime_s),
        "front": front_to_jsonable(result.front),
        "info": _plain(result.info),
    }]


# --------------------------------------------------------------------- #
@dataclass
class CellResult:
    """One executed cell: its records and the live job payloads."""

    cell: CampaignCell
    #: Store-shaped records (what :class:`ResultStore` persisted).
    records: list[dict]
    #: In-process payloads in job order — :class:`BroadcastMetrics` for
    #: evaluate cells, one ``AlgorithmResult`` for tune cells.
    payloads: list


@dataclass(frozen=True)
class CellFailure:
    """One quarantined cell: it exhausted its retry budget this run."""

    cell_key: str
    attempts: int
    error: str


@dataclass
class CampaignRunReport:
    """What one :meth:`CampaignExecutor.run` invocation did."""

    spec: CampaignSpec
    executed: list[CellResult] = field(default_factory=list)
    skipped: list[CampaignCell] = field(default_factory=list)
    #: Simulation jobs served from the persistent evaluation cache.
    cache_hits: int = 0
    #: Simulation jobs actually executed (cache hits excluded).
    simulations_executed: int = 0
    #: Cells quarantined this run (recorded in ``failures.jsonl``,
    #: never fatal — the run completes around them, DESIGN.md §13).
    failed: list[CellFailure] = field(default_factory=list)
    #: Failed attempts that were retried (quarantines excluded).
    retries: int = 0
    #: Cells put back on the queue after a worker/shard loss.
    requeues: int = 0

    @property
    def executed_keys(self) -> list[str]:
        return [r.cell.key for r in self.executed]

    @property
    def failed_keys(self) -> list[str]:
        return [f.cell_key for f in self.failed]

    @property
    def n_simulations(self) -> int:
        """Direct simulation jobs *resolved* this run, cached or not
        (tune cells count their own inside)."""
        return sum(r.cell.n_simulations for r in self.executed)


class CampaignExecutor:
    """Run a campaign's pending cells through a pluggable backend."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore | None = None,
        max_workers: int | None = None,
        serial: bool = False,
        scale=None,
        mls_engine: str | None = None,
        eval_cache="auto",
        shared_runtimes: bool = True,
        backend: "Backend | str | None" = None,
        only_cells: Iterable[str] | None = None,
        telemetry_attrs: dict | None = None,
        retry_policy: RetryPolicy | None = None,
        initial_attempts: dict[str, int] | None = None,
    ):
        """``store=None`` runs in memory (results only in the report).

        ``scale`` overrides the spec's named preset with a concrete
        :class:`~repro.experiments.config.ExperimentScale` (the runner
        passes ad-hoc scales that have no registry name);
        ``mls_engine`` is forwarded to AEDB-MLS tune cells.

        ``eval_cache`` selects the persistent per-simulation cache:
        ``"auto"`` (default) uses the store's ``evaluations.jsonl``
        sidecar (no cache when running storeless), ``None``/``False``
        disables it, a path points at a cache shared across campaigns,
        and a :class:`~repro.tuning.cache.PersistentEvaluationCache` is
        used as-is.  ``shared_runtimes=False`` keeps pooled runs on
        per-process runtimes (no shared-memory arena).

        ``backend`` selects the execution strategy
        (:mod:`repro.campaigns.backends`): a :class:`Backend` instance
        or one of ``"inline"``, ``"pool"``, ``"shard:N"``.  When None,
        ``serial`` keeps its historical meaning (``True`` = inline) and
        otherwise the spec's ``backend`` hint — or pool — applies.  An
        explicit backend wins over both.

        ``only_cells`` restricts the run to the named cell keys (every
        key must belong to the spec) — the hook shard workers use to
        execute their slice of a campaign.

        ``telemetry_attrs`` tags every telemetry line this run records
        (e.g. ``{"shard": 3}`` for a shard worker); ignored when
        ``REPRO_TELEMETRY`` is off.

        ``retry_policy`` is the run's failure budget (DESIGN.md §13):
        None means the default :class:`RetryPolicy` (3 attempts,
        sub-second backoff, no timeouts/heartbeats);
        :meth:`RetryPolicy.disabled` restores fail-fast single-attempt
        behaviour.  ``initial_attempts`` pre-charges the attempt ledger
        (``{cell key: attempts already failed elsewhere}``) — the hook
        shard recovery passes use so a cell that crashed its shard does
        not get a fresh budget in the next round.
        """
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.spec = spec
        self.store = store
        self.max_workers = max_workers
        self.serial = serial
        self._scale_override = scale
        self.mls_engine = mls_engine
        self._eval_cache_spec = eval_cache
        self.shared_runtimes = shared_runtimes
        self.backend = backend
        self.only_cells = None if only_cells is None else tuple(only_cells)
        self.telemetry_attrs = dict(telemetry_attrs or {})
        self.retry_policy = retry_policy or RetryPolicy()
        self._initial_attempts = dict(initial_attempts or {})
        #: Emit the run-level ``campaign.cache_hits`` /
        #: ``campaign.simulations_executed`` counters at the end of
        #: :meth:`run`.  Shard workers flip this off (their stream is
        #: folded into the parent's, whose own roll-up already includes
        #: every shard's contribution — emitting both would double-count
        #: the merged totals that ``campaign status`` surfaces).
        self._emit_rollup_counters = True

    def _resolve_eval_cache(
        self,
    ) -> tuple[PersistentEvaluationCache | None, bool]:
        """``(cache, owned)`` — caller-provided instances are not closed
        by :meth:`run`; ones built here (a full sidecar reload plus an
        append handle) are released at the end of the run."""
        spec = self._eval_cache_spec
        if spec is None or spec is False:
            return None, False
        if isinstance(spec, PersistentEvaluationCache):
            return spec, False
        if spec == "auto":
            if self.store is None:
                return None, False
            return PersistentEvaluationCache(self.store.eval_cache_path), True
        return PersistentEvaluationCache(Path(spec)), True

    def _resolve_recorder(self) -> tuple[Recorder, bool]:
        """``(recorder, owned)`` for this run (DESIGN.md §12).

        Telemetry off: the shared :data:`~repro.telemetry.NULL` no-op.
        Telemetry on with a store: a :class:`JsonlRecorder` streaming
        ``telemetry.jsonl`` next to it (owned — closed after the run).
        Telemetry on storeless: whatever recorder is already active
        (``using(...)`` or the ambient in-memory one) — not owned.
        """
        if not telemetry_enabled():
            return NULL, False
        if self.store is not None:
            return (
                JsonlRecorder(
                    self.store.telemetry_path,
                    base_attrs=self.telemetry_attrs or None,
                ),
                True,
            )
        return get_recorder(), False

    # ------------------------------------------------------------------ #
    def _scale_for(self, cell: CampaignCell):
        if self._scale_override is not None:
            return self._scale_override
        from repro.experiments.config import get_scale

        return get_scale(cell.scale or None)

    def _jobs_for(self, cell: CampaignCell) -> list:
        if cell.algorithm == EVALUATE:
            scenarios = cell.scenarios()
            return [
                _SimJob(cell.key, i * len(scenarios) + j, scenario, params)
                for i, params in enumerate(cell.param_sets())
                for j, scenario in enumerate(scenarios)
            ]
        return [
            _TuneJob(
                cell_key=cell.key,
                index=0,
                algorithm=cell.algorithm,
                density=cell.density_per_km2,
                mobility_model=cell.mobility_model,
                area_side_m=cell.area_side_m,
                n_networks=cell.n_networks,
                n_nodes=cell.n_nodes,
                master_seed=cell.scenario_seed,
                seed=cell.algorithm_seed,
                scale=self._scale_for(cell),
                mls_engine=self.mls_engine,
            )
        ]

    def _selected_cells(self) -> list[CampaignCell]:
        """The spec's cells, restricted to ``only_cells`` when set."""
        cells = self.spec.cells()
        if self.only_cells is None:
            return cells
        wanted = set(self.only_cells)
        unknown = wanted - {c.key for c in cells}
        if unknown:
            raise ValueError(
                f"only_cells names keys not in the spec: {sorted(unknown)}"
            )
        return [c for c in cells if c.key in wanted]

    def _resolve_backend(self) -> "Backend":
        """The execution strategy for this run (lazy import: no cycle).

        Precedence: an explicit executor/CLI ``backend`` > ``serial=True``
        (inline) > the spec's ``backend`` hint > pool.  ``serial`` must
        outrank the spec hint: shard workers (and the experiment runner)
        demand in-process execution of a spec that may itself say
        ``"shard:N"`` — honouring the hint there would recurse.
        """
        from repro.campaigns.backends import resolve_backend

        if self.backend is not None:
            return resolve_backend(self.backend)
        if self.serial:
            return resolve_backend("inline")
        return resolve_backend(self.spec.backend or "pool")

    # ------------------------------------------------------------------ #
    def run(self, progress=None) -> CampaignRunReport:
        """Execute every pending cell; return what happened.

        ``progress(cell_result)`` fires as each cell completes (spec
        order on the inline backend; completion order otherwise).
        ``report.executed`` is always in spec order, whatever the
        backend's scheduling did.
        """
        from repro.campaigns.backends.base import ExecutionContext

        cells = self._selected_cells()
        self._check_algorithms(cells)
        backend = self._resolve_backend()
        ledger = None
        if self.store is not None:
            self.store.save_spec(self.spec)
            ledger = FailureLedger(self.store.failures_path)
            pending = []
            for c in cells:
                # heal_cell repairs the one recoverable damage shape —
                # junk torn onto a complete file's tail by a crash
                # mid-copy — so resume re-executes only genuinely
                # unfinished cells (DESIGN.md §13).
                if self.store.is_complete(c) or self.store.heal_cell(c):
                    continue
                pending.append(c)
        else:
            pending = list(cells)
        report = CampaignRunReport(
            spec=self.spec,
            skipped=[c for c in cells if c not in pending],
        )
        if not pending:
            if ledger is not None:
                ledger.prune({c.key for c in cells})
            return report
        cache, owned = self._resolve_eval_cache()
        recorder, rec_owned = self._resolve_recorder()
        leases = LeaseTable(self.retry_policy, ledger)
        if self._initial_attempts:
            leases.seed_attempts(self._initial_attempts)
        ctx = ExecutionContext(
            executor=self,
            pending=pending,
            report=report,
            cache=cache,
            progress=progress,
            recorder=recorder,
            leases=leases,
        )
        recorder.event(
            "campaign.run.started",
            backend=backend.name,
            n_pending=len(pending),
            n_skipped=len(report.skipped),
        )
        for cell in pending:
            recorder.event("cell.queued", cell=cell.key,
                           backend=backend.name)
        try:
            # ``using`` makes this run's sink the process-wide active
            # recorder, so the cache/evaluator/simulator layers reach
            # it through get_recorder() without any plumbing.
            with using(recorder):
                with recorder.span("campaign.run", backend=backend.name):
                    backend.execute(ctx)
        finally:
            # Spec order regardless of completion order — also on the
            # failure path, so a partial report stays deterministic.
            order = {cell.key: i for i, cell in enumerate(pending)}
            report.executed.sort(key=lambda r: order[r.cell.key])
            report.failed = [
                CellFailure(cell_key=key, attempts=att, error=err)
                for key, (att, err) in sorted(
                    leases.quarantined.items(),
                    key=lambda kv: order.get(kv[0], len(order)),
                )
            ]
            report.retries = max(
                0, leases.failures - len(leases.quarantined)
            )
            report.requeues = leases.requeues
            if ledger is not None:
                # Entries for cells that have since completed are stale
                # (a retried run recovered them); drop them so
                # ``campaign failures`` reports only live quarantines.
                ledger.prune(
                    {c.key for c in cells if self.store.is_complete(c)}
                )
            if owned and cache is not None:
                cache.close()
            if self._emit_rollup_counters:
                recorder.count("campaign.cache_hits", report.cache_hits)
                recorder.count(
                    "campaign.simulations_executed",
                    report.simulations_executed,
                )
                if report.retries:
                    recorder.count("campaign.retries", report.retries)
                if report.requeues:
                    recorder.count("campaign.requeued_cells",
                                   report.requeues)
                if report.failed:
                    recorder.count("campaign.quarantined_cells",
                                   len(report.failed))
            recorder.event(
                "campaign.run.finished",
                backend=backend.name,
                executed=len(report.executed),
                cache_hits=report.cache_hits,
                simulations_executed=report.simulations_executed,
                quarantined=len(report.failed),
            )
            if rec_owned:
                recorder.close()
            else:
                recorder.flush()
        return report

    @staticmethod
    def _check_algorithms(cells) -> None:
        # Validate before anything touches the store: a bad algorithm
        # name must not leave a poisoned spec.json behind.
        tune = {c.algorithm for c in cells if c.algorithm != EVALUATE}
        if not tune:
            return
        from repro.experiments.runner import ALGORITHMS

        unknown = sorted(tune - set(ALGORITHMS))
        if unknown:
            raise ValueError(
                f"unknown algorithm(s) {unknown}; "
                f"known: {(EVALUATE,) + ALGORITHMS}"
            )

    def _finish_cell(
        self, cell: CampaignCell, payloads: list,
        report: CampaignRunReport, progress,
    ) -> None:
        records = _records_for(cell, payloads)
        if self.store is not None:
            self.store.write_cell(cell, records)
        result = CellResult(cell=cell, records=records, payloads=payloads)
        report.executed.append(result)
        get_recorder().event(
            "cell.finished", cell=cell.key, n_records=len(records)
        )
        if progress is not None:
            progress(result)

    # Every backend shares the cache bookkeeping through exactly these
    # hooks (via ExecutionContext), so reports can never diverge.
    @staticmethod
    def _cached_payload(job, report, cache):
        """A persistent-cache hit for ``job``, or None (= must execute)."""
        if isinstance(job, _SimJob) and cache is not None:
            stored = cache.get_metrics(job.scenario, job.params)
            if stored is not None:
                report.cache_hits += 1
                return stored
        return None

    @staticmethod
    def _record_executed(job, payload, report, cache) -> None:
        """Count one live execution and persist a simulation's result."""
        if isinstance(job, _SimJob):
            report.simulations_executed += 1
            if cache is not None:
                cache.put_metrics(job.scenario, job.params, payload)

    def _resolve_serial_job(self, job, report, cache):
        """One job's payload: persistent-cache hit or live execution."""
        stored = self._cached_payload(job, report, cache)
        if stored is not None:
            return stored
        payload = _execute_job(job)
        self._record_executed(job, payload, report, cache)
        return payload
