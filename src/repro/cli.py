"""Command-line interface: ``repro-aedb`` (or ``python -m repro``).

Subcommands map to the deliverables:

* ``simulate``    — run AEDB on one evaluation network, print metrics;
* ``tune``        — run AEDB-MLS on a density, print the front found;
* ``compare``     — mini-campaign NSGA-II vs CellDE vs AEDB-MLS with
  indicator boxplots and Wilcoxon verdicts;
* ``sensitivity`` — FAST99 (or Sobol') study (Fig. 2) and the Table I
  summary;
* ``timing``      — the execution-time experiment;
* ``protocols``   — broadcast-storm baseline suite vs AEDB (Sect. I
  context);
* ``campaign``    — declarative scenario-space sweeps (densities ×
  mobility models × arenas × seeds × algorithms) with pluggable
  execution backends (``--backend {inline,pool,shard:N,remote:N}``)
  and a resumable result store: ``campaign run``, ``campaign status``,
  ``campaign report``, ``campaign merge`` (fold shard stores into one
  directory, dedup + conflict-checked), ``campaign telemetry`` (replay
  a run's ``telemetry.jsonl`` — recorded when ``REPRO_TELEMETRY`` is
  set — into a timing/counter summary or a Prometheus snapshot), and
  ``campaign failures`` (the quarantine ledger: cells that exhausted
  their retry budget, DESIGN.md §13 — ``campaign run`` takes
  ``--retries/--cell-timeout/--heartbeat`` and exits 2 when cells were
  quarantined, never aborting the run).  The service face of the same
  layer (DESIGN.md §15): ``campaign serve`` (daemon draining a submit
  queue through the remote backend), ``campaign worker`` (fleet member
  claiming and executing shard tasks), ``campaign shard-exec`` (the
  worker entry point every remote transport invokes on one shard
  bundle);
* ``cache``       — maintenance of the persistent evaluation cache
  (the ``evaluations.jsonl`` sidecar): ``cache stats``, ``cache flush``.

Every command honours ``--scale {quick,medium,paper}`` (or the
``REPRO_SCALE`` env var) and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-aedb",
        description=(
            "Reproduction of 'A Parallel Multi-objective Local Search for "
            "AEDB Protocol Tuning' (IPPS 2013)."
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "medium", "paper"),
        default=None,
        help="experiment scale preset (default: REPRO_SCALE or quick)",
    )
    parser.add_argument("--seed", type=int, default=0xAEDB, help="master seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one AEDB broadcast")
    sim.add_argument("--density", type=int, default=300, help="devices/km^2")
    sim.add_argument("--network", type=int, default=0, help="network index")
    sim.add_argument("--min-delay", type=float, default=0.0)
    sim.add_argument("--max-delay", type=float, default=1.0)
    sim.add_argument("--border", type=float, default=-90.0, help="dBm")
    sim.add_argument("--margin", type=float, default=1.0, help="dB")
    sim.add_argument("--neighbors", type=float, default=10.0)

    tune = sub.add_parser("tune", help="run AEDB-MLS")
    tune.add_argument("--density", type=int, default=100)
    tune.add_argument(
        "--engine", choices=("serial", "threads", "processes"), default=None
    )

    comp = sub.add_parser("compare", help="algorithm comparison campaign")
    comp.add_argument("--density", type=int, default=100)
    comp.add_argument("--runs", type=int, default=None)

    sens = sub.add_parser("sensitivity", help="FAST99/Sobol study + Table I")
    sens.add_argument("--density", type=int, default=300)
    sens.add_argument(
        "--method",
        choices=("fast99", "sobol"),
        default="fast99",
        help="variance-decomposition estimator (fast99 = the paper's)",
    )

    sub.add_parser("timing", help="execution-time comparison")

    prot = sub.add_parser(
        "protocols", help="broadcast-storm baselines vs AEDB"
    )
    prot.add_argument("--density", type=int, default=200)

    camp = sub.add_parser(
        "campaign", help="declarative scenario-space sweeps"
    )
    camp_sub = camp.add_subparsers(dest="campaign_command", required=True)

    run_p = camp_sub.add_parser("run", help="execute the pending cells")
    run_p.add_argument("--out", required=True, help="campaign directory")
    run_p.add_argument(
        "--spec", default=None,
        help="JSON spec file (overrides the grid flags below)",
    )
    run_p.add_argument("--name", default="campaign", help="campaign name")
    run_p.add_argument(
        "--densities", default="100,200,300",
        help="comma-separated devices/km^2",
    )
    run_p.add_argument(
        "--mobility", default="random-walk",
        help="comma-separated mobility models",
    )
    run_p.add_argument(
        "--arenas", default="500", help="comma-separated arena sides, m"
    )
    run_p.add_argument(
        "--seeds", type=int, default=1, help="grid points on the seeds axis"
    )
    run_p.add_argument(
        "--algorithms", default="evaluate",
        help="comma-separated: 'evaluate' and/or optimiser names",
    )
    run_p.add_argument(
        "--networks", type=int, default=None,
        help="evaluation networks per cell (default: scale preset)",
    )
    run_p.add_argument(
        "--nodes", type=int, default=None,
        help="node-count override (quick sweeps)",
    )
    run_p.add_argument(
        "--workers", type=int, default=None, help="process pool size"
    )
    run_p.add_argument(
        "--serial", action="store_true", help="run in-process, no pool"
    )
    run_p.add_argument(
        "--backend", default=None,
        metavar="{inline,pool,shard:N,remote:N[@transport]}",
        help="execution backend (default: pool; --serial = inline; "
             "shard:N partitions the cells into N per-store shards "
             "and merges them back; remote:N ships the same shards "
             "over a transport — remote:2@loopback runs workers as "
             "local subprocesses, remote:2@ssh:host over ssh)",
    )
    run_p.add_argument(
        "--keep-shards", action="store_true",
        help="keep shard stores under <out>/shards after merging "
             "(shard backend only)",
    )
    cache_group = run_p.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persistent evaluation cache file (default: the campaign's "
             "evaluations.jsonl sidecar; point several campaigns at one "
             "file to share results across them)",
    )
    cache_group.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent evaluation cache",
    )
    run_p.add_argument(
        "--no-shared-runtime", action="store_true",
        help="keep pool workers on per-process runtimes (no shared memory)",
    )
    run_p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per cell before quarantine (default 3; 1 = "
             "fail-fast, no retries)",
    )
    run_p.add_argument(
        "--cell-timeout", type=float, default=None, metavar="S",
        help="per-cell inactivity timeout in seconds (pool backend): "
             "an attempt with no completed job within S is failed and "
             "retried (default: no timeout)",
    )
    run_p.add_argument(
        "--heartbeat", type=float, default=None, metavar="S",
        help="worker heartbeat cadence in seconds: workers stream "
             "cell.heartbeat events so the parent detects hangs, not "
             "just crashes (default: off)",
    )

    status_p = camp_sub.add_parser("status", help="completion census")
    status_p.add_argument("--out", required=True, help="campaign directory")

    tele_p = camp_sub.add_parser(
        "telemetry",
        help="replay a campaign's telemetry.jsonl (REPRO_TELEMETRY runs)",
    )
    tele_p.add_argument("--out", required=True, help="campaign directory")
    tele_p.add_argument(
        "--top", type=int, default=10,
        help="slowest cells to list (default 10)",
    )
    tele_p.add_argument(
        "--export-prom", default=None, metavar="PATH",
        help="also write the summary as Prometheus text format "
             "('-' = stdout)",
    )

    report_p = camp_sub.add_parser("report", help="render completed results")
    report_p.add_argument("--out", required=True, help="campaign directory")

    fail_p = camp_sub.add_parser(
        "failures",
        help="report quarantined cells (the failures.jsonl ledger)",
    )
    fail_p.add_argument("--out", required=True, help="campaign directory")

    serve_p = camp_sub.add_parser(
        "serve",
        help="campaign daemon: drain the submit queue over a worker fleet",
    )
    serve_p.add_argument(
        "--root", required=True,
        help="service root directory (holds queue/ and tasks/)",
    )
    serve_p.add_argument(
        "--spec", default=None, metavar="PATH",
        help="JSON spec file to enqueue before serving (needs --out)",
    )
    serve_p.add_argument(
        "--out", default=None,
        help="campaign directory for a --spec submission",
    )
    serve_p.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="shard tasks per campaign (default 2)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=None,
        help="concurrent shard dispatches (default: all shards)",
    )
    serve_p.add_argument(
        "--once", action="store_true",
        help="serve the currently queued campaigns and exit",
    )
    serve_p.add_argument(
        "--poll", type=float, default=0.5, metavar="S",
        help="queue/task poll interval in seconds (default 0.5)",
    )
    serve_p.add_argument(
        "--claim-timeout", type=float, default=60.0, metavar="S",
        help="give up on a shard task no worker claims within S "
             "(default 60)",
    )
    serve_p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per cell before quarantine (default 3)",
    )
    serve_p.add_argument(
        "--heartbeat", type=float, default=1.0, metavar="S",
        help="worker heartbeat cadence; silence past the liveness "
             "window requeues the shard (default 1.0)",
    )
    serve_p.add_argument(
        "--keep-shards", action="store_true",
        help="keep shard stores under each campaign's shards/ dir",
    )

    worker_p = camp_sub.add_parser(
        "worker",
        help="fleet member: claim and execute shard tasks under --root",
    )
    worker_p.add_argument(
        "--root", required=True, help="service root directory"
    )
    worker_p.add_argument(
        "--once", action="store_true",
        help="drain the currently claimable tasks and exit",
    )
    worker_p.add_argument(
        "--poll", type=float, default=0.1, metavar="S",
        help="task poll interval in seconds (default 0.1)",
    )
    worker_p.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker identity (default: worker-<pid>)",
    )

    exec_p = camp_sub.add_parser(
        "shard-exec",
        help="execute one shard bundle (the remote-transport worker "
             "entry point)",
    )
    exec_p.add_argument(
        "--request", required=True, metavar="DIR",
        help="shard bundle directory (request.json inside)",
    )
    exec_p.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory override (default: <bundle>/store)",
    )
    exec_p.add_argument(
        "--result", default=None, metavar="PATH",
        help="summary path override (default: <bundle>/result.json)",
    )

    merge_p = camp_sub.add_parser(
        "merge", help="merge shard stores into one campaign directory"
    )
    merge_p.add_argument(
        "--out", required=True,
        help="destination campaign directory (created if missing; "
             "adopts the first source's spec)",
    )
    merge_p.add_argument(
        "sources", nargs="+",
        help="shard campaign directories (e.g. <out>/shards/*)",
    )

    cache_p = sub.add_parser(
        "cache", help="persistent evaluation-cache maintenance"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cstats = cache_sub.add_parser("stats", help="entry/size census")
    cstats.add_argument(
        "--path", required=True, help="cache file (…/evaluations.jsonl)"
    )
    cflush = cache_sub.add_parser("flush", help="delete every cached result")
    cflush.add_argument(
        "--path", required=True, help="cache file (…/evaluations.jsonl)"
    )
    return parser


def _cmd_simulate(args) -> int:
    from repro.manet import AEDBParams, make_scenarios, simulate_broadcast

    scenario = make_scenarios(
        args.density, n_networks=args.network + 1, master_seed=args.seed
    )[args.network]
    params = AEDBParams(
        min_delay_s=args.min_delay,
        max_delay_s=args.max_delay,
        border_threshold_dbm=args.border,
        margin_threshold_db=args.margin,
        neighbors_threshold=args.neighbors,
    ).clipped()
    metrics = simulate_broadcast(scenario, params)
    print(f"scenario: density={args.density} network={args.network} "
          f"n_nodes={scenario.n_nodes} source={scenario.source}")
    print(f"params:   {params}")
    print(f"metrics:  {metrics}")
    return 0


def _cmd_tune(args, scale) -> int:
    from repro.core import AEDBMLS
    from repro.experiments.runner import make_algorithm
    from repro.tuning import make_tuning_problem

    problem = make_tuning_problem(
        args.density, n_networks=scale.n_networks, master_seed=args.seed
    )
    alg = make_algorithm("AEDB-MLS", problem, scale, args.seed, args.engine)
    assert isinstance(alg, AEDBMLS)
    result = alg.run()
    display = problem.display_objectives(result.objectives_matrix())
    print(
        f"AEDB-MLS ({result.info['engine']}): {len(result.front)} "
        f"non-dominated solutions, {result.evaluations} evaluations, "
        f"{result.runtime_s:.1f}s"
    )
    print(f"{'energy[dBm]':>12s} {'coverage':>9s} {'forwardings':>12s}   parameters")
    order = np.argsort(display[:, 1])
    for i in order:
        sol = result.front[i]
        vars_str = np.array2string(sol.variables, precision=3)
        print(
            f"{display[i, 0]:>12.2f} {display[i, 1]:>9.1f} "
            f"{display[i, 2]:>12.1f}   {vars_str}"
        )
    return 0


def _cmd_compare(args, scale) -> int:
    from repro.experiments import build_density_artifacts, run_campaign
    from repro.experiments.figures import fig6_series, fig7_series
    from repro.experiments.report import render_fig6, render_fig7
    from repro.experiments.tables import table4

    campaigns = {}
    for name in ("NSGAII", "CellDE", "AEDB-MLS"):
        print(f"running {name} x{args.runs or scale.n_runs} ...", flush=True)
        campaigns[name] = run_campaign(
            name, args.density, scale=scale, n_runs=args.runs
        )
    artifacts = build_density_artifacts(campaigns, args.density)
    print(render_fig6(fig6_series(artifacts)))
    print()
    print(render_fig7(fig7_series(artifacts)))
    print()
    print(table4({args.density: artifacts}).render())
    return 0


def _cmd_sensitivity(args, scale) -> int:
    from repro.experiments.figures import fig2_series
    from repro.experiments.report import render_fig2
    from repro.experiments.tables import table1

    data = fig2_series(
        args.density,
        n_networks=scale.n_networks,
        n_samples=scale.fast_samples,
        master_seed=args.seed,
        method=args.method,
    )
    print(render_fig2(data))
    print()
    print(
        table1(
            args.density,
            n_networks=scale.n_networks,
            n_samples=scale.fast_samples,
            master_seed=args.seed,
        ).render()
    )
    return 0


def _cmd_timing(args, scale) -> int:
    from repro.experiments.timing import run_timing_experiment

    report = run_timing_experiment(
        densities=tuple(scale.densities), scale=scale, seed=args.seed
    )
    print(report.render())
    for density in scale.densities:
        print(
            f"density {density}: per-eval speedup MLS vs NSGAII = "
            f"{report.speedup(density):.2f}x, eval ratio = "
            f"{report.eval_ratio(density):.2f}x"
        )
    return 0


def _cmd_protocols(args, scale) -> int:
    from repro.manet import make_scenarios
    from repro.manet.protocols import compare_protocols, standard_protocol_suite
    from repro.manet.protocols.compare import render_comparison

    scenarios = make_scenarios(
        args.density, n_networks=scale.n_networks, master_seed=args.seed
    )
    comparison = compare_protocols(standard_protocol_suite(), scenarios)
    print(render_comparison(comparison))
    print(
        f"best reachability: {comparison.ranking('reachability')[0]}; "
        f"most storm removed: {comparison.ranking('saved_rebroadcasts')[0]}"
    )
    return 0


def _campaign_spec_from_args(args, scale):
    from repro.campaigns import CampaignSpec

    if args.spec is not None:
        return CampaignSpec.from_file(args.spec)
    return CampaignSpec(
        name=args.name,
        densities=tuple(int(d) for d in args.densities.split(",")),
        mobility_models=tuple(args.mobility.split(",")),
        area_sides_m=tuple(float(a) for a in args.arenas.split(",")),
        n_seeds=args.seeds,
        algorithms=tuple(args.algorithms.split(",")),
        n_networks=(
            args.networks if args.networks is not None else scale.n_networks
        ),
        n_nodes=args.nodes,
        master_seed=args.seed,
        scale=scale.name,
    )


def _cmd_campaign_service(args) -> int:
    """The fleet-facing subcommands (no campaign store of their own)."""
    if args.campaign_command == "shard-exec":
        from repro.campaigns.backends.remote import execute_request

        # In-shard quarantines are *results* (they travel in the
        # summary, budget-accounted by the parent) — only a genuinely
        # broken worker exits nonzero, which transports read as loss.
        summary = execute_request(
            args.request, store_dir=args.store, result_path=args.result
        )
        print(
            f"shard {summary['shard_key']}: "
            f"{len(summary['executed'])} executed, "
            f"{len(summary['resumed'])} resumed, "
            f"{len(summary['failed'])} quarantined"
        )
        return 0
    if args.campaign_command == "worker":
        from repro.campaigns import serve_worker

        n = serve_worker(
            args.root, worker_id=args.id, once=args.once, poll_s=args.poll
        )
        print(f"worker processed {n} task(s)")
        return 0
    # serve
    from repro.campaigns import (
        CampaignDaemon,
        CampaignSpec,
        RetryPolicy,
        submit_campaign,
    )

    defaults = RetryPolicy()
    policy = RetryPolicy(
        max_attempts=(
            defaults.max_attempts if args.retries is None else args.retries
        ),
        heartbeat_s=args.heartbeat,
    )
    if args.spec is not None:
        if args.out is None:
            print("campaign serve: --spec needs --out", file=sys.stderr)
            return 2
        path = submit_campaign(
            args.root, CampaignSpec.from_file(args.spec), args.out
        )
        print(f"enqueued {path.name}")
    daemon = CampaignDaemon(
        args.root,
        n_shards=args.shards,
        policy=policy,
        keep_shards=args.keep_shards,
        poll_s=args.poll,
        claim_timeout_s=args.claim_timeout,
        max_workers=args.workers,
    )
    if not args.once:  # pragma: no cover - runs until killed
        daemon.serve_forever()
        return 0
    failed = 0
    for row in daemon.serve_once():
        if row["ok"]:
            report = row["report"]
            print(
                f"served {row['name']}: {len(report.executed)} cells "
                f"executed, {len(report.skipped)} already complete"
            )
        else:
            failed += 1
            print(f"FAILED {row['name']}: {row['error']}")
    return 2 if failed else 0


def _cmd_campaign(args, scale) -> int:
    from repro.campaigns import (
        CampaignExecutor,
        ResultStore,
        render_failures,
        render_merge,
        render_report,
        render_status,
        resolve_backend,
    )

    if args.campaign_command in ("serve", "worker", "shard-exec"):
        return _cmd_campaign_service(args)

    store = ResultStore(args.out)
    if args.campaign_command == "status":
        print(render_status(store.load_spec(), store))
        return 0
    if args.campaign_command == "failures":
        print(render_failures(store.load_spec(), store))
        return 0
    if args.campaign_command == "telemetry":
        from repro.telemetry import (
            TelemetrySummary,
            render_telemetry,
            to_prometheus,
        )

        summary = TelemetrySummary.from_file(store.telemetry_path)
        print(render_telemetry(summary, top=args.top))
        if args.export_prom is not None:
            text = to_prometheus(summary)
            if args.export_prom == "-":
                print(text, end="")
            else:
                from pathlib import Path

                Path(args.export_prom).write_text(text)
                print(f"prometheus snapshot written to {args.export_prom}")
        return 0
    if args.campaign_command == "report":
        print(render_report(store.load_spec(), store))
        return 0
    if args.campaign_command == "merge":
        reports = [store.merge_from(source) for source in args.sources]
        print(render_merge(store, reports))
        print(render_status(store.load_spec(), store))
        return 0

    spec = _campaign_spec_from_args(args, scale)
    # --backend wins; otherwise the spec's own hint (a spec file may
    # carry backend="shard:N") — resolved here so --keep-shards applies
    # to either source.  --serial outranks the hint (same precedence as
    # the executor's): "run in-process" must never shard.
    backend = None
    choice = args.backend
    if choice is None and not args.serial:
        choice = spec.backend
    if choice is not None:
        backend = resolve_backend(choice, keep_shards=args.keep_shards)
    retry_policy = None
    if (
        args.retries is not None
        or args.cell_timeout is not None
        or args.heartbeat is not None
    ):
        from repro.campaigns import RetryPolicy

        defaults = RetryPolicy()
        retry_policy = RetryPolicy(
            max_attempts=(
                defaults.max_attempts if args.retries is None
                else args.retries
            ),
            cell_timeout_s=args.cell_timeout,
            heartbeat_s=args.heartbeat,
        )
    executor = CampaignExecutor(
        spec, store, max_workers=args.workers, serial=args.serial,
        backend=backend,
        eval_cache=(
            None if args.no_cache
            else args.cache if args.cache is not None
            else "auto"
        ),
        shared_runtimes=not args.no_shared_runtime,
        retry_policy=retry_policy,
    )
    report = executor.run(
        progress=lambda r: print(f"  cell {r.cell.key} done", flush=True)
    )
    print(
        f"campaign '{spec.name}': {len(report.executed)} cells executed, "
        f"{len(report.skipped)} already complete "
        f"({report.simulations_executed} simulations run, "
        f"{report.cache_hits} served from cache)"
    )
    print(render_status(spec, store))
    if report.failed:
        # A quarantined cell is a partial result, not an abort: exit 2
        # so scripts can tell "grid incomplete" from argparse errors.
        print(
            f"warning: {len(report.failed)} cell(s) quarantined after "
            f"exhausting retries — `repro-aedb campaign failures "
            f"--out {args.out}` for details"
        )
        return 2
    return 0


def _cmd_cache(args) -> int:
    from repro.tuning import PersistentEvaluationCache

    cache = PersistentEvaluationCache(args.path)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache:   {stats['path']}")
        print(f"entries: {stats['entries']}")
        print(f"on disk: {stats['disk_bytes']} bytes")
        return 0
    removed = cache.flush()
    print(f"flushed {removed} cached evaluations from {args.path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    from repro.experiments.config import get_scale

    scale = get_scale(args.scale)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "tune":
        return _cmd_tune(args, scale)
    if args.command == "compare":
        return _cmd_compare(args, scale)
    if args.command == "sensitivity":
        return _cmd_sensitivity(args, scale)
    if args.command == "timing":
        return _cmd_timing(args, scale)
    if args.command == "protocols":
        return _cmd_protocols(args, scale)
    if args.command == "campaign":
        return _cmd_campaign(args, scale)
    if args.command == "cache":
        return _cmd_cache(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
