"""Command-line interface: ``repro-aedb`` (or ``python -m repro``).

Subcommands map to the deliverables:

* ``simulate``    — run AEDB on one evaluation network, print metrics;
* ``tune``        — run AEDB-MLS on a density, print the front found;
* ``compare``     — mini-campaign NSGA-II vs CellDE vs AEDB-MLS with
  indicator boxplots and Wilcoxon verdicts;
* ``sensitivity`` — FAST99 (or Sobol') study (Fig. 2) and the Table I
  summary;
* ``timing``      — the execution-time experiment;
* ``protocols``   — broadcast-storm baseline suite vs AEDB (Sect. I
  context).

Every command honours ``--scale {quick,medium,paper}`` (or the
``REPRO_SCALE`` env var) and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-aedb",
        description=(
            "Reproduction of 'A Parallel Multi-objective Local Search for "
            "AEDB Protocol Tuning' (IPPS 2013)."
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "medium", "paper"),
        default=None,
        help="experiment scale preset (default: REPRO_SCALE or quick)",
    )
    parser.add_argument("--seed", type=int, default=0xAEDB, help="master seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one AEDB broadcast")
    sim.add_argument("--density", type=int, default=300, help="devices/km^2")
    sim.add_argument("--network", type=int, default=0, help="network index")
    sim.add_argument("--min-delay", type=float, default=0.0)
    sim.add_argument("--max-delay", type=float, default=1.0)
    sim.add_argument("--border", type=float, default=-90.0, help="dBm")
    sim.add_argument("--margin", type=float, default=1.0, help="dB")
    sim.add_argument("--neighbors", type=float, default=10.0)

    tune = sub.add_parser("tune", help="run AEDB-MLS")
    tune.add_argument("--density", type=int, default=100)
    tune.add_argument(
        "--engine", choices=("serial", "threads", "processes"), default=None
    )

    comp = sub.add_parser("compare", help="algorithm comparison campaign")
    comp.add_argument("--density", type=int, default=100)
    comp.add_argument("--runs", type=int, default=None)

    sens = sub.add_parser("sensitivity", help="FAST99/Sobol study + Table I")
    sens.add_argument("--density", type=int, default=300)
    sens.add_argument(
        "--method",
        choices=("fast99", "sobol"),
        default="fast99",
        help="variance-decomposition estimator (fast99 = the paper's)",
    )

    sub.add_parser("timing", help="execution-time comparison")

    prot = sub.add_parser(
        "protocols", help="broadcast-storm baselines vs AEDB"
    )
    prot.add_argument("--density", type=int, default=200)
    return parser


def _cmd_simulate(args) -> int:
    from repro.manet import AEDBParams, make_scenarios, simulate_broadcast

    scenario = make_scenarios(
        args.density, n_networks=args.network + 1, master_seed=args.seed
    )[args.network]
    params = AEDBParams(
        min_delay_s=args.min_delay,
        max_delay_s=args.max_delay,
        border_threshold_dbm=args.border,
        margin_threshold_db=args.margin,
        neighbors_threshold=args.neighbors,
    ).clipped()
    metrics = simulate_broadcast(scenario, params)
    print(f"scenario: density={args.density} network={args.network} "
          f"n_nodes={scenario.n_nodes} source={scenario.source}")
    print(f"params:   {params}")
    print(f"metrics:  {metrics}")
    return 0


def _cmd_tune(args, scale) -> int:
    from repro.core import AEDBMLS
    from repro.experiments.runner import make_algorithm
    from repro.tuning import make_tuning_problem

    problem = make_tuning_problem(
        args.density, n_networks=scale.n_networks, master_seed=args.seed
    )
    alg = make_algorithm("AEDB-MLS", problem, scale, args.seed, args.engine)
    assert isinstance(alg, AEDBMLS)
    result = alg.run()
    display = problem.display_objectives(result.objectives_matrix())
    print(
        f"AEDB-MLS ({result.info['engine']}): {len(result.front)} "
        f"non-dominated solutions, {result.evaluations} evaluations, "
        f"{result.runtime_s:.1f}s"
    )
    print(f"{'energy[dBm]':>12s} {'coverage':>9s} {'forwardings':>12s}   parameters")
    order = np.argsort(display[:, 1])
    for i in order:
        sol = result.front[i]
        vars_str = np.array2string(sol.variables, precision=3)
        print(
            f"{display[i, 0]:>12.2f} {display[i, 1]:>9.1f} "
            f"{display[i, 2]:>12.1f}   {vars_str}"
        )
    return 0


def _cmd_compare(args, scale) -> int:
    from repro.experiments import build_density_artifacts, run_campaign
    from repro.experiments.figures import fig6_series, fig7_series
    from repro.experiments.report import render_fig6, render_fig7
    from repro.experiments.tables import table4

    campaigns = {}
    for name in ("NSGAII", "CellDE", "AEDB-MLS"):
        print(f"running {name} x{args.runs or scale.n_runs} ...", flush=True)
        campaigns[name] = run_campaign(
            name, args.density, scale=scale, n_runs=args.runs
        )
    artifacts = build_density_artifacts(campaigns, args.density)
    print(render_fig6(fig6_series(artifacts)))
    print()
    print(render_fig7(fig7_series(artifacts)))
    print()
    print(table4({args.density: artifacts}).render())
    return 0


def _cmd_sensitivity(args, scale) -> int:
    from repro.experiments.figures import fig2_series
    from repro.experiments.report import render_fig2
    from repro.experiments.tables import table1

    data = fig2_series(
        args.density,
        n_networks=scale.n_networks,
        n_samples=scale.fast_samples,
        master_seed=args.seed,
        method=args.method,
    )
    print(render_fig2(data))
    print()
    print(
        table1(
            args.density,
            n_networks=scale.n_networks,
            n_samples=scale.fast_samples,
            master_seed=args.seed,
        ).render()
    )
    return 0


def _cmd_timing(args, scale) -> int:
    from repro.experiments.timing import run_timing_experiment

    report = run_timing_experiment(
        densities=tuple(scale.densities), scale=scale, seed=args.seed
    )
    print(report.render())
    for density in scale.densities:
        print(
            f"density {density}: per-eval speedup MLS vs NSGAII = "
            f"{report.speedup(density):.2f}x, eval ratio = "
            f"{report.eval_ratio(density):.2f}x"
        )
    return 0


def _cmd_protocols(args, scale) -> int:
    from repro.manet import make_scenarios
    from repro.manet.protocols import compare_protocols, standard_protocol_suite
    from repro.manet.protocols.compare import render_comparison

    scenarios = make_scenarios(
        args.density, n_networks=scale.n_networks, master_seed=args.seed
    )
    comparison = compare_protocols(standard_protocol_suite(), scenarios)
    print(render_comparison(comparison))
    print(
        f"best reachability: {comparison.ranking('reachability')[0]}; "
        f"most storm removed: {comparison.ranking('saved_rebroadcasts')[0]}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    from repro.experiments.config import get_scale

    scale = get_scale(args.scale)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "tune":
        return _cmd_tune(args, scale)
    if args.command == "compare":
        return _cmd_compare(args, scale)
    if args.command == "sensitivity":
        return _cmd_sensitivity(args, scale)
    if args.command == "timing":
        return _cmd_timing(args, scale)
    if args.command == "protocols":
        return _cmd_protocols(args, scale)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
