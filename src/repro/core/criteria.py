"""Search criteria derived from the sensitivity analysis (Sect. IV-B).

"There are three different search criteria that can be applied when
modifying a solution, depending on the objective to be improved:

i.   energy used / forwardings  -> modify ``border_threshold`` and
     ``neighbors_threshold``;
ii.  coverage                   -> tune ``neighbors_threshold``;
iii. broadcast-time constraint  -> adjust ``min_delay`` and ``max_delay``."

Each iteration one criterion is selected at random (uniformly in the
paper; :class:`~repro.core.config.MLSConfig` optionally biases the draw
for the ablation benchmarks) and its variables are perturbed with the
directional BLX-α step of Eq. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.manet.aedb import AEDBParams
from repro.utils.rng import as_generator

__all__ = ["SearchCriterion", "SEARCH_CRITERIA", "select_criterion"]


def _index_of(name: str) -> int:
    return AEDBParams.names().index(name)


@dataclass(frozen=True)
class SearchCriterion:
    """A named group of decision-variable indices to perturb together."""

    name: str
    #: Objectives this criterion aims at (labels only, for reports).
    targets: tuple[str, ...]
    #: Indices into the canonical AEDB parameter vector.
    variable_indices: tuple[int, ...]

    def variable_names(self) -> tuple[str, ...]:
        """Names of the variables this criterion perturbs."""
        names = AEDBParams.names()
        return tuple(names[i] for i in self.variable_indices)


#: The paper's three criteria, in the order i/ii/iii quoted above.
SEARCH_CRITERIA: tuple[SearchCriterion, ...] = (
    SearchCriterion(
        name="energy-forwardings",
        targets=("energy", "forwardings"),
        variable_indices=(
            _index_of("border_threshold_dbm"),
            _index_of("neighbors_threshold"),
        ),
    ),
    SearchCriterion(
        name="coverage",
        targets=("coverage",),
        variable_indices=(_index_of("neighbors_threshold"),),
    ),
    SearchCriterion(
        name="broadcast-time",
        targets=("broadcast_time",),
        variable_indices=(
            _index_of("min_delay_s"),
            _index_of("max_delay_s"),
        ),
    ),
)


def select_criterion(
    rng: np.random.Generator | int | None = None,
    weights: tuple[float, float, float] | None = None,
) -> SearchCriterion:
    """Draw one criterion (uniform by default, as in the paper)."""
    gen = as_generator(rng)
    if weights is None:
        return SEARCH_CRITERIA[int(gen.integers(len(SEARCH_CRITERIA)))]
    w = np.asarray(weights, dtype=float)
    w = w / w.sum()
    return SEARCH_CRITERIA[int(gen.choice(len(SEARCH_CRITERIA), p=w))]
