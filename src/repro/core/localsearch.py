"""The per-thread local-search procedure (paper Fig. 3).

One :class:`LocalSearchProcedure` owns one population slot and improves
its solution iteratively:

1. pick a random peer ``t`` from the same population (the perturbation
   reference of Eq. 2);
2. pick a search criterion at random and apply the BLX-α step;
3. evaluate; if the perturbed solution is *feasible* (broadcast time
   within limit), accept it unconditionally and offer it to the archive;
4. on the reset condition, replace the owned solution with an archive
   sample (the engine coordinates the population-wide synchronisation).

The procedure is engine-agnostic: the engine supplies a population view,
an archive port (add/sample callables) and the RNG stream, then calls
:meth:`initialise` / :meth:`step` under whatever concurrency model it
implements.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.config import MLSConfig
from repro.core.criteria import select_criterion
from repro.core.operators import blx_alpha_step
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution
from repro.utils.rng import as_generator

__all__ = ["ArchivePort", "Population", "LocalSearchProcedure"]


class ArchivePort:
    """The two archive operations a procedure needs.

    Engines bind these to a local AGA instance (serial/threads) or to a
    message channel toward the archive server (processes).
    """

    def __init__(
        self,
        add: Callable[[FloatSolution], bool],
        sample: Callable[[int], list[FloatSolution]],
    ):
        self._add = add
        self._sample = sample

    def add(self, solution: FloatSolution) -> bool:
        """Offer a (copy of a) solution to the shared archive."""
        return self._add(solution)

    def sample(self, k: int) -> list[FloatSolution]:
        """Draw ``k`` random archive members (copies)."""
        return self._sample(k)


class Population:
    """A fixed-size slot array shared by the procedures of one population.

    Engines that run procedures concurrently must guard :meth:`set_slot`
    and :meth:`peer_of` with their own synchronisation if their memory
    model requires it (CPython list item assignment is atomic, which the
    thread engine relies on).
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.slots: list[FloatSolution | None] = [None] * size

    def set_slot(self, index: int, solution: FloatSolution) -> None:
        """Publish the current solution of one procedure."""
        self.slots[index] = solution

    def peer_of(
        self, index: int, rng: np.random.Generator
    ) -> FloatSolution | None:
        """A random *other* populated slot (None if alone)."""
        candidates = [
            i for i, s in enumerate(self.slots) if s is not None and i != index
        ]
        if not candidates:
            return None
        return self.slots[int(rng.choice(candidates))]

    def solutions(self) -> list[FloatSolution]:
        """All populated slots."""
        return [s for s in self.slots if s is not None]

    def __len__(self) -> int:
        return len(self.slots)


class LocalSearchProcedure:
    """One thread of the AEDB-MLS algorithm (one slot, one solution)."""

    def __init__(
        self,
        problem: Problem,
        config: MLSConfig,
        population: Population,
        slot: int,
        archive: ArchivePort,
        rng: np.random.Generator | int | None = None,
    ):
        self.problem = problem
        self.config = config
        self.population = population
        self.slot = int(slot)
        self.archive = archive
        self.rng = as_generator(rng)
        self.current: FloatSolution | None = None
        self.evaluations = 0
        self.iterations = 0
        self.accepted = 0
        self.archived = 0

    # ------------------------------------------------------------------ #
    @property
    def budget_left(self) -> int:
        """Evaluations remaining for this thread."""
        return max(self.config.evaluations_per_thread - self.evaluations, 0)

    @property
    def done(self) -> bool:
        """True once the thread's evaluation budget is exhausted."""
        return self.budget_left <= 0

    def _evaluate(self, solution: FloatSolution) -> FloatSolution:
        self.problem.evaluate(solution)
        self.evaluations += 1
        return solution

    # ------------------------------------------------------------------ #
    def initialise(self) -> None:
        """Fig. 3 lines 1–3: random feasible start, evaluated, archived.

        Feasibility is sought by rejection sampling (each attempt costs an
        evaluation, honestly charged against the thread budget); if no
        feasible point appears within ``max_init_attempts`` the best
        (least-violating) attempt is kept — constraint-domination then
        drives the search back to feasibility.
        """
        best: FloatSolution | None = None
        attempts = min(self.config.max_init_attempts, self.budget_left)
        for _ in range(max(attempts, 1)):
            candidate = self._evaluate(self.problem.create_solution(self.rng))
            if best is None or (
                candidate.constraint_violation < best.constraint_violation
            ):
                best = candidate
            if candidate.is_feasible:
                break
        assert best is not None
        self.current = best
        self.population.set_slot(self.slot, best)
        if self.archive.add(best.copy()):
            self.archived += 1

    def step(self) -> None:
        """Fig. 3 lines 6–12: one perturbation iteration."""
        if self.current is None:
            raise RuntimeError("step() before initialise()")
        if self.done:
            return
        self.iterations += 1

        reference = self.population.peer_of(self.slot, self.rng)
        if reference is None:
            reference = self.current  # alone: Eq. 2 degenerates to a no-op
        criterion = select_criterion(self.rng, self.config.criterion_weights)
        child_vars = blx_alpha_step(
            self.current.variables,
            reference.variables,
            criterion,
            self.config.alpha,
            self.problem.lower_bounds,
            self.problem.upper_bounds,
            self.rng,
            symmetric=self.config.symmetric_blx,
        )
        child = FloatSolution(child_vars, self.problem.n_objectives)
        self._evaluate(child)

        if child.is_feasible:
            self.accepted += 1
            self.current = child
            self.population.set_slot(self.slot, child)
            if self.archive.add(child.copy()):
                self.archived += 1

    # ------------------------------------------------------------------ #
    def needs_reset(self) -> bool:
        """Fig. 3 line 13: the re-initialisation condition."""
        return (
            self.iterations > 0
            and self.iterations % self.config.reset_iterations == 0
        )

    def reset_from(self, solution: FloatSolution) -> None:
        """Fig. 3 line 14: restart from an archive sample (no evaluation
        needed — the sample is already evaluated)."""
        self.current = solution
        self.population.set_slot(self.slot, solution)

    def stats(self) -> dict:
        """Per-thread counters for the run report."""
        return {
            "evaluations": self.evaluations,
            "iterations": self.iterations,
            "accepted": self.accepted,
            "archived": self.archived,
        }


def drain_population(
    procedures: Sequence[LocalSearchProcedure],
    archive: ArchivePort,
    rng: np.random.Generator,
) -> int:
    """Population-wide reset: every procedure restarts from the archive.

    Returns the number of procedures reset.  Shared by the serial and
    thread engines (the process engine performs the same logic inside the
    worker process).
    """
    live = [p for p in procedures if not p.done]
    if not live:
        return 0
    samples = archive.sample(len(live))
    for proc, sample in zip(live, samples):
        proc.reset_from(sample)
    return len(live)
