"""The local-search perturbation operator (paper Eq. 2).

For every variable ``p`` selected by the active search criterion:

``ŝ_p = s_p + φ · (3ρ − 2)``   with   ``φ = α · |s_p − t_p|``

where ``t`` is a random peer solution from the same population,
``ρ ~ U[0, 1)`` is drawn **per variable**, and ``α`` scales the
perturbation.  Note the asymmetry: ``3ρ − 2`` spans ``[−2, 1)``, so steps
are biased toward *decreasing* the variable — we implement the published
formula verbatim (an ablation benchmark quantifies the effect of
symmetrising it).

The step degenerates to zero when ``s_p == t_p``; as in BLX-α, the
population must supply the spread.  Results are clipped to the Table III
box.
"""

from __future__ import annotations

import numpy as np

from repro.core.criteria import SearchCriterion
from repro.utils.rng import as_generator

__all__ = ["blx_alpha_step"]


def blx_alpha_step(
    current: np.ndarray,
    reference: np.ndarray,
    criterion: SearchCriterion,
    alpha: float,
    lower_bounds: np.ndarray,
    upper_bounds: np.ndarray,
    rng: np.random.Generator | int | None = None,
    symmetric: bool = False,
) -> np.ndarray:
    """One Eq. 2 perturbation; returns a new (clipped) variable vector.

    ``symmetric=True`` replaces the published ``3ρ − 2`` span with the
    zero-mean ``3ρ − 1.5`` — used only by the ablation study.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    gen = as_generator(rng)
    child = np.asarray(current, dtype=float).copy()
    ref = np.asarray(reference, dtype=float)
    if child.shape != ref.shape:
        raise ValueError(
            f"shape mismatch: current {child.shape} vs reference {ref.shape}"
        )
    offset = 1.5 if symmetric else 2.0
    for idx in criterion.variable_indices:
        phi = alpha * abs(child[idx] - ref[idx])
        rho = float(gen.random())
        child[idx] = child[idx] + phi * (3.0 * rho - offset)
    return np.clip(child, lower_bounds, upper_bounds)
