"""AEDB-MLS configuration.

Defaults are the paper's experimental setting (Sect. V): 8 distributed
populations × 12 threads, 250 evaluations per thread (24 000 total),
BLX-α with α = 0.2, population reset every 50 iterations, archive
capacity 100 with the AGA method.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive

__all__ = ["MLSConfig"]

_ENGINES = ("serial", "threads", "processes")


@dataclass(frozen=True)
class MLSConfig:
    """Knobs of the parallel multi-objective local search."""

    #: Number of distributed populations (paper: 8).
    n_populations: int = 8
    #: Local-search threads (= solutions) per population (paper: 12).
    threads_per_population: int = 12
    #: Evaluation budget per thread — the stopping condition (paper: 250).
    evaluations_per_thread: int = 250
    #: BLX-α perturbation magnitude (paper's tuned value: 0.2).
    alpha: float = 0.2
    #: Iterations between population re-initialisations from the archive
    #: (paper's tuned value: 50).
    reset_iterations: int = 50
    #: External archive capacity (AGA).
    archive_capacity: int = 100
    #: AGA grid bisections per objective.
    archive_bisections: int = 5
    #: Execution engine: "serial", "threads" or "processes".
    engine: str = "serial"
    #: Attempts at drawing a feasible initial solution before accepting an
    #: infeasible one (each attempt costs one evaluation).
    max_init_attempts: int = 10
    #: Probability of picking each search criterion; None = uniform over
    #: the three criteria (the paper selects randomly).
    criterion_weights: tuple[float, float, float] | None = None
    #: Ablation switch: replace the published (downward-biased) Eq. 2
    #: span ``3ρ − 2`` with the zero-mean ``3ρ − 1.5``.
    symmetric_blx: bool = False
    #: Intra-population scheduling inside each worker of the process
    #: engine: "cooperative" (GIL-friendly round-robin; default) or
    #: "threads" (real OS threads — see engines/cooperative.py).
    process_worker: str = "cooperative"

    def __post_init__(self) -> None:
        check_positive(self.n_populations, "n_populations")
        check_positive(self.threads_per_population, "threads_per_population")
        check_positive(self.evaluations_per_thread, "evaluations_per_thread")
        check_in_range(self.alpha, "alpha", 0.0, 1.0, inclusive=False)
        check_positive(self.reset_iterations, "reset_iterations")
        check_positive(self.archive_capacity, "archive_capacity")
        check_positive(self.archive_bisections, "archive_bisections")
        check_positive(self.max_init_attempts, "max_init_attempts")
        if self.engine not in _ENGINES:
            raise ValueError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        if self.process_worker not in ("cooperative", "threads"):
            raise ValueError(
                "process_worker must be 'cooperative' or 'threads', "
                f"got {self.process_worker!r}"
            )
        if self.criterion_weights is not None:
            if len(self.criterion_weights) != 3:
                raise ValueError("criterion_weights must have 3 entries")
            if any(w < 0 for w in self.criterion_weights):
                raise ValueError("criterion_weights must be non-negative")
            if sum(self.criterion_weights) <= 0:
                raise ValueError("criterion_weights must not all be zero")

    @property
    def total_evaluations(self) -> int:
        """Nominal evaluation budget of a full run (paper: 24 000)."""
        return (
            self.n_populations
            * self.threads_per_population
            * self.evaluations_per_thread
        )
