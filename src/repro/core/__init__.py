"""AEDB-MLS — the paper's parallel multi-objective local search.

The algorithm (Sect. IV):

* P distributed populations × T threads; each thread owns one solution
  and improves it with an iterated local search (Fig. 3);
* each iteration perturbs the owned solution with a directional BLX-α
  operator (Eq. 2) along one of three *search criteria* derived from the
  sensitivity analysis (Sect. IV-B); the reference solution ``t`` is a
  random peer from the same population;
* any *feasible* perturbed solution is accepted and offered to the shared
  Adaptive Grid Archive;
* every ``reset_iterations`` iterations a population re-initialises all
  its solutions from the archive (diversity + inter-population
  collaboration);
* execution engines: ``serial`` (deterministic reference), ``threads``
  (shared memory), ``processes`` (message passing between populations and
  the archive — the paper's hybrid MPI+pthreads model).
"""

from repro.core.config import MLSConfig
from repro.core.criteria import SEARCH_CRITERIA, SearchCriterion, select_criterion
from repro.core.hybrid import CellDEMLS
from repro.core.mls import AEDBMLS
from repro.core.operators import blx_alpha_step

__all__ = [
    "AEDBMLS",
    "CellDEMLS",
    "MLSConfig",
    "SearchCriterion",
    "SEARCH_CRITERIA",
    "select_criterion",
    "blx_alpha_step",
]
