"""Cooperative (round-robin) scheduling of one population's procedures.

The paper's shared-memory level maps naturally to POSIX threads in C.
Under CPython, however, preemptive threads running this workload convoy
on the GIL (NumPy releases it at every medium-sized ufunc call, forcing
a context switch per operation — measured 3-5x slowdowns; see DESIGN.md
§7).  Because the thread engine synchronises all of a population's
threads at the same iteration boundaries anyway, a *cooperative*
round-robin over the population's procedures executes the identical
sequence of algorithm states with none of the GIL traffic.

The process engine therefore defaults to cooperative intra-population
scheduling (``MLSConfig.process_worker = "cooperative"``) and keeps real
threads available (``"threads"``) for interpreters where they pay off
(free-threaded CPython, or C-level evaluation functions that hold the
GIL released for long stretches).
"""

from __future__ import annotations

from repro.core.config import MLSConfig
from repro.core.localsearch import (
    ArchivePort,
    LocalSearchProcedure,
    Population,
    drain_population,
)
from repro.moo.problem import Problem
from repro.utils.rng import RngFactory

__all__ = ["run_population_cooperative"]


def run_population_cooperative(
    problem: Problem,
    config: MLSConfig,
    population_index: int,
    port: ArchivePort,
    factory: RngFactory,
) -> list[dict]:
    """Run one population's T procedures round-robin; return their stats.

    Equivalent to :func:`repro.core.engines.threads.run_population_threaded`
    state-for-state: initialise all, then one ``step`` per live procedure
    per round, with the population-wide archive reset at the shared
    iteration boundaries (all live procedures reach the reset condition in
    the same round by construction).
    """
    population = Population(config.threads_per_population)
    procedures = [
        LocalSearchProcedure(
            problem,
            config,
            population,
            slot=t,
            archive=port,
            rng=factory.generator("mls", population_index, t),
        )
        for t in range(config.threads_per_population)
    ]
    reset_rng = factory.generator("reset", population_index)

    for proc in procedures:
        proc.initialise()

    while any(not proc.done for proc in procedures):
        live = [proc for proc in procedures if not proc.done]
        for proc in live:
            proc.step()
        if live and live[0].needs_reset():
            drain_population(procedures, port, reset_rng)

    return [proc.stats() for proc in procedures]
