"""Execution engines for AEDB-MLS.

The same local-search procedure (:mod:`repro.core.localsearch`) runs under
three concurrency models:

* :mod:`~repro.core.engines.serial` — deterministic round-robin in one
  thread; the reference semantics used by the test suite;
* :mod:`~repro.core.engines.threads` — one OS thread per procedure,
  shared-memory populations and a lock-guarded shared archive;
* :mod:`~repro.core.engines.processes` — one OS process per population
  (threads inside), with the archive hosted by the parent and reached by
  message passing — the paper's hybrid MPI + pthreads model.
"""

from repro.core.engines.processes import ProcessEngine
from repro.core.engines.serial import SerialEngine
from repro.core.engines.threads import ThreadEngine

ENGINES = {
    "serial": SerialEngine,
    "threads": ThreadEngine,
    "processes": ProcessEngine,
}

__all__ = ["SerialEngine", "ThreadEngine", "ProcessEngine", "ENGINES"]
