"""Message-passing (multi-process) AEDB-MLS engine.

The paper's hybrid parallel model: "message-passing is used for the
collaboration between the distributed populations and the external
archive, and shared-memory is used in the collaboration between solutions
in the same population" (Sect. IV).

Topology here: one OS **process per population**, each running its T
local-search threads via :func:`~repro.core.engines.threads.run_population_threaded`;
the parent process hosts the Adaptive Grid Archive and serves ``add`` /
``sample`` requests over per-population pipes.  Solutions cross the
process boundary as plain ``(variables, objectives, violation)`` tuples.

The archive protocol is deliberately identical to the serial/thread
engines' :class:`~repro.core.localsearch.ArchivePort`, so the algorithm
code cannot tell which engine it runs under.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from multiprocessing.connection import Connection, wait as mp_wait

import numpy as np

from repro.core.config import MLSConfig
from repro.core.engines.cooperative import run_population_cooperative
from repro.core.engines.threads import run_population_threaded
from repro.core.localsearch import ArchivePort
from repro.moo.archive import AdaptiveGridArchive
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution
from repro.utils.rng import RngFactory

__all__ = ["ProcessEngine"]


def _pack(solution: FloatSolution) -> tuple:
    return (
        np.asarray(solution.variables, dtype=float),
        np.asarray(solution.objectives, dtype=float),
        float(solution.constraint_violation),
    )


def _unpack(payload: tuple) -> FloatSolution:
    variables, objectives, violation = payload
    sol = FloatSolution(variables, len(objectives))
    sol.objectives = np.asarray(objectives, dtype=float).copy()
    sol.constraint_violation = violation
    return sol


class _PipeArchiveClient(ArchivePort):
    """Archive port that forwards operations over a pipe.

    The population's threads share one connection; a lock serialises
    message sequences (pipe messages must not interleave).  ``add`` is
    fire-and-forget — its boolean result only feeds per-thread statistics,
    and a blocking round trip per evaluation would serialise the workers
    on the archive server.  The optimistic ``True`` makes the local
    ``archived`` counters upper bounds; the authoritative counts live in
    the server-side archive.
    """

    def __init__(self, conn: Connection):
        self._conn = conn
        self._lock = threading.Lock()
        super().__init__(self._add_remote, self._sample_remote)

    def _add_remote(self, solution: FloatSolution) -> bool:
        with self._lock:
            self._conn.send(("add", _pack(solution)))
        return True

    def _sample_remote(self, k: int) -> list[FloatSolution]:
        with self._lock:
            self._conn.send(("sample", int(k)))
            payloads = self._conn.recv()
        return [_unpack(p) for p in payloads]


def _population_worker(
    problem: Problem,
    config: MLSConfig,
    population_index: int,
    seed: int,
    conn: Connection,
) -> None:
    """Process entry point: run one population, then report stats.

    The intra-population schedule is selected by
    ``config.process_worker``: cooperative round-robin (default,
    GIL-friendly) or real OS threads — see
    :mod:`repro.core.engines.cooperative` for the rationale.
    """
    try:
        factory = RngFactory(seed)
        port = _PipeArchiveClient(conn)
        if config.process_worker == "threads":
            stats = run_population_threaded(
                problem, config, population_index, port, factory
            )
        else:
            stats = run_population_cooperative(
                problem, config, population_index, port, factory
            )
        conn.send(("done", stats))
    except BaseException as exc:  # surfaced in the parent
        conn.send(("error", repr(exc)))
    finally:
        conn.close()


class ProcessEngine:
    """Populations as processes, archive served by the parent."""

    name = "processes"

    def __init__(self, start_method: str | None = None):
        #: ``fork`` (default on Linux) shares the problem by COW memory;
        #: ``spawn`` pickles it — both are supported, problems are
        #: picklable by construction.
        self.start_method = start_method

    def run(
        self,
        problem: Problem,
        config: MLSConfig,
        seed: int = 0,
    ) -> tuple[list[FloatSolution], dict]:
        """Execute a full AEDB-MLS run; return (archive members, stats)."""
        ctx = mp.get_context(self.start_method)
        factory = RngFactory(seed)
        archive = AdaptiveGridArchive(
            capacity=config.archive_capacity,
            n_objectives=problem.n_objectives,
            bisections=config.archive_bisections,
            rng=factory.generator("archive"),
        )

        parent_conns: list[Connection] = []
        processes: list[mp.process.BaseProcess] = []
        for p in range(config.n_populations):
            parent_conn, child_conn = ctx.Pipe()
            worker_seed = int(
                factory.seed_sequence("worker", p).generate_state(1)[0]
            )
            proc = ctx.Process(
                target=_population_worker,
                args=(problem, config, p, worker_seed, child_conn),
                name=f"mls-pop{p}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            parent_conns.append(parent_conn)
            processes.append(proc)

        # Archive server loop: service requests until every population
        # reports done (or errors).
        per_population: list[list[dict]] = [[] for _ in range(config.n_populations)]
        open_conns = dict(enumerate(parent_conns))
        errors: list[str] = []
        messages = 0
        while open_conns:
            ready = mp_wait(list(open_conns.values()), timeout=60.0)
            if not ready:
                errors.append("archive server timed out waiting for workers")
                break
            for conn in ready:
                idx = next(i for i, c in open_conns.items() if c is conn)
                try:
                    kind, payload = conn.recv()
                except EOFError:
                    del open_conns[idx]
                    continue
                messages += 1
                if kind == "add":
                    archive.add(_unpack(payload))  # fire-and-forget
                elif kind == "sample":
                    samples = archive.sample(int(payload))
                    conn.send([_pack(s) for s in samples])
                elif kind == "done":
                    per_population[idx] = payload
                    del open_conns[idx]
                elif kind == "error":
                    errors.append(f"population {idx}: {payload}")
                    del open_conns[idx]

        for proc in processes:
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        if errors:
            raise RuntimeError("; ".join(errors))

        stats = {
            "engine": self.name,
            "evaluations": int(
                np.sum(
                    [
                        proc_stats["evaluations"]
                        for pop in per_population
                        for proc_stats in pop
                    ]
                )
            ),
            "archive_size": len(archive),
            "archive_messages": messages,
            "per_population": per_population,
        }
        return [m.copy() for m in archive.members], stats
