"""Serial (deterministic) AEDB-MLS engine.

Populations and their procedures are stepped round-robin in a single
thread.  Because every procedure advances one iteration per round, the
reset condition fires for a whole population in the same round — exactly
the synchronised semantics the concurrent engines implement with
barriers.  Given a seed, runs are bit-for-bit reproducible, which makes
this engine the behavioural reference for the tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MLSConfig
from repro.core.localsearch import (
    ArchivePort,
    LocalSearchProcedure,
    Population,
    drain_population,
)
from repro.moo.archive import AdaptiveGridArchive
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution
from repro.utils.rng import RngFactory

__all__ = ["SerialEngine"]


class SerialEngine:
    """Single-threaded reference engine."""

    name = "serial"

    def run(
        self,
        problem: Problem,
        config: MLSConfig,
        seed: int = 0,
    ) -> tuple[list[FloatSolution], dict]:
        """Execute a full AEDB-MLS run; return (archive members, stats)."""
        factory = RngFactory(seed)
        archive = AdaptiveGridArchive(
            capacity=config.archive_capacity,
            n_objectives=problem.n_objectives,
            bisections=config.archive_bisections,
            rng=factory.generator("archive"),
        )
        port = ArchivePort(archive.add, archive.sample)

        populations: list[Population] = []
        procedures: list[list[LocalSearchProcedure]] = []
        reset_rngs: list[np.random.Generator] = []
        for p in range(config.n_populations):
            population = Population(config.threads_per_population)
            procs = [
                LocalSearchProcedure(
                    problem,
                    config,
                    population,
                    slot=t,
                    archive=port,
                    rng=factory.generator("mls", p, t),
                )
                for t in range(config.threads_per_population)
            ]
            populations.append(population)
            procedures.append(procs)
            reset_rngs.append(factory.generator("reset", p))

        for procs in procedures:
            for proc in procs:
                proc.initialise()

        resets = 0
        while any(not proc.done for procs in procedures for proc in procs):
            for p, procs in enumerate(procedures):
                live = [proc for proc in procs if not proc.done]
                for proc in live:
                    proc.step()
                # All live procedures share the iteration count in this
                # round-robin schedule; one check covers the population.
                if live and live[0].needs_reset() and len(archive):
                    drain_population(procs, port, reset_rngs[p])
                    resets += 1

        stats = {
            "engine": self.name,
            "evaluations": sum(
                proc.evaluations for procs in procedures for proc in procs
            ),
            "population_resets": resets,
            "archive_size": len(archive),
            "per_population": [
                [proc.stats() for proc in procs] for procs in procedures
            ],
        }
        return [m.copy() for m in archive.members], stats
