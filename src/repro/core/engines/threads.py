"""Shared-memory (threaded) AEDB-MLS engine.

One OS thread per local-search procedure, populations shared in memory,
and a single lock-guarded Adaptive Grid Archive — the shared-memory half
of the paper's hybrid model.  Population re-initialisation is coordinated
with a :class:`ResetBarrier`: a barrier whose party count shrinks as
threads exhaust their budgets, so stragglers can never deadlock the
population (threads consume different evaluation counts during feasible
initialisation).

CPython note: the simulator's evaluation releases the GIL only inside
NumPy kernels, so thread scalability is limited — the point of this
engine is semantic fidelity (and it is also what the process engine runs
*inside* each population process, where it does provide overlap with the
pipe I/O).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.config import MLSConfig
from repro.core.localsearch import (
    ArchivePort,
    LocalSearchProcedure,
    Population,
    drain_population,
)
from repro.moo.archive import AdaptiveGridArchive
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution
from repro.utils.rng import RngFactory

__all__ = ["ThreadEngine", "ResetBarrier", "run_population_threaded"]


class ResetBarrier:
    """A barrier whose membership can shrink.

    ``wait(leader_action)`` blocks until every *registered* party has
    arrived; the last arrival runs ``leader_action`` and releases the
    generation.  ``deregister()`` removes a finished party and, if that
    completes the current generation, releases it (running the pending
    leader action).
    """

    def __init__(self, parties: int):
        if parties <= 0:
            raise ValueError(f"parties must be positive, got {parties}")
        self._parties = parties
        self._arrived = 0
        self._generation = 0
        self._cond = threading.Condition()
        self._pending_action = None

    def _release(self) -> None:
        # Caller holds the lock.
        action, self._pending_action = self._pending_action, None
        if action is not None:
            action()
        self._arrived = 0
        self._generation += 1
        self._cond.notify_all()

    def wait(self, leader_action=None) -> None:
        """Arrive at the barrier; the closing arrival runs the action."""
        with self._cond:
            if leader_action is not None:
                self._pending_action = leader_action
            generation = self._generation
            self._arrived += 1
            if self._arrived >= self._parties:
                self._release()
                return
            while generation == self._generation:
                self._cond.wait()

    def deregister(self) -> None:
        """A party leaves permanently (budget exhausted)."""
        with self._cond:
            self._parties -= 1
            if self._parties > 0 and self._arrived >= self._parties:
                self._release()


def run_population_threaded(
    problem: Problem,
    config: MLSConfig,
    population_index: int,
    port: ArchivePort,
    factory: RngFactory,
) -> list[dict]:
    """Run one population's T procedures on T threads; return stats.

    Shared by :class:`ThreadEngine` (all populations in one process) and
    the process engine's population workers.
    """
    population = Population(config.threads_per_population)
    procedures = [
        LocalSearchProcedure(
            problem,
            config,
            population,
            slot=t,
            archive=port,
            rng=factory.generator("mls", population_index, t),
        )
        for t in range(config.threads_per_population)
    ]
    barrier = ResetBarrier(config.threads_per_population)
    reset_rng = factory.generator("reset", population_index)
    errors: list[BaseException] = []

    def drain() -> None:
        drain_population(procedures, port, reset_rng)

    def worker(proc: LocalSearchProcedure) -> None:
        try:
            proc.initialise()
            # Fig. 3 line 4: wait until the local population is complete.
            barrier.wait()
            while not proc.done:
                proc.step()
                if proc.done:
                    break
                if proc.needs_reset():
                    barrier.wait(leader_action=drain)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            barrier.deregister()

    threads = [
        threading.Thread(
            target=worker,
            args=(proc,),
            name=f"mls-p{population_index}-t{i}",
            daemon=True,
        )
        for i, proc in enumerate(procedures)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return [proc.stats() for proc in procedures]


class ThreadEngine:
    """All populations as thread groups in one process."""

    name = "threads"

    def run(
        self,
        problem: Problem,
        config: MLSConfig,
        seed: int = 0,
    ) -> tuple[list[FloatSolution], dict]:
        """Execute a full AEDB-MLS run; return (archive members, stats)."""
        factory = RngFactory(seed)
        archive = AdaptiveGridArchive(
            capacity=config.archive_capacity,
            n_objectives=problem.n_objectives,
            bisections=config.archive_bisections,
            rng=factory.generator("archive"),
        )
        lock = threading.Lock()

        def locked_add(solution: FloatSolution) -> bool:
            with lock:
                return archive.add(solution)

        def locked_sample(k: int) -> list[FloatSolution]:
            with lock:
                return archive.sample(k)

        port = ArchivePort(locked_add, locked_sample)

        per_population: list[list[dict] | None] = [None] * config.n_populations
        errors: list[BaseException] = []

        def population_runner(p: int) -> None:
            try:
                per_population[p] = run_population_threaded(
                    problem, config, p, port, factory
                )
            except BaseException as exc:  # pragma: no cover - defensive
                errors.append(exc)

        runners = [
            threading.Thread(
                target=population_runner, args=(p,), name=f"mls-pop{p}", daemon=True
            )
            for p in range(config.n_populations)
        ]
        for t in runners:
            t.start()
        for t in runners:
            t.join()
        if errors:
            raise errors[0]

        stats_lists: list[list[dict]] = [s or [] for s in per_population]
        stats = {
            "engine": self.name,
            "evaluations": int(
                np.sum(
                    [
                        proc_stats["evaluations"]
                        for pop in stats_lists
                        for proc_stats in pop
                    ]
                )
            ),
            "archive_size": len(archive),
            "per_population": stats_lists,
        }
        return [m.copy() for m in archive.members], stats
