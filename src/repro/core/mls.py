"""AEDB-MLS facade.

Ties the configuration, the problem, and an execution engine into the
same ``run() -> AlgorithmResult`` interface the MOEAs implement, so the
experiment harness treats all three algorithms uniformly.
"""

from __future__ import annotations

import time

from repro.core.config import MLSConfig
from repro.core.engines import ENGINES
from repro.moo.algorithms.base import AlgorithmResult
from repro.moo.dominance import non_dominated
from repro.moo.problem import Problem

__all__ = ["AEDBMLS"]


class AEDBMLS:
    """The parallel multi-objective local search (paper Sect. IV).

    Parameters
    ----------
    problem:
        Any :class:`repro.moo.Problem`; the paper uses
        :class:`repro.tuning.AEDBTuningProblem` but the algorithm is
        problem-agnostic (its criteria are, by design, AEDB's — supply a
        custom ``criteria`` module through ``MLSConfig`` derivatives for
        other problems, or rely on clipping to the problem box).
    config:
        Populations / threads / budgets / α / reset cadence / engine.
    seed:
        Master seed; every stochastic stream derives from it.
    """

    name = "AEDB-MLS"

    def __init__(
        self,
        problem: Problem,
        config: MLSConfig | None = None,
        seed: int = 0,
    ):
        self.problem = problem
        self.config = config or MLSConfig()
        self.seed = int(seed)
        # The published search criteria index AEDB's five variables; guard
        # against silently perturbing the wrong genes of another problem.
        if problem.n_variables != 5:
            raise ValueError(
                "AEDB-MLS search criteria are defined for the 5-variable "
                f"AEDB problem; got {problem.n_variables} variables"
            )

    def run(self) -> AlgorithmResult:
        """Execute the configured engine; return the archive as a front."""
        engine = ENGINES[self.config.engine]()
        # repro-lint: ok D101 - observational runtime, reported only
        start = time.perf_counter()
        members, stats = engine.run(self.problem, self.config, seed=self.seed)
        runtime = time.perf_counter() - start  # repro-lint: ok D101
        front = non_dominated(members)
        info = {
            "config": self.config,
            "seed": self.seed,
            **stats,
        }
        return AlgorithmResult(
            front=front,
            evaluations=int(stats.get("evaluations", 0)),
            runtime_s=runtime,
            algorithm=self.name,
            info=info,
        )
