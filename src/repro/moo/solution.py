"""Solution representation for real-coded multi-objective optimisation.

A :class:`FloatSolution` is a point in a box-constrained decision space
with attached objective values (always *minimised* internally — problems
negate maximisation objectives) and an aggregate constraint-violation
figure (0 = feasible, larger = worse).  It deliberately mirrors jMetal's
``DoubleSolution`` so the algorithm implementations read like their
reference publications.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["FloatSolution"]


class FloatSolution:
    """A real vector plus its evaluation results.

    Attributes
    ----------
    variables:
        Decision vector, ``(n_variables,)`` float array.
    objectives:
        Objective vector (minimisation), ``(n_objectives,)`` float array;
        NaN until evaluated.
    constraint_violation:
        Sum of constraint violations; 0.0 means feasible.
    attributes:
        Scratch space used by algorithms (rank, crowding distance, ...).
        Copied shallowly by :meth:`copy`.
    """

    __slots__ = ("variables", "objectives", "constraint_violation", "attributes")

    def __init__(
        self,
        variables: np.ndarray,
        n_objectives: int,
    ):
        self.variables = np.asarray(variables, dtype=float).copy()
        self.objectives = np.full(int(n_objectives), np.nan)
        self.constraint_violation = 0.0
        self.attributes: dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    @property
    def n_variables(self) -> int:
        """Decision-space dimensionality."""
        return int(self.variables.size)

    @property
    def n_objectives(self) -> int:
        """Objective-space dimensionality."""
        return int(self.objectives.size)

    @property
    def is_evaluated(self) -> bool:
        """True once objectives hold real values."""
        return not np.any(np.isnan(self.objectives))

    @property
    def is_feasible(self) -> bool:
        """True when all constraints are satisfied."""
        return self.constraint_violation <= 0.0

    # ------------------------------------------------------------------ #
    def copy(self) -> "FloatSolution":
        """Deep copy of variables/objectives, shallow copy of attributes."""
        clone = FloatSolution(self.variables, self.n_objectives)
        clone.objectives = self.objectives.copy()
        clone.constraint_violation = self.constraint_violation
        clone.attributes = dict(self.attributes)
        return clone

    def objective_tuple(self) -> tuple[float, ...]:
        """Objectives as a plain tuple (hashable, for dedup/caches)."""
        return tuple(float(v) for v in self.objectives)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        obj = np.array2string(self.objectives, precision=4)
        return (
            f"FloatSolution(vars={np.array2string(self.variables, precision=4)}, "
            f"obj={obj}, cv={self.constraint_violation:.4g})"
        )
