"""Anytime-performance tracking (extension beyond the paper).

The paper's headline claim is about *speed*: the local search reaches
competitive quality in a fraction of the MOEAs' wall-clock.  The natural
instrument for such a claim is the **anytime curve** — front quality as
a function of evaluations spent.  :class:`TrackedProblem` wraps any
:class:`~repro.moo.problem.Problem` and snapshots the evolving
non-dominated set at a fixed evaluation cadence, entirely outside the
optimiser (no algorithm cooperates or even knows); the curves of two
optimisers on the same wrapped problem are therefore directly
comparable at equal budgets.

Typical use::

    tracked = TrackedProblem(make_tuning_problem(100), every=50)
    NSGAII(tracked, max_evaluations=600, rng=1).run()
    curve = tracked.history.hypervolume_curve(reference_point)

Notes
-----
* Snapshots store *copies* of the objective vectors (not solutions), so
  tracking adds O(front) memory per checkpoint and never perturbs the
  search.
* Feasibility is respected: infeasible evaluations never enter the
  tracked front (they violate Eq. 1 and the paper drops them too).
* The wrapper forwards every Problem hook (bounds, labels, clip,
  ``display_objectives``), so it is a drop-in for any optimiser in this
  repository, AEDB-MLS's serial engine included.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.moo.indicators import hypervolume, inverted_generational_distance
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution

__all__ = ["Checkpoint", "ConvergenceHistory", "TrackedProblem"]


@dataclass(frozen=True)
class Checkpoint:
    """The non-dominated objective set after ``evaluations`` evaluations."""

    evaluations: int
    #: ``(n, m)`` objective matrix of the feasible non-dominated set.
    front: np.ndarray

    @property
    def size(self) -> int:
        """Number of points in the snapshot front."""
        return 0 if self.front.size == 0 else self.front.shape[0]


@dataclass
class ConvergenceHistory:
    """Ordered checkpoints of one tracked run."""

    checkpoints: list[Checkpoint] = field(default_factory=list)

    def evaluations(self) -> np.ndarray:
        """Checkpoint x-axis (evaluations spent)."""
        return np.array([c.evaluations for c in self.checkpoints], dtype=int)

    def hypervolume_curve(self, reference_point) -> np.ndarray:
        """HV of each checkpoint front against a fixed reference point."""
        ref = np.asarray(reference_point, dtype=float)
        return np.array(
            [
                hypervolume(c.front, ref) if c.size else 0.0
                for c in self.checkpoints
            ]
        )

    def igd_curve(self, reference_front) -> np.ndarray:
        """IGD of each checkpoint front against a fixed reference front."""
        ref = np.asarray(reference_front, dtype=float)
        return np.array(
            [
                inverted_generational_distance(c.front, ref)
                if c.size
                else np.inf
                for c in self.checkpoints
            ]
        )

    def evaluations_to_reach(
        self, reference_point, hv_target: float
    ) -> int | None:
        """First checkpoint budget whose HV meets ``hv_target`` (None if
        never) — the "time-to-quality" statistic the speed claim needs."""
        curve = self.hypervolume_curve(reference_point)
        hits = np.flatnonzero(curve >= hv_target)
        if hits.size == 0:
            return None
        return int(self.evaluations()[hits[0]])

    def __len__(self) -> int:
        return len(self.checkpoints)


class TrackedProblem(Problem):
    """Problem decorator that records the anytime non-dominated front.

    Parameters
    ----------
    inner:
        The problem to wrap.
    every:
        Checkpoint cadence in evaluations (a final partial interval is
        flushed by :meth:`finalize`).
    """

    def __init__(self, inner: Problem, every: int = 50):
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        super().__init__(
            inner.lower_bounds,
            inner.upper_bounds,
            n_objectives=inner.n_objectives,
            n_constraints=inner.n_constraints,
            name=f"tracked({inner.name})",
        )
        self.inner = inner
        self.every = int(every)
        self.history = ConvergenceHistory()
        self._front: list[np.ndarray] = []

    # -- Problem forwarding ------------------------------------------- #
    @property
    def objective_labels(self) -> tuple[str, ...]:
        return self.inner.objective_labels

    def display_objectives(self, objectives: np.ndarray) -> np.ndarray:
        return self.inner.display_objectives(objectives)

    def _evaluate(self, solution: FloatSolution) -> None:
        self.inner._evaluate(solution)
        self.inner.evaluations += 1
        if solution.constraint_violation <= 0:
            self._offer(solution.objectives.copy())
        # self.evaluations is incremented by Problem.evaluate afterwards.
        if (self.evaluations + 1) % self.every == 0:
            self._snapshot(self.evaluations + 1)

    # -- tracking internals -------------------------------------------- #
    def _offer(self, objectives: np.ndarray) -> None:
        """Maintain the running feasible non-dominated objective set."""
        keep = []
        for other in self._front:
            if np.all(other <= objectives) and np.any(other < objectives):
                return  # dominated by an existing point
            if np.all(objectives == other):
                return  # duplicate
            if not (
                np.all(objectives <= other) and np.any(objectives < other)
            ):
                keep.append(other)
        keep.append(objectives)
        self._front = keep

    def _snapshot(self, evaluations: int) -> None:
        front = (
            np.vstack(self._front)
            if self._front
            else np.empty((0, self.n_objectives))
        )
        self.history.checkpoints.append(
            Checkpoint(evaluations=evaluations, front=front)
        )

    def finalize(self) -> ConvergenceHistory:
        """Flush a trailing checkpoint if the last interval was partial."""
        if not self.history.checkpoints or (
            self.history.checkpoints[-1].evaluations != self.evaluations
        ):
            self._snapshot(self.evaluations)
        return self.history

    def current_front(self) -> np.ndarray:
        """The running non-dominated objective set (copy)."""
        if not self._front:
            return np.empty((0, self.n_objectives))
        return np.vstack(self._front)
