"""Parent-selection operators."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.moo.density import crowded_compare
from repro.moo.dominance import compare
from repro.moo.solution import FloatSolution
from repro.utils.rng import as_generator

__all__ = [
    "binary_tournament",
    "crowded_binary_tournament",
    "random_selection",
]

Comparator = Callable[[FloatSolution, FloatSolution], int]


def binary_tournament(
    population: Sequence[FloatSolution],
    rng: np.random.Generator | int | None = None,
    comparator: Comparator = compare,
) -> FloatSolution:
    """Pick two distinct random members; return the comparator's winner
    (random winner on ties)."""
    gen = as_generator(rng)
    n = len(population)
    if n == 0:
        raise ValueError("cannot select from an empty population")
    if n == 1:
        return population[0]
    i, j = gen.choice(n, size=2, replace=False)
    a, b = population[int(i)], population[int(j)]
    c = comparator(a, b)
    if c == -1:
        return a
    if c == 1:
        return b
    return a if gen.random() < 0.5 else b


def crowded_binary_tournament(
    population: Sequence[FloatSolution],
    rng: np.random.Generator | int | None = None,
) -> FloatSolution:
    """NSGA-II's tournament on (rank, crowding distance)."""
    return binary_tournament(population, rng, comparator=crowded_compare)


def random_selection(
    population: Sequence[FloatSolution],
    rng: np.random.Generator | int | None = None,
    k: int = 1,
    replace: bool = False,
) -> list[FloatSolution]:
    """``k`` members uniformly at random."""
    gen = as_generator(rng)
    if k > len(population) and not replace:
        raise ValueError(
            f"cannot draw {k} distinct members from {len(population)}"
        )
    idx = gen.choice(len(population), size=k, replace=replace)
    return [population[int(i)] for i in idx]
