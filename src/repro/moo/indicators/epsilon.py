"""Additive epsilon indicator (Zitzler et al. 2003).

The smallest amount by which the approximation front must be translated
(subtracted, for minimisation) so that every reference point is weakly
dominated.  Not reported in the paper; used here as an extra cross-check
between algorithms in the extended analyses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["additive_epsilon"]


def additive_epsilon(front: np.ndarray, reference_front: np.ndarray) -> float:
    """I_eps+(front, reference): lower is better, >= 0 when reference is
    the non-dominated union."""
    pts = np.atleast_2d(np.asarray(front, dtype=float))
    ref = np.atleast_2d(np.asarray(reference_front, dtype=float))
    if pts.shape[0] == 0 or ref.shape[0] == 0:
        raise ValueError("fronts must be non-empty")
    if pts.shape[1] != ref.shape[1]:
        raise ValueError(
            f"objective mismatch: {pts.shape[1]} vs {ref.shape[1]}"
        )
    # eps(r) = min over front points of max over objectives (p - r);
    # indicator = max over reference points.
    diffs = pts[:, None, :] - ref[None, :, :]  # (n_front, n_ref, m)
    worst_per_pair = diffs.max(axis=2)
    best_per_ref = worst_per_pair.min(axis=0)
    return float(best_per_ref.max())
