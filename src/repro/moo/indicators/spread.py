"""Spread (diversity) indicators.

* :func:`spread` — Deb's Δ (Eq. 4 of the paper) for **two** objectives:
  consecutive-gap dispersion along the front plus the distances to the
  reference front's extreme solutions.  0 = ideally uniform.
* :func:`generalized_spread` — the Zhou et al. (2006) generalisation used
  for three or more objectives (the paper's problems are 3-objective):
  consecutive gaps are replaced by nearest-neighbour distances and the
  two extremes by the per-objective extreme points of the reference
  front.

Both expect *normalised* fronts (the paper normalises first; see
:mod:`repro.moo.indicators.normalize`).
"""

from __future__ import annotations

import numpy as np

from scipy.spatial.distance import cdist

__all__ = ["spread", "generalized_spread"]


def spread(front: np.ndarray, reference_front: np.ndarray) -> float:
    """Deb's Δ spread indicator (2 objectives)."""
    pts = np.atleast_2d(np.asarray(front, dtype=float))
    ref = np.atleast_2d(np.asarray(reference_front, dtype=float))
    if pts.shape[1] != 2 or ref.shape[1] != 2:
        raise ValueError("spread() is defined for 2 objectives; "
                         "use generalized_spread() otherwise")
    if pts.shape[0] < 2:
        return 1.0

    order = np.argsort(pts[:, 0], kind="stable")
    pts = pts[order]
    gaps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
    mean_gap = gaps.mean()

    # Extremes of the reference front: lexicographic ends along f1.
    ref_sorted = ref[np.argsort(ref[:, 0], kind="stable")]
    d_first = float(np.linalg.norm(pts[0] - ref_sorted[0]))
    d_last = float(np.linalg.norm(pts[-1] - ref_sorted[-1]))

    numerator = d_first + d_last + float(np.abs(gaps - mean_gap).sum())
    denominator = d_first + d_last + (pts.shape[0] - 1) * mean_gap
    if denominator <= 0:
        return 0.0
    return float(numerator / denominator)


def generalized_spread(front: np.ndarray, reference_front: np.ndarray) -> float:
    """Generalised spread (Zhou et al. 2006) for m >= 2 objectives."""
    pts = np.atleast_2d(np.asarray(front, dtype=float))
    ref = np.atleast_2d(np.asarray(reference_front, dtype=float))
    if pts.shape[1] != ref.shape[1]:
        raise ValueError(
            f"objective mismatch: {pts.shape[1]} vs {ref.shape[1]}"
        )
    if pts.shape[0] < 2:
        return 1.0

    # Per-objective extreme points of the reference front.
    extreme_idx = [int(np.argmax(ref[:, m])) for m in range(ref.shape[1])]
    extremes = ref[extreme_idx]

    # Nearest-neighbour distance of each front point (excluding itself).
    dists = cdist(pts, pts)
    np.fill_diagonal(dists, np.inf)
    nn = dists.min(axis=1)
    mean_nn = float(nn.mean())

    # Distance from each reference extreme to the front.
    d_extremes = cdist(extremes, pts).min(axis=1)
    ext_term = float(d_extremes.sum())

    numerator = ext_term + float(np.abs(nn - mean_nn).sum())
    denominator = ext_term + pts.shape[0] * mean_nn
    if denominator <= 0:
        return 0.0
    return float(numerator / denominator)
