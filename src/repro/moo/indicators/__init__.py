"""Pareto-front quality indicators used in the paper's Sect. VI.

* :func:`hypervolume` — exact for 2 and 3 objectives (staircase sweep),
  Monte-Carlo estimate beyond;
* :func:`inverted_generational_distance` — Eq. 3 of the paper
  (Van Veldhuizen's form: ``sqrt(sum d_i^2) / n``);
* :func:`spread` / :func:`generalized_spread` — Eq. 4 (Deb's Δ for two
  objectives; the Zhou et al. generalisation for three or more);
* :func:`additive_epsilon` — extra indicator for cross-checks;
* :class:`NormalizationBounds` — min/max normalisation against a reference
  front, applied before every indicator as the paper does.
"""

from repro.moo.indicators.epsilon import additive_epsilon
from repro.moo.indicators.hypervolume import (
    hypervolume,
    hypervolume_2d,
    hypervolume_3d,
)
from repro.moo.indicators.igd import (
    generational_distance,
    inverted_generational_distance,
)
from repro.moo.indicators.normalize import NormalizationBounds
from repro.moo.indicators.spread import generalized_spread, spread

__all__ = [
    "hypervolume",
    "hypervolume_2d",
    "hypervolume_3d",
    "inverted_generational_distance",
    "generational_distance",
    "spread",
    "generalized_spread",
    "additive_epsilon",
    "NormalizationBounds",
]
