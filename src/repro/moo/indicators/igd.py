"""(Inverted) generational distance.

The paper (Eq. 3) uses Van Veldhuizen's form: ``sqrt(sum_i d_i^2) / n``
where, for IGD, ``d_i`` runs over *reference-front* points and measures
the Euclidean distance to the nearest point of the approximation front.
Lower is better; 0 means the reference front is fully covered.

``generational_distance`` is the mirror image (distances from the
approximation to the reference) and is provided for completeness and
cross-checks.
"""

from __future__ import annotations

import numpy as np

from scipy.spatial.distance import cdist

__all__ = ["inverted_generational_distance", "generational_distance"]


def _min_distances(from_points: np.ndarray, to_points: np.ndarray) -> np.ndarray:
    a = np.atleast_2d(np.asarray(from_points, dtype=float))
    b = np.atleast_2d(np.asarray(to_points, dtype=float))
    if a.shape[0] == 0 or b.shape[0] == 0:
        raise ValueError("fronts must be non-empty")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"objective mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    return cdist(a, b).min(axis=1)


def inverted_generational_distance(
    front: np.ndarray, reference_front: np.ndarray, power: float = 2.0
) -> float:
    """IGD of ``front`` against ``reference_front`` (Eq. 3 of the paper).

    ``power=2`` gives the paper's ``sqrt(sum d^2)/n``; ``power=1`` gives
    the plain-average variant some later literature prefers.
    """
    d = _min_distances(reference_front, front)
    n = d.size
    if power == 1.0:
        return float(d.mean())
    return float((d**power).sum() ** (1.0 / power) / n)


def generational_distance(
    front: np.ndarray, reference_front: np.ndarray, power: float = 2.0
) -> float:
    """GD of ``front`` against ``reference_front`` (same normalisation)."""
    d = _min_distances(front, reference_front)
    n = d.size
    if power == 1.0:
        return float(d.mean())
    return float((d**power).sum() ** (1.0 / power) / n)
