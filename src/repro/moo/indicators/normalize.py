"""Objective normalisation for indicator computation.

"Before applying these metrics, all fronts were normalised because these
indicators are not free from arbitrary scaling of the objectives"
(paper, Sect. VI).  The bounds come from a reference front — in the paper,
the non-dominated union of all solutions from all compared algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NormalizationBounds"]


@dataclass(frozen=True)
class NormalizationBounds:
    """Per-objective [min, max] bounds, applied as (x - min) / (max - min)."""

    minimum: np.ndarray
    maximum: np.ndarray

    @classmethod
    def from_front(cls, front: np.ndarray) -> "NormalizationBounds":
        """Fit bounds to an ``(n, m)`` objective matrix."""
        pts = np.atleast_2d(np.asarray(front, dtype=float))
        if pts.shape[0] == 0:
            raise ValueError("cannot fit bounds to an empty front")
        return cls(minimum=pts.min(axis=0), maximum=pts.max(axis=0))

    @property
    def span(self) -> np.ndarray:
        """max - min, degenerate axes mapped to 1 (so they normalise to 0)."""
        diff = self.maximum - self.minimum
        return np.where(diff > 0, diff, 1.0)

    def apply(self, front: np.ndarray) -> np.ndarray:
        """Normalise a front; values may fall outside [0, 1] if the front
        exceeds the reference bounds (that is informative, not an error)."""
        pts = np.atleast_2d(np.asarray(front, dtype=float))
        if pts.shape[1] != self.minimum.size:
            raise ValueError(
                f"front has {pts.shape[1]} objectives, bounds "
                f"{self.minimum.size}"
            )
        return (pts - self.minimum[None, :]) / self.span[None, :]

    def reference_point(self, offset: float = 0.1) -> np.ndarray:
        """Hypervolume reference point in normalised space: (1+offset, ...).

        The paper builds the reference as the vector of worst objective
        values; after normalisation that is the all-ones corner, and the
        conventional safety offset keeps boundary solutions contributing.
        """
        return np.full(self.minimum.size, 1.0 + float(offset))
