"""Hypervolume indicator (Zitzler & Thiele 1999).

The volume of objective space dominated by a front and bounded by a
reference point (all objectives minimised; the reference point must be
weakly dominated by every front member that is to contribute).

Implementations:

* 2-D: sort + staircase sum, O(n log n), exact;
* 3-D: dimension-sweep over z with an explicit 2-D staircase, O(n² )
  worst case, exact — the fronts here hold at most a few hundred points;
* ≥4-D: Monte-Carlo estimation with a fixed sample budget (documented
  estimator, deterministic given a seed);
* :func:`hypervolume_inclusion_exclusion` — exponential-cost exact
  reference used by the property tests to validate the fast paths.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "hypervolume",
    "hypervolume_2d",
    "hypervolume_3d",
    "hypervolume_monte_carlo",
    "hypervolume_inclusion_exclusion",
]


def _prepare(front: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pts = np.asarray(front, dtype=float)
    ref = np.asarray(reference, dtype=float).ravel()
    if pts.ndim != 2:
        pts = np.atleast_2d(pts)
    if pts.shape[0] == 0:
        return pts.reshape(0, ref.size), ref
    if pts.shape[1] != ref.size:
        raise ValueError(
            f"front has {pts.shape[1]} objectives, reference {ref.size}"
        )
    # Only points that strictly dominate the reference contribute.
    keep = np.all(pts < ref, axis=1)
    return pts[keep], ref


def hypervolume_2d(front: np.ndarray, reference: np.ndarray) -> float:
    """Exact 2-objective hypervolume."""
    pts, ref = _prepare(front, reference)
    if pts.shape[0] == 0:
        return 0.0
    # Sort by f1 ascending; sweep keeping the best (lowest) f2 so far.
    order = np.argsort(pts[:, 0], kind="stable")
    pts = pts[order]
    volume = 0.0
    best_f2 = ref[1]
    for x, y in pts:
        if y < best_f2:
            volume += (ref[0] - x) * (best_f2 - y)
            best_f2 = y
    return float(volume)


def _staircase_area(stairs: list[tuple[float, float]], ref: np.ndarray) -> float:
    """Area dominated by a 2-D staircase of mutually non-dominated points.

    ``stairs`` is sorted by x ascending (hence y descending).
    """
    area = 0.0
    prev_y = ref[1]
    for x, y in stairs:
        area += (ref[0] - x) * (prev_y - y)
        prev_y = y
    return area


def _staircase_insert(
    stairs: list[tuple[float, float]], point: tuple[float, float]
) -> list[tuple[float, float]]:
    """Insert a point into a 2-D staircase, dropping dominated entries."""
    x, y = point
    out: list[tuple[float, float]] = []
    inserted = False
    for sx, sy in stairs:
        if sx <= x and sy <= y:
            return stairs  # point is dominated: staircase unchanged
        if x <= sx and y <= sy:
            continue  # existing stair dominated by the new point
        if not inserted and sx > x:
            out.append((x, y))
            inserted = True
        out.append((sx, sy))
    if not inserted:
        out.append((x, y))
    return out


def hypervolume_3d(front: np.ndarray, reference: np.ndarray) -> float:
    """Exact 3-objective hypervolume via a z-sweep of 2-D staircases."""
    pts, ref = _prepare(front, reference)
    if pts.shape[0] == 0:
        return 0.0
    order = np.argsort(pts[:, 2], kind="stable")
    pts = pts[order]
    stairs: list[tuple[float, float]] = []
    volume = 0.0
    prev_z = None
    for x, y, z in pts:
        if prev_z is not None and z > prev_z:
            volume += _staircase_area(stairs, ref) * (z - prev_z)
        if prev_z is None:
            prev_z = z
        elif z > prev_z:
            prev_z = z
        stairs = _staircase_insert(stairs, (x, y))
    volume += _staircase_area(stairs, ref) * (ref[2] - prev_z)
    return float(volume)


def hypervolume_monte_carlo(
    front: np.ndarray,
    reference: np.ndarray,
    n_samples: int = 100_000,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Monte-Carlo hypervolume estimate for any dimensionality.

    Samples uniformly in the box ``[ideal, reference]`` where ``ideal`` is
    the per-objective minimum of the front; the dominated fraction scales
    the box volume.
    """
    pts, ref = _prepare(front, reference)
    if pts.shape[0] == 0:
        return 0.0
    gen = as_generator(rng)
    lo = pts.min(axis=0)
    box = np.prod(ref - lo)
    if box <= 0:
        return 0.0
    samples = gen.uniform(lo, ref, size=(int(n_samples), ref.size))
    # A sample is dominated if some front point is <= it in every objective.
    dominated = np.zeros(samples.shape[0], dtype=bool)
    for p in pts:
        dominated |= np.all(p[None, :] <= samples, axis=1)
        if dominated.all():
            break
    return float(box * dominated.mean())


def hypervolume_inclusion_exclusion(
    front: np.ndarray, reference: np.ndarray
) -> float:
    """Exact hypervolume by inclusion–exclusion (exponential; tests only)."""
    pts, ref = _prepare(front, reference)
    n = pts.shape[0]
    if n == 0:
        return 0.0
    if n > 16:
        raise ValueError("inclusion-exclusion limited to 16 points")
    total = 0.0
    for k in range(1, n + 1):
        for subset in combinations(range(n), k):
            corner = np.max(pts[list(subset)], axis=0)
            vol = float(np.prod(np.maximum(ref - corner, 0.0)))
            total += vol if k % 2 == 1 else -vol
    return total


def hypervolume(
    front: np.ndarray,
    reference: np.ndarray,
    n_samples: int = 100_000,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Dispatch on dimensionality: exact for m <= 3, Monte-Carlo beyond."""
    ref = np.asarray(reference, dtype=float).ravel()
    if ref.size == 1:
        pts, _ = _prepare(front, ref)
        return float(ref[0] - pts.min()) if pts.size else 0.0
    if ref.size == 2:
        return hypervolume_2d(front, ref)
    if ref.size == 3:
        return hypervolume_3d(front, ref)
    return hypervolume_monte_carlo(front, ref, n_samples=n_samples, rng=rng)
