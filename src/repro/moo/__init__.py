"""Multi-objective optimisation framework (the repo's jMetal substitute).

Layers:

* representation — :class:`FloatSolution`, :class:`Problem`;
* comparison — constraint-aware Pareto dominance, fast non-dominated
  sorting, crowding distance;
* variation — SBX, polynomial mutation, BLX-α, DE/rand/1/bin;
* archives — unbounded, crowding-bounded, and the Adaptive Grid Archive
  (PAES) used by AEDB-MLS;
* algorithms — NSGA-II, CellDE, MOCell, PAES, SPEA2, random-search
  baseline;
* indicators — hypervolume, IGD, (generalised) spread, additive epsilon,
  plus the normalisation the paper applies before computing them;
* problems — ZDT/DTLZ/classic validation suite with analytic fronts.
"""

from repro.moo.algorithms import (
    AlgorithmResult,
    CellDE,
    EvolutionaryAlgorithm,
    MOCell,
    NSGAII,
    PAES,
    RandomSearch,
    SPEA2,
)
from repro.moo.archive import (
    AdaptiveGridArchive,
    CrowdingDistanceArchive,
    EpsilonArchive,
    UnboundedArchive,
)
from repro.moo.density import assign_crowding_distance, crowding_distance_of
from repro.moo.dominance import compare, dominates, non_dominated, pareto_dominates
from repro.moo.indicators import (
    NormalizationBounds,
    additive_epsilon,
    generalized_spread,
    hypervolume,
    inverted_generational_distance,
    spread,
)
from repro.moo.problem import Problem
from repro.moo.ranking import fast_non_dominated_sort
from repro.moo.reference import merge_fronts, objectives_union, reference_front_aga
from repro.moo.solution import FloatSolution
from repro.moo.tracking import Checkpoint, ConvergenceHistory, TrackedProblem
from repro.moo.variation import (
    BLXAlphaCrossover,
    DifferentialEvolutionCrossover,
    PolynomialMutation,
    SBXCrossover,
    UniformMutation,
)

__all__ = [
    "FloatSolution",
    "Problem",
    "compare",
    "dominates",
    "pareto_dominates",
    "non_dominated",
    "fast_non_dominated_sort",
    "assign_crowding_distance",
    "crowding_distance_of",
    "UnboundedArchive",
    "CrowdingDistanceArchive",
    "AdaptiveGridArchive",
    "EpsilonArchive",
    "SBXCrossover",
    "PolynomialMutation",
    "BLXAlphaCrossover",
    "DifferentialEvolutionCrossover",
    "UniformMutation",
    "EvolutionaryAlgorithm",
    "AlgorithmResult",
    "NSGAII",
    "CellDE",
    "MOCell",
    "PAES",
    "SPEA2",
    "RandomSearch",
    "hypervolume",
    "inverted_generational_distance",
    "spread",
    "generalized_spread",
    "additive_epsilon",
    "NormalizationBounds",
    "merge_fronts",
    "reference_front_aga",
    "objectives_union",
    "TrackedProblem",
    "ConvergenceHistory",
    "Checkpoint",
]
