"""Reference-front construction.

The paper builds two composite fronts from independent runs:

* the **Reference Pareto front** — the AGA-filtered union of the best
  solutions found by the two MOEAs over 30 runs (the comparison target of
  Fig. 6 and of the domination counts);
* the **true-front approximation** — the non-dominated union over *all*
  algorithms, used only to normalise objectives before computing
  indicators.

Both are unions filtered for non-domination; the first is additionally
bounded through an :class:`AdaptiveGridArchive` as the paper specifies
("AGA was used in this case too").
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.moo.archive import AdaptiveGridArchive, UnboundedArchive
from repro.moo.solution import FloatSolution

__all__ = ["merge_fronts", "reference_front_aga", "objectives_union"]


def merge_fronts(
    fronts: Iterable[Sequence[FloatSolution]],
) -> list[FloatSolution]:
    """Non-dominated union of several solution fronts (unbounded)."""
    archive = UnboundedArchive()
    for front in fronts:
        for sol in front:
            archive.add(sol.copy())
    return archive.members


def reference_front_aga(
    fronts: Iterable[Sequence[FloatSolution]],
    capacity: int = 100,
    n_objectives: int | None = None,
    bisections: int = 5,
    rng=None,
) -> list[FloatSolution]:
    """AGA-bounded non-dominated union (the paper's reference front)."""
    fronts = [list(f) for f in fronts]
    if n_objectives is None:
        for front in fronts:
            if front:
                n_objectives = front[0].n_objectives
                break
    if n_objectives is None:
        raise ValueError("cannot infer objective count from empty fronts")
    archive = AdaptiveGridArchive(
        capacity=capacity,
        n_objectives=n_objectives,
        bisections=bisections,
        rng=rng,
    )
    for front in fronts:
        for sol in front:
            archive.add(sol.copy())
    return archive.members


def objectives_union(fronts: Iterable[Sequence[FloatSolution]]) -> np.ndarray:
    """``(n, m)`` objective matrix of the plain union (no filtering)."""
    rows = [s.objectives for front in fronts for s in front]
    if not rows:
        return np.empty((0, 0))
    return np.vstack(rows)
