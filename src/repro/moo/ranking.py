"""Fast non-dominated sorting (Deb et al. 2002, NSGA-II).

Partitions a population into fronts F1, F2, ... such that F1 is the
non-dominated set, F2 is non-dominated once F1 is removed, and so on.
Each solution receives its front index in ``attributes["rank"]`` (0-based).
Constraint-domination is used throughout, so infeasible solutions sort
behind feasible ones automatically.

The pairwise domination relation is computed as one broadcasted NumPy
matrix rather than O(n²) Python-level comparisons — the difference is an
order of magnitude of wall-clock for the population sizes used here (the
HPC guide's "vectorise the hot loop").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.moo.solution import FloatSolution

__all__ = ["fast_non_dominated_sort", "domination_matrix", "rank_of"]


def domination_matrix(
    objectives: np.ndarray, violations: np.ndarray
) -> np.ndarray:
    """Boolean ``(n, n)`` matrix: ``D[i, j]`` iff ``i`` constraint-dominates
    ``j`` (Deb's rules; minimisation)."""
    obj = np.asarray(objectives, dtype=float)
    vio = np.maximum(np.asarray(violations, dtype=float), 0.0)
    if obj.ndim != 2:
        raise ValueError(f"objectives must be (n, m), got {obj.shape}")
    if vio.shape != (obj.shape[0],):
        raise ValueError("violations must be (n,) matching objectives")

    le = np.all(obj[:, None, :] <= obj[None, :, :], axis=2)
    lt = np.any(obj[:, None, :] < obj[None, :, :], axis=2)
    pareto = le & lt

    feas_i = (vio <= 0.0)[:, None]
    feas_j = (vio <= 0.0)[None, :]
    both_feasible = feas_i & feas_j
    both_infeasible = ~feas_i & ~feas_j
    less_violating = vio[:, None] < vio[None, :]

    return np.where(
        both_feasible,
        pareto,
        np.where(both_infeasible, less_violating, feas_i & ~feas_j),
    )


def fast_non_dominated_sort(
    solutions: Sequence[FloatSolution],
) -> list[list[FloatSolution]]:
    """Return the list of fronts; annotate each solution with its rank."""
    n = len(solutions)
    if n == 0:
        return []

    objectives = np.vstack([s.objectives for s in solutions])
    violations = np.array([s.constraint_violation for s in solutions])
    dom = domination_matrix(objectives, violations)

    domination_count = dom.sum(axis=0).astype(int)  # how many dominate j
    result: list[list[FloatSolution]] = []
    assigned = np.zeros(n, dtype=bool)
    rank = 0
    while not assigned.all():
        front_mask = (domination_count == 0) & ~assigned
        if not front_mask.any():  # pragma: no cover - defensive
            raise RuntimeError("cyclic domination relation (bug)")
        front_idx = np.flatnonzero(front_mask)
        members = []
        for i in front_idx:
            solutions[i].attributes["rank"] = rank
            members.append(solutions[i])
        result.append(members)
        assigned[front_idx] = True
        # Remove this front's domination edges.
        domination_count -= dom[front_idx].sum(axis=0).astype(int)
        rank += 1
    return result


def rank_of(solution: FloatSolution) -> int:
    """Front index assigned by the last sort (infinity if never ranked)."""
    return int(solution.attributes.get("rank", 2**31))
