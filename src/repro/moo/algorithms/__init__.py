"""Multi-objective metaheuristics.

* :class:`NSGAII` — Deb et al. 2002, one of the paper's two comparators;
* :class:`CellDE` — Durillo et al. 2008 (cellular GA + differential
  evolution + bounded external archive), the other comparator;
* :class:`MOCell` — Nebro et al. 2007, the cellular GA CellDE derives
  from (SBX/PM variation on the same grid);
* :class:`PAES` — Knowles & Corne 2000, the (1+1) strategy the Adaptive
  Grid Archive comes from;
* :class:`SPEA2` — Zitzler et al. 2001, strength-Pareto fitness with
  nearest-neighbour truncation;
* :class:`RandomSearch` — archive-filtered uniform sampling, the sanity
  baseline used by the extended ablations.

AEDB-MLS itself lives in :mod:`repro.core` (it is the paper's
contribution, not part of the comparator substrate).
"""

from repro.moo.algorithms.base import AlgorithmResult, EvolutionaryAlgorithm
from repro.moo.algorithms.cellde import CellDE
from repro.moo.algorithms.mocell import MOCell
from repro.moo.algorithms.nsgaii import NSGAII
from repro.moo.algorithms.paes import PAES
from repro.moo.algorithms.random_search import RandomSearch
from repro.moo.algorithms.spea2 import SPEA2

__all__ = [
    "AlgorithmResult",
    "EvolutionaryAlgorithm",
    "NSGAII",
    "CellDE",
    "MOCell",
    "PAES",
    "SPEA2",
    "RandomSearch",
]
