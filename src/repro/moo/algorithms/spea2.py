"""SPEA2 (Zitzler, Laumanns, Thiele 2001).

The Strength Pareto Evolutionary Algorithm 2 — the third classic MOEA of
the early-2000s toolbox next to NSGA-II and PAES, added here as an extra
reference point for the Table IV-style comparisons.

Fitness assignment over the union of population and archive:

* strength ``S(i)`` = number of solutions ``i`` dominates;
* raw fitness ``R(i)`` = sum of the strengths of ``i``'s dominators
  (0 for non-dominated solutions);
* density ``D(i) = 1 / (sigma_k + 2)`` with ``sigma_k`` the distance to
  the k-th nearest neighbour in objective space, ``k = sqrt(N + Nbar)``;
* ``F(i) = R(i) + D(i)`` — smaller is better, ``F < 1`` iff non-dominated.

Environmental selection copies all non-dominated solutions into the next
archive, truncates overflow by iteratively removing the member with the
lexicographically smallest nearest-neighbour distance vector, and fills
underflow with the best dominated solutions.  Dominance uses the
framework's constraint-domination, consistent with the other optimisers.
"""

from __future__ import annotations

import numpy as np

from repro.moo.algorithms.base import EvolutionaryAlgorithm
from repro.moo.dominance import compare, non_dominated
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution
from repro.moo.variation import PolynomialMutation, SBXCrossover

__all__ = ["SPEA2"]


class SPEA2(EvolutionaryAlgorithm):
    """Strength-Pareto EA with nearest-neighbour density and truncation."""

    name = "SPEA2"

    def __init__(
        self,
        problem: Problem,
        max_evaluations: int,
        population_size: int = 100,
        archive_size: int | None = None,
        crossover: SBXCrossover | None = None,
        mutation: PolynomialMutation | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(problem, max_evaluations, rng)
        if population_size < 4 or population_size % 2:
            raise ValueError(
                f"population_size must be an even number >= 4, got {population_size}"
            )
        self.population_size = int(population_size)
        self.archive_size = int(archive_size or population_size)
        if self.archive_size < 2:
            raise ValueError(f"archive_size must be >= 2, got {self.archive_size}")
        self.crossover = crossover or SBXCrossover(probability=0.9, eta=20.0)
        self.mutation = mutation or PolynomialMutation(eta=20.0)
        self.population: list[FloatSolution] = []
        self.archive: list[FloatSolution] = []
        self.generations = 0

    # ------------------------------------------------------------------ #
    # fitness assignment                                                 #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _domination_matrix(union: list[FloatSolution]) -> np.ndarray:
        """``d[i, j]`` True iff ``union[i]`` constraint-dominates ``union[j]``."""
        n = len(union)
        d = np.zeros((n, n), dtype=bool)
        for i in range(n):
            for j in range(i + 1, n):
                c = compare(union[i], union[j])
                if c == -1:
                    d[i, j] = True
                elif c == 1:
                    d[j, i] = True
        return d

    @staticmethod
    def _distance_matrix(union: list[FloatSolution]) -> np.ndarray:
        objs = np.vstack([s.objectives for s in union])
        diff = objs[:, None, :] - objs[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        np.fill_diagonal(dist, np.inf)
        return dist

    def _assign_fitness(self, union: list[FloatSolution]) -> np.ndarray:
        """SPEA2 fitness ``F = R + D`` for every member of the union."""
        n = len(union)
        dominates = self._domination_matrix(union)
        strength = dominates.sum(axis=1).astype(float)  # S(i)
        raw = np.array(
            [strength[dominates[:, j]].sum() for j in range(n)]
        )  # R(j): strengths of j's dominators
        dist = self._distance_matrix(union)
        k = max(1, int(np.sqrt(n)))
        # Distance to the k-th nearest neighbour (k-th smallest per row).
        sigma_k = np.sort(dist, axis=1)[:, min(k, n - 1) - 1] if n > 1 else np.ones(n)
        density = 1.0 / (sigma_k + 2.0)
        fitness = raw + density
        for sol, f in zip(union, fitness):
            sol.attributes["spea2_fitness"] = float(f)
        return fitness

    # ------------------------------------------------------------------ #
    # environmental selection                                            #
    # ------------------------------------------------------------------ #
    def _environmental_selection(
        self, union: list[FloatSolution], fitness: np.ndarray
    ) -> list[FloatSolution]:
        non_dom_idx = np.flatnonzero(fitness < 1.0)
        if non_dom_idx.size <= self.archive_size:
            # Underflow: top up with the best dominated solutions.
            order = np.argsort(fitness, kind="stable")
            chosen = list(order[: self.archive_size])
            return [union[int(i)] for i in chosen]
        # Overflow: iterative nearest-neighbour truncation.
        keep = [int(i) for i in non_dom_idx]
        dist = self._distance_matrix([union[i] for i in keep])
        while len(keep) > self.archive_size:
            m = len(keep)
            # Lexicographic comparison of sorted distance rows: the member
            # with the smallest nearest neighbour (ties broken by the next
            # nearest, ...) is removed.
            sorted_rows = np.sort(dist[:m, :m], axis=1)
            victim = 0
            for i in range(1, m):
                for a, b in zip(sorted_rows[i], sorted_rows[victim]):
                    if a < b:
                        victim = i
                        break
                    if a > b:
                        break
            keep.pop(victim)
            dist = np.delete(np.delete(dist, victim, axis=0), victim, axis=1)
        return [union[i] for i in keep]

    # ------------------------------------------------------------------ #
    # generational loop                                                  #
    # ------------------------------------------------------------------ #
    def _initialise(self) -> None:
        self.population = [
            self.problem.create_solution(self.rng)
            for _ in range(self.population_size)
        ]
        self.evaluate_all(self.population)
        self.archive = []
        self._select_archive()

    def _select_archive(self) -> None:
        union = self.population + self.archive
        fitness = self._assign_fitness(union)
        self.archive = [s.copy() for s in self._environmental_selection(union, fitness)]

    def _mating_tournament(self) -> FloatSolution:
        pool = self.archive if self.archive else self.population
        a = pool[int(self.rng.integers(len(pool)))]
        b = pool[int(self.rng.integers(len(pool)))]
        fa = a.attributes.get("spea2_fitness", np.inf)
        fb = b.attributes.get("spea2_fitness", np.inf)
        return a if fa <= fb else b

    def _step(self) -> None:
        offspring: list[FloatSolution] = []
        n_children = min(self.population_size, self.budget_left)
        while len(offspring) < n_children:
            pa = self._mating_tournament()
            pb = self._mating_tournament()
            ca, cb = self.crossover.execute(pa, pb, self.problem, self.rng)
            for child in (ca, cb):
                if len(offspring) >= n_children:
                    break
                offspring.append(self.mutation.execute(child, self.problem, self.rng))
        self.evaluate_all(offspring)
        self.population = offspring
        self._select_archive()
        self.generations += 1

    # ------------------------------------------------------------------ #
    def _current_front(self) -> list[FloatSolution]:
        return non_dominated(self.archive)

    def _run_info(self) -> dict:
        return {
            "generations": self.generations,
            "population_size": self.population_size,
            "archive_size": len(self.archive),
        }
