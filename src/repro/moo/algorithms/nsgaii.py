"""NSGA-II (Deb, Pratap, Agarwal, Meyarivan 2002).

The elitist generational loop with fast non-dominated sorting, crowding
distance, crowded binary tournament, SBX crossover and polynomial
mutation — the canonical parameterisation the paper's comparator [14]
uses (population 100, pc = 0.9, eta_c = 20, pm = 1/n, eta_m = 20).
Constraint handling is Deb's constraint-domination (built into the
framework's comparator).
"""

from __future__ import annotations

import numpy as np

from repro.moo.algorithms.base import EvolutionaryAlgorithm
from repro.moo.density import assign_crowding_distance, crowding_distance_of
from repro.moo.problem import Problem
from repro.moo.ranking import fast_non_dominated_sort
from repro.moo.selection import crowded_binary_tournament
from repro.moo.solution import FloatSolution
from repro.moo.variation import PolynomialMutation, SBXCrossover

__all__ = ["NSGAII"]


class NSGAII(EvolutionaryAlgorithm):
    """Elitist non-dominated sorting genetic algorithm."""

    name = "NSGAII"

    def __init__(
        self,
        problem: Problem,
        max_evaluations: int,
        population_size: int = 100,
        crossover: SBXCrossover | None = None,
        mutation: PolynomialMutation | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(problem, max_evaluations, rng)
        if population_size < 4 or population_size % 2:
            raise ValueError(
                f"population_size must be an even number >= 4, got {population_size}"
            )
        self.population_size = int(population_size)
        self.crossover = crossover or SBXCrossover(probability=0.9, eta=20.0)
        self.mutation = mutation or PolynomialMutation(eta=20.0)
        self.population: list[FloatSolution] = []
        self.generations = 0

    # ------------------------------------------------------------------ #
    def _initialise(self) -> None:
        self.population = [
            self.problem.create_solution(self.rng)
            for _ in range(self.population_size)
        ]
        self.evaluate_all(self.population)
        fronts = fast_non_dominated_sort(self.population)
        for front in fronts:
            assign_crowding_distance(front)

    def _step(self) -> None:
        offspring: list[FloatSolution] = []
        n_children = min(self.population_size, self.budget_left)
        while len(offspring) < n_children:
            pa = crowded_binary_tournament(self.population, self.rng)
            pb = crowded_binary_tournament(self.population, self.rng)
            ca, cb = self.crossover.execute(pa, pb, self.problem, self.rng)
            for child in (ca, cb):
                if len(offspring) >= n_children:
                    break
                offspring.append(self.mutation.execute(child, self.problem, self.rng))
        self.evaluate_all(offspring)

        merged = self.population + offspring
        self.population = self._environmental_selection(merged)
        self.generations += 1

    def _environmental_selection(
        self, merged: list[FloatSolution]
    ) -> list[FloatSolution]:
        """Rank + crowding truncation of the merged population."""
        fronts = fast_non_dominated_sort(merged)
        next_population: list[FloatSolution] = []
        for front in fronts:
            assign_crowding_distance(front)
            if len(next_population) + len(front) <= self.population_size:
                next_population.extend(front)
            else:
                remaining = self.population_size - len(next_population)
                ordered = sorted(
                    front, key=crowding_distance_of, reverse=True
                )
                next_population.extend(ordered[:remaining])
                break
        return next_population

    # ------------------------------------------------------------------ #
    def _current_front(self) -> list[FloatSolution]:
        return self.population

    def _run_info(self) -> dict:
        return {"generations": self.generations, "population_size": self.population_size}
