"""MOCell (Nebro, Durillo, Luna, Dorronsoro, Alba 2007).

The multi-objective *cellular* genetic algorithm CellDE hybridises: the
same toroidal grid, neighbourhood selection, external crowding archive
and archive feedback as :class:`repro.moo.algorithms.cellde.CellDE`, but
with the classic SBX + polynomial-mutation variation instead of
differential evolution.  The paper's future work proposes parallelising
exactly this cellular family with AEDB-MLS embedded; having both cellular
variants lets the ablation benches separate "cellular topology" from "DE
variation".
"""

from __future__ import annotations

import numpy as np

from repro.moo.algorithms.base import EvolutionaryAlgorithm
from repro.moo.archive import CrowdingDistanceArchive
from repro.moo.density import assign_crowding_distance, crowding_distance_of
from repro.moo.dominance import compare
from repro.moo.problem import Problem
from repro.moo.ranking import fast_non_dominated_sort
from repro.moo.selection import binary_tournament
from repro.moo.solution import FloatSolution
from repro.moo.variation import PolynomialMutation, SBXCrossover

__all__ = ["MOCell"]


class MOCell(EvolutionaryAlgorithm):
    """Cellular GA with SBX/PM variation and a crowding archive."""

    name = "MOCell"

    def __init__(
        self,
        problem: Problem,
        max_evaluations: int,
        grid_side: int = 10,
        crossover: SBXCrossover | None = None,
        mutation: PolynomialMutation | None = None,
        archive_capacity: int | None = None,
        feedback: int | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(problem, max_evaluations, rng)
        if grid_side < 2:
            raise ValueError(f"grid_side must be >= 2, got {grid_side}")
        self.grid_side = int(grid_side)
        self.population_size = self.grid_side**2
        self.crossover = crossover or SBXCrossover(probability=0.9, eta=20.0)
        self.mutation = mutation or PolynomialMutation(eta=20.0)
        self.archive = CrowdingDistanceArchive(
            archive_capacity or self.population_size
        )
        #: Cells refreshed from the archive per generation (as in CellDE).
        self.feedback = (
            feedback if feedback is not None else max(self.population_size // 5, 1)
        )
        self.population: list[FloatSolution] = []
        self.generations = 0
        self._neighbor_idx = self._build_neighborhoods()

    # ------------------------------------------------------------------ #
    def _build_neighborhoods(self) -> list[list[int]]:
        """C9 (Moore) neighbourhood indices on the torus, self excluded."""
        side = self.grid_side
        neighborhoods: list[list[int]] = []
        for cell in range(side * side):
            r, c = divmod(cell, side)
            ids = []
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    if dr == 0 and dc == 0:
                        continue
                    ids.append(((r + dr) % side) * side + ((c + dc) % side))
            neighborhoods.append(ids)
        return neighborhoods

    # ------------------------------------------------------------------ #
    def _initialise(self) -> None:
        self.population = [
            self.problem.create_solution(self.rng)
            for _ in range(self.population_size)
        ]
        self.evaluate_all(self.population)
        for sol in self.population:
            self.archive.add(sol.copy())

    def _step(self) -> None:
        budget = min(self.population_size, self.budget_left)
        order = self.rng.permutation(self.population_size)[:budget]
        for cell in order:
            self._breed_cell(int(cell))
        self._archive_feedback()
        self.generations += 1

    def _breed_cell(self, cell: int) -> None:
        current = self.population[cell]
        hood = [self.population[i] for i in self._neighbor_idx[cell]]
        # Two neighbourhood parents; the second tournament includes the
        # current individual (the MOCell "one from the cell" convention).
        pa = binary_tournament(hood, self.rng)
        pb = binary_tournament(hood + [current], self.rng)
        ca, _ = self.crossover.execute(pa, pb, self.problem, self.rng)
        child = self.mutation.execute(ca, self.problem, self.rng)
        self.evaluate(child)
        self._replace(cell, child)
        self.archive.add(child.copy())

    def _replace(self, cell: int, child: FloatSolution) -> None:
        current = self.population[cell]
        c = compare(child, current)
        if c == -1:
            self.population[cell] = child
            return
        if c == 1:
            return
        # Mutually non-dominated: displace the worst neighbour by
        # (rank, crowding) on the local view — same rule as CellDE.
        view_idx = [cell, *self._neighbor_idx[cell]]
        view = [self.population[i] for i in view_idx] + [child]
        fronts = fast_non_dominated_sort(view)
        for front in fronts:
            assign_crowding_distance(front)
        worst_local = max(
            range(len(view_idx)),
            key=lambda k: (
                view[k].attributes.get("rank", 0),
                -crowding_distance_of(view[k]),
            ),
        )
        child_key = (
            child.attributes.get("rank", 0),
            -crowding_distance_of(child),
        )
        worst_key = (
            view[worst_local].attributes.get("rank", 0),
            -crowding_distance_of(view[worst_local]),
        )
        if child_key < worst_key:
            self.population[view_idx[worst_local]] = child

    def _archive_feedback(self) -> None:
        if not len(self.archive):
            return
        members = self.archive.members
        for _ in range(self.feedback):
            cell = int(self.rng.integers(self.population_size))
            pick = members[int(self.rng.integers(len(members)))]
            self.population[cell] = pick.copy()

    # ------------------------------------------------------------------ #
    def _current_front(self) -> list[FloatSolution]:
        return self.archive.members

    def _run_info(self) -> dict:
        return {
            "generations": self.generations,
            "population_size": self.population_size,
            "archive_size": len(self.archive),
            "feedback": self.feedback,
        }
