"""Common machinery for the population-based optimisers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.moo.dominance import non_dominated
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution
from repro.utils.rng import as_generator

__all__ = ["AlgorithmResult", "EvolutionaryAlgorithm"]


@dataclass
class AlgorithmResult:
    """Outcome of one optimiser run."""

    #: Final non-dominated solution set (the front approximation).
    front: list[FloatSolution]
    #: Objective evaluations actually spent.
    evaluations: int
    #: Wall-clock runtime, seconds.
    runtime_s: float
    #: Algorithm label (for reports).
    algorithm: str
    #: Extra per-run information (engine stats, generation counts, ...).
    info: dict = field(default_factory=dict)

    def objectives_matrix(self) -> np.ndarray:
        """``(n, m)`` matrix of front objectives."""
        if not self.front:
            return np.empty((0, 0))
        return np.vstack([s.objectives for s in self.front])

    def feasible_front(self) -> list[FloatSolution]:
        """Front members satisfying all constraints."""
        return [s for s in self.front if s.is_feasible]


class EvolutionaryAlgorithm:
    """Base class: evaluation budget accounting and the run skeleton.

    Subclasses implement :meth:`_initialise` and :meth:`_step`; the base
    drives them until the evaluation budget is exhausted and assembles an
    :class:`AlgorithmResult` from :meth:`_current_front`.
    """

    name = "base"

    def __init__(
        self,
        problem: Problem,
        max_evaluations: int,
        rng: np.random.Generator | int | None = None,
    ):
        if max_evaluations <= 0:
            raise ValueError(
                f"max_evaluations must be positive, got {max_evaluations}"
            )
        self.problem = problem
        self.max_evaluations = int(max_evaluations)
        self.rng = as_generator(rng)
        self.evaluations = 0

    # ------------------------------------------------------------------ #
    def evaluate(self, solution: FloatSolution) -> FloatSolution:
        """Evaluate through the problem, counting against the budget."""
        self.problem.evaluate(solution)
        self.evaluations += 1
        return solution

    def evaluate_all(self, solutions) -> list[FloatSolution]:
        """Evaluate a batch, counting each against the budget."""
        for s in solutions:
            self.evaluate(s)
        return list(solutions)

    @property
    def budget_left(self) -> int:
        """Evaluations remaining before termination."""
        return max(self.max_evaluations - self.evaluations, 0)

    # ------------------------------------------------------------------ #
    def run(self) -> AlgorithmResult:
        """Execute until the evaluation budget is exhausted."""
        # repro-lint: ok D101 - observational runtime, reported only
        start = time.perf_counter()
        self._initialise()
        while self.budget_left > 0:
            self._step()
        runtime = time.perf_counter() - start  # repro-lint: ok D101
        front = non_dominated(self._current_front())
        return AlgorithmResult(
            front=[s.copy() for s in front],
            evaluations=self.evaluations,
            runtime_s=runtime,
            algorithm=self.name,
            info=self._run_info(),
        )

    # ------------------------------------------------------------------ #
    def _initialise(self) -> None:
        raise NotImplementedError

    def _step(self) -> None:
        raise NotImplementedError

    def _current_front(self) -> list[FloatSolution]:
        raise NotImplementedError

    def _run_info(self) -> dict:
        return {}
