"""(1+1)-PAES (Knowles & Corne 2000).

The Pareto Archived Evolution Strategy — the algorithm the Adaptive Grid
Archive was invented for (the paper cites it as reference [10] and adopts
AGA for AEDB-MLS, Sect. IV-A).  Included both as a historical baseline
and as a single-trajectory contrast to the multi-start AEDB-MLS: PAES is
what the MLS degenerates to with one population, one thread and no
directional operators.

The canonical (1+1) loop:

1. mutate the current solution (polynomial mutation);
2. if the current solution dominates the mutant, discard it;
3. if the mutant dominates the current solution, accept and archive it;
4. otherwise offer the mutant to the archive; if archived, the mutant
   becomes current only when its grid cell is less crowded than the
   current solution's (the AGA density comparison).
"""

from __future__ import annotations

import numpy as np

from repro.moo.algorithms.base import EvolutionaryAlgorithm
from repro.moo.archive import AdaptiveGridArchive
from repro.moo.dominance import compare
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution
from repro.moo.variation import PolynomialMutation

__all__ = ["PAES"]


class PAES(EvolutionaryAlgorithm):
    """(1+1) evolution strategy with adaptive-grid archiving."""

    name = "PAES"

    def __init__(
        self,
        problem: Problem,
        max_evaluations: int,
        archive_capacity: int = 100,
        bisections: int = 5,
        mutation: PolynomialMutation | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(problem, max_evaluations, rng)
        self.mutation = mutation or PolynomialMutation(eta=20.0)
        self.archive = AdaptiveGridArchive(
            capacity=archive_capacity,
            n_objectives=problem.n_objectives,
            bisections=bisections,
            rng=self.rng,
        )
        self.current: FloatSolution | None = None
        self.iterations = 0

    # ------------------------------------------------------------------ #
    def _initialise(self) -> None:
        self.current = self.evaluate(self.problem.create_solution(self.rng))
        self.archive.add(self.current.copy())

    def _step(self) -> None:
        assert self.current is not None
        mutant = self.mutation.execute(self.current, self.problem, self.rng)
        self.evaluate(mutant)
        self.iterations += 1

        verdict = compare(self.current, mutant)
        if verdict == -1:  # current dominates the mutant
            return
        if verdict == 1:  # mutant dominates current
            self.archive.add(mutant.copy())
            self.current = mutant
            return

        # Mutually non-dominated: the archive is the referee.
        if not self.archive.add(mutant.copy()):
            return  # dominated by (or duplicating) the archive
        mutant_crowd = self.archive.cell_population(mutant.objectives)
        current_crowd = self.archive.cell_population(self.current.objectives)
        if mutant_crowd < current_crowd:
            self.current = mutant

    # ------------------------------------------------------------------ #
    def _current_front(self) -> list[FloatSolution]:
        return self.archive.members

    def _run_info(self) -> dict:
        return {
            "iterations": self.iterations,
            "archive_size": len(self.archive),
        }
