"""Archive-filtered random search.

Uniform sampling of the decision box with a bounded non-dominated archive.
Not part of the paper's comparison; serves as the sanity baseline for the
extended ablations (any competent metaheuristic must beat it at equal
budget) and as a cheap front generator in tests.
"""

from __future__ import annotations

import numpy as np

from repro.moo.algorithms.base import EvolutionaryAlgorithm
from repro.moo.archive import CrowdingDistanceArchive
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution

__all__ = ["RandomSearch"]


class RandomSearch(EvolutionaryAlgorithm):
    """Uniform sampling + non-dominated archive."""

    name = "RandomSearch"

    def __init__(
        self,
        problem: Problem,
        max_evaluations: int,
        archive_capacity: int = 100,
        batch_size: int = 32,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(problem, max_evaluations, rng)
        self.archive = CrowdingDistanceArchive(archive_capacity)
        self.batch_size = max(int(batch_size), 1)

    def _initialise(self) -> None:
        return None

    def _step(self) -> None:
        n = min(self.batch_size, self.budget_left)
        for _ in range(n):
            sol = self.problem.create_solution(self.rng)
            self.evaluate(sol)
            self.archive.add(sol)

    def _current_front(self) -> list[FloatSolution]:
        return self.archive.members

    def _run_info(self) -> dict:
        return {"archive_size": len(self.archive)}
