"""CellDE (Durillo, Nebro, Luna, Alba 2008).

The hybrid cellular genetic algorithm the paper compares against: a
toroidal grid of individuals, each bred with differential evolution using
parents tournament-selected from its neighbourhood, a bounded external
crowding archive, and archive feedback into the grid — "solving
three-objective optimisation problems using a new hybrid cellular genetic
algorithm" (reference [4] of the paper).

Implementation notes (canonical choices recorded in DESIGN.md §7):

* grid: square torus (default 10 x 10 = population 100);
* neighbourhood: C9 (Moore — the 8 surrounding cells plus self);
* variation: DE/rand/1/bin with F = 0.5, CR = 0.9, base/difference
  vectors tournament-selected from the neighbourhood;
* replacement: the trial replaces the current cell if it
  constraint-dominates it; if mutually non-dominated it replaces the
  *worst* neighbour by (rank, crowding) within the neighbourhood view;
* archive: :class:`CrowdingDistanceArchive` (capacity = population);
* feedback: after each generation a fixed number of random cells are
  overwritten with random archive members.
"""

from __future__ import annotations

import numpy as np

from repro.moo.algorithms.base import EvolutionaryAlgorithm
from repro.moo.archive import CrowdingDistanceArchive
from repro.moo.density import assign_crowding_distance, crowding_distance_of
from repro.moo.dominance import compare
from repro.moo.problem import Problem
from repro.moo.ranking import fast_non_dominated_sort
from repro.moo.selection import binary_tournament
from repro.moo.solution import FloatSolution
from repro.moo.variation import DifferentialEvolutionCrossover

__all__ = ["CellDE"]


class CellDE(EvolutionaryAlgorithm):
    """Cellular GA with DE variation and a crowding archive."""

    name = "CellDE"

    def __init__(
        self,
        problem: Problem,
        max_evaluations: int,
        grid_side: int = 10,
        de_f: float = 0.5,
        de_cr: float = 0.9,
        archive_capacity: int | None = None,
        feedback: int | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(problem, max_evaluations, rng)
        if grid_side < 2:
            raise ValueError(f"grid_side must be >= 2, got {grid_side}")
        self.grid_side = int(grid_side)
        self.population_size = self.grid_side**2
        self.variation = DifferentialEvolutionCrossover(cr=de_cr, f=de_f)
        self.archive = CrowdingDistanceArchive(
            archive_capacity or self.population_size
        )
        #: Cells refreshed from the archive per generation (jMetal uses 20
        #: for a 100-cell grid).
        self.feedback = (
            feedback if feedback is not None else max(self.population_size // 5, 1)
        )
        self.population: list[FloatSolution] = []
        self.generations = 0
        self._neighbor_idx = self._build_neighborhoods()

    # ------------------------------------------------------------------ #
    def _build_neighborhoods(self) -> list[list[int]]:
        """C9 (Moore) neighbourhood indices on the torus, self excluded."""
        side = self.grid_side
        neighborhoods: list[list[int]] = []
        for cell in range(side * side):
            r, c = divmod(cell, side)
            ids = []
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    if dr == 0 and dc == 0:
                        continue
                    ids.append(((r + dr) % side) * side + ((c + dc) % side))
            neighborhoods.append(ids)
        return neighborhoods

    # ------------------------------------------------------------------ #
    def _initialise(self) -> None:
        self.population = [
            self.problem.create_solution(self.rng)
            for _ in range(self.population_size)
        ]
        self.evaluate_all(self.population)
        for sol in self.population:
            self.archive.add(sol.copy())

    def _step(self) -> None:
        side_budget = min(self.population_size, self.budget_left)
        order = self.rng.permutation(self.population_size)[:side_budget]
        for cell in order:
            self._breed_cell(int(cell))
        self._archive_feedback()
        self.generations += 1

    def _breed_cell(self, cell: int) -> None:
        current = self.population[cell]
        hood = [self.population[i] for i in self._neighbor_idx[cell]]
        base = binary_tournament(hood, self.rng)
        # Difference pair: two distinct neighbourhood members.
        picks = self.rng.choice(len(hood), size=2, replace=False)
        diff_a, diff_b = hood[int(picks[0])], hood[int(picks[1])]
        trial = self.variation.execute(
            current, base, diff_a, diff_b, self.problem, self.rng
        )
        self.evaluate(trial)
        self._replace(cell, trial)
        self.archive.add(trial.copy())

    def _replace(self, cell: int, trial: FloatSolution) -> None:
        current = self.population[cell]
        c = compare(trial, current)
        if c == -1:
            self.population[cell] = trial
            return
        if c == 1:
            return
        # Mutually non-dominated: the trial displaces the worst neighbour
        # by (rank, crowding) computed on the local view.
        view_idx = [cell, *self._neighbor_idx[cell]]
        view = [self.population[i] for i in view_idx] + [trial]
        fronts = fast_non_dominated_sort(view)
        for front in fronts:
            assign_crowding_distance(front)
        worst_local = max(
            range(len(view_idx)),
            key=lambda k: (
                view[k].attributes.get("rank", 0),
                -crowding_distance_of(view[k]),
            ),
        )
        trial_key = (
            trial.attributes.get("rank", 0),
            -crowding_distance_of(trial),
        )
        worst_key = (
            view[worst_local].attributes.get("rank", 0),
            -crowding_distance_of(view[worst_local]),
        )
        if trial_key < worst_key:
            self.population[view_idx[worst_local]] = trial

    def _archive_feedback(self) -> None:
        if not len(self.archive):
            return
        members = self.archive.members
        for _ in range(self.feedback):
            cell = int(self.rng.integers(self.population_size))
            pick = members[int(self.rng.integers(len(members)))]
            self.population[cell] = pick.copy()

    # ------------------------------------------------------------------ #
    def _current_front(self) -> list[FloatSolution]:
        return self.archive.members

    def _run_info(self) -> dict:
        return {
            "generations": self.generations,
            "population_size": self.population_size,
            "archive_size": len(self.archive),
            "feedback": self.feedback,
        }
