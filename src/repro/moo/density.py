"""Crowding-distance density estimator (Deb et al. 2002).

Assigns each solution of a front the sum over objectives of the
normalised gap between its neighbours; boundary solutions get infinity.
Stored in ``attributes["crowding_distance"]`` and consumed by NSGA-II's
truncation, the crowded tournament, and the crowding archive.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.moo.solution import FloatSolution

__all__ = ["assign_crowding_distance", "crowding_distance_of", "crowded_compare"]

_KEY = "crowding_distance"


def assign_crowding_distance(front: Sequence[FloatSolution]) -> None:
    """Annotate every member of ``front`` with its crowding distance."""
    n = len(front)
    if n == 0:
        return
    if n <= 2:
        for sol in front:
            sol.attributes[_KEY] = np.inf
        return

    objectives = np.vstack([s.objectives for s in front])
    distance = np.zeros(n)
    for m in range(objectives.shape[1]):
        order = np.argsort(objectives[:, m], kind="stable")
        col = objectives[order, m]
        span = col[-1] - col[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue  # degenerate objective: interior gaps contribute 0
        gaps = (col[2:] - col[:-2]) / span
        interior = order[1:-1]
        finite = ~np.isinf(distance[interior])
        distance[interior[finite]] += gaps[finite]

    for sol, d in zip(front, distance):
        sol.attributes[_KEY] = float(d)


def crowding_distance_of(solution: FloatSolution) -> float:
    """Crowding distance from the last assignment (-inf if never set)."""
    return float(solution.attributes.get(_KEY, -np.inf))


def crowded_compare(a: FloatSolution, b: FloatSolution) -> int:
    """NSGA-II's crowded-comparison operator on (rank, crowding).

    Returns -1 if ``a`` is preferred, 1 if ``b``, 0 on a tie.  Both
    solutions must have been ranked (see :mod:`repro.moo.ranking`).
    """
    ra = a.attributes.get("rank", 2**31)
    rb = b.attributes.get("rank", 2**31)
    if ra != rb:
        return -1 if ra < rb else 1
    da, db = crowding_distance_of(a), crowding_distance_of(b)
    if da > db:
        return -1
    if db > da:
        return 1
    return 0
