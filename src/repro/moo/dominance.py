"""Pareto dominance with Deb's constraint-domination rules.

The comparison used throughout the framework (NSGA-II, CellDE, archives,
AEDB-MLS feasibility filter):

1. a feasible solution dominates any infeasible one;
2. between two infeasible solutions, the smaller violation dominates;
3. between two feasible solutions, standard Pareto dominance on the
   (minimised) objective vectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.moo.solution import FloatSolution

__all__ = [
    "pareto_dominates",
    "compare",
    "dominates",
    "non_dominated",
    "non_dominated_objectives_mask",
]


def pareto_dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Unconstrained Pareto dominance on raw objective vectors
    (minimisation): ``a`` is no worse everywhere and better somewhere."""
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    return bool(np.all(a_arr <= b_arr) and np.any(a_arr < b_arr))


def compare(a: FloatSolution, b: FloatSolution) -> int:
    """Constraint-aware three-way comparison.

    Returns ``-1`` if ``a`` dominates, ``1`` if ``b`` dominates, ``0`` if
    they are mutually non-dominated (or identical).
    """
    va, vb = a.constraint_violation, b.constraint_violation
    if va <= 0.0 and vb > 0.0:
        return -1
    if vb <= 0.0 and va > 0.0:
        return 1
    if va > 0.0 and vb > 0.0:
        if va < vb:
            return -1
        if vb < va:
            return 1
        return 0
    if pareto_dominates(a.objectives, b.objectives):
        return -1
    if pareto_dominates(b.objectives, a.objectives):
        return 1
    return 0


def dominates(a: FloatSolution, b: FloatSolution) -> bool:
    """True iff ``a`` constraint-dominates ``b``."""
    return compare(a, b) == -1


def non_dominated(solutions: Sequence[FloatSolution]) -> list[FloatSolution]:
    """The constraint-aware non-dominated subset (order preserving).

    Duplicate objective vectors are kept (the archives decide about
    duplicates; filtering here would bias diversity measures).  Uses the
    vectorised domination matrix from :mod:`repro.moo.ranking`.
    """
    if not solutions:
        return []
    from repro.moo.ranking import domination_matrix  # local: avoid cycle

    objectives = np.vstack([s.objectives for s in solutions])
    violations = np.array([s.constraint_violation for s in solutions])
    dom = domination_matrix(objectives, violations)
    keep = ~dom.any(axis=0)
    return [solutions[i] for i in np.flatnonzero(keep)]


def non_dominated_objectives_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of Pareto-optimal rows of an ``(n, m)`` objective
    matrix (unconstrained, minimisation).  Vectorised pairwise check —
    O(n²m) but NumPy-fast for the n encountered here."""
    obj = np.asarray(objectives, dtype=float)
    if obj.ndim != 2:
        raise ValueError(f"expected (n, m) matrix, got shape {obj.shape}")
    n = obj.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        # rows that i dominates strictly
        le = np.all(obj[i] <= obj, axis=1)
        lt = np.any(obj[i] < obj, axis=1)
        dominated_by_i = le & lt
        dominated_by_i[i] = False
        mask &= ~dominated_by_i
    return mask
