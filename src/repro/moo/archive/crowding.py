"""Bounded archive with crowding-distance truncation.

jMetal's ``CrowdingDistanceArchive``: when the archive exceeds its
capacity after an accepted insertion, the member with the smallest
crowding distance (the most crowded one) is evicted.  Used as the external
archive of CellDE.
"""

from __future__ import annotations

import numpy as np

from repro.moo.archive.nondominated import UnboundedArchive
from repro.moo.density import assign_crowding_distance, crowding_distance_of
from repro.moo.solution import FloatSolution

__all__ = ["CrowdingDistanceArchive"]


class CrowdingDistanceArchive(UnboundedArchive):
    """Non-dominated archive truncated by crowding distance."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        super().__init__()
        self.capacity = int(capacity)

    def _on_accept(self, candidate: FloatSolution) -> None:
        if len(self._members) <= self.capacity:
            return
        assign_crowding_distance(self._members)
        distances = np.array([crowding_distance_of(m) for m in self._members])
        victim = int(np.argmin(distances))
        del self._members[victim]
