"""Epsilon-dominance archive (Laumanns, Thiele, Deb, Zitzler 2002).

An alternative to AGA for bounding the AEDB-MLS elite set (extension
beyond the paper, exercised by the archive-strategy ablation bench).
Objective space is tiled into boxes of side ``epsilon`` (additive
scheme); the archive maintains

* **box-level Pareto optimality** — a candidate whose box is dominated
  by an occupied box is rejected; boxes dominated by the candidate's box
  are evicted wholesale;
* **one occupant per box** — within a box the occupant closer to the
  box's lower corner wins (or the dominating one, if comparable).

Unlike AGA the size bound is implicit — at most one member per
non-dominated box, which for bounded objective ranges gives the classic
``prod(range_i / epsilon_i) ** (m-1)/...`` style guarantee — and the
archive provably never cycles (accepted boxes only ever improve).

Constraint handling mirrors :class:`UnboundedArchive`: any feasible
member rejects all infeasible candidates; while no feasible solution has
been seen, the single least-violating solution is retained.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.moo.solution import FloatSolution

__all__ = ["EpsilonArchive"]


class EpsilonArchive:
    """Bounded-by-construction archive under additive epsilon-dominance."""

    def __init__(self, epsilon: float | Sequence[float], n_objectives: int):
        if n_objectives <= 0:
            raise ValueError(f"n_objectives must be positive, got {n_objectives}")
        eps = np.asarray(
            [epsilon] * n_objectives if np.isscalar(epsilon) else epsilon,
            dtype=float,
        )
        if eps.size != n_objectives:
            raise ValueError(
                f"expected {n_objectives} epsilon values, got {eps.size}"
            )
        if np.any(eps <= 0):
            raise ValueError("every epsilon must be positive")
        self.epsilon = eps
        self.n_objectives = int(n_objectives)
        self._members: list[FloatSolution] = []
        self._boxes: list[tuple[int, ...]] = []
        #: Sole infeasible placeholder while nothing feasible was seen.
        self._infeasible: FloatSolution | None = None

    # ------------------------------------------------------------------ #
    def box_of(self, objectives: np.ndarray) -> tuple[int, ...]:
        """The epsilon-box index vector of an objective point."""
        idx = np.floor(np.asarray(objectives, dtype=float) / self.epsilon)
        return tuple(int(v) for v in idx)

    @staticmethod
    def _box_dominates(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
        """Pareto dominance on box indices (minimisation)."""
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b)
        )

    # ------------------------------------------------------------------ #
    def add(self, candidate: FloatSolution) -> bool:
        """Offer a solution; True when it was retained."""
        if not candidate.is_evaluated:
            raise ValueError("cannot archive an unevaluated solution")
        if candidate.objectives.size != self.n_objectives:
            raise ValueError(
                f"expected {self.n_objectives} objectives, got "
                f"{candidate.objectives.size}"
            )

        if candidate.constraint_violation > 0:
            if self._members:
                return False  # any feasible member rejects it
            if (
                self._infeasible is None
                or candidate.constraint_violation
                < self._infeasible.constraint_violation
            ):
                self._infeasible = candidate
                return True
            return False
        # First feasible solution displaces the infeasible placeholder.
        self._infeasible = None

        box = self.box_of(candidate.objectives)
        # Reject if epsilon-dominated at box level (equal box handled below).
        for other in self._boxes:
            if self._box_dominates(other, box):
                return False

        # Same box: the occupant closer to the box's lower corner stays.
        if box in self._boxes:
            i = self._boxes.index(box)
            occupant = self._members[i]
            if self._corner_distance(candidate) < self._corner_distance(occupant):
                self._members[i] = candidate
                return True
            return False

        # Evict boxes the candidate's box dominates, then insert.
        keep = [
            j
            for j, other in enumerate(self._boxes)
            if not self._box_dominates(box, other)
        ]
        if len(keep) != len(self._boxes):
            self._members = [self._members[j] for j in keep]
            self._boxes = [self._boxes[j] for j in keep]
        self._members.append(candidate)
        self._boxes.append(box)
        return True

    def _corner_distance(self, solution: FloatSolution) -> float:
        """Distance from the solution to its box's lower corner."""
        obj = solution.objectives
        corner = np.floor(obj / self.epsilon) * self.epsilon
        return float(np.linalg.norm((obj - corner) / self.epsilon))

    def add_all(self, candidates: Sequence[FloatSolution]) -> int:
        """Offer many; return how many were retained."""
        return sum(1 for c in candidates if self.add(c))

    # ------------------------------------------------------------------ #
    @property
    def members(self) -> list[FloatSolution]:
        """Current members (feasible boxes, or the sole infeasible)."""
        if self._members:
            return list(self._members)
        return [self._infeasible] if self._infeasible is not None else []

    def objectives_matrix(self) -> np.ndarray:
        """``(n, m)`` matrix of member objectives (empty -> shape (0, 0))."""
        mem = self.members
        if not mem:
            return np.empty((0, 0))
        return np.vstack([m.objectives for m in mem])

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[FloatSolution]:
        return iter(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EpsilonArchive(size={len(self)}, "
            f"epsilon={self.epsilon.tolist()})"
        )
