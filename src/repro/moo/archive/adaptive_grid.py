"""Adaptive Grid Archiving (AGA) — Knowles & Corne 2000 (PAES).

The archiving method of AEDB-MLS (paper Sect. IV-A).  Objective space is
divided into hypercubes by bisecting each (adaptive) objective range
``bisections`` times; the archive balances the member count across
occupied cells:

* a candidate dominated by the archive is rejected; members dominated by
  the candidate are removed;
* below capacity, accepted candidates are simply inserted;
* at capacity, the candidate is inserted only if its cell is *not* the
  most crowded one, in which case one occupant of a most-crowded cell is
  evicted; a candidate landing in the most crowded cell is rejected.

The three properties the paper quotes hold by construction and are
property-tested in ``tests/moo/test_adaptive_grid.py``:

i.   per-objective extreme solutions are never evicted (eviction explicitly
     skips the current minimisers of each objective);
ii.  occupied Pareto regions keep at least one representative (eviction
     only touches the most crowded cells);
iii. remaining capacity is spread evenly (eviction always targets the most
     crowded cell).
"""

from __future__ import annotations

import numpy as np

from repro.moo.archive.nondominated import UnboundedArchive
from repro.moo.solution import FloatSolution
from repro.utils.rng import as_generator

__all__ = ["AdaptiveGridArchive"]


class AdaptiveGridArchive(UnboundedArchive):
    """Bounded non-dominated archive with adaptive-grid density control."""

    def __init__(
        self,
        capacity: int,
        n_objectives: int,
        bisections: int = 5,
        rng: np.random.Generator | int | None = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if n_objectives <= 0:
            raise ValueError(f"n_objectives must be positive, got {n_objectives}")
        if bisections <= 0:
            raise ValueError(f"bisections must be positive, got {bisections}")
        super().__init__()
        self.capacity = int(capacity)
        self.n_objectives = int(n_objectives)
        self.bisections = int(bisections)
        self._divisions = 2**bisections
        self._rng = as_generator(rng)
        self._grid_lower = np.zeros(n_objectives)
        self._grid_upper = np.ones(n_objectives)
        self._have_grid = False

    # ------------------------------------------------------------------ #
    # grid management                                                    #
    # ------------------------------------------------------------------ #
    def _recompute_grid(self) -> None:
        """Fit the grid to the current members (with 10% padding, as in
        Knowles' reference implementation)."""
        objs = np.vstack([m.objectives for m in self._members])
        lo = objs.min(axis=0)
        hi = objs.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        pad = 0.05 * span
        self._grid_lower = lo - pad
        self._grid_upper = hi + pad
        self._have_grid = True

    def cell_of(self, objectives: np.ndarray) -> tuple[int, ...]:
        """Grid cell (tuple of per-objective indices) of a point."""
        if not self._have_grid:
            return (0,) * self.n_objectives
        span = self._grid_upper - self._grid_lower
        rel = (np.asarray(objectives, dtype=float) - self._grid_lower) / span
        idx = np.floor(rel * self._divisions).astype(int)
        return tuple(int(v) for v in np.clip(idx, 0, self._divisions - 1))

    def _outside_grid(self, objectives: np.ndarray) -> bool:
        if not self._have_grid:
            return True
        return bool(
            np.any(objectives < self._grid_lower)
            or np.any(objectives > self._grid_upper)
        )

    def _cell_census(self) -> dict[tuple[int, ...], list[int]]:
        """Member indices per occupied cell — one vectorised pass."""
        objs = np.vstack([m.objectives for m in self._members])
        span = self._grid_upper - self._grid_lower
        rel = (objs - self._grid_lower[None, :]) / span[None, :]
        idx = np.clip(
            np.floor(rel * self._divisions).astype(int),
            0,
            self._divisions - 1,
        )
        census: dict[tuple[int, ...], list[int]] = {}
        for i, row in enumerate(map(tuple, idx.tolist())):
            census.setdefault(row, []).append(i)
        return census

    def _protected_indices(self) -> set[int]:
        """Indices of per-objective extreme members (never evicted)."""
        objs = np.vstack([m.objectives for m in self._members])
        protected: set[int] = set()
        for m in range(objs.shape[1]):
            protected.add(int(np.argmin(objs[:, m])))
        return protected

    # ------------------------------------------------------------------ #
    # insertion policy                                                   #
    # ------------------------------------------------------------------ #
    def _on_accept(self, candidate: FloatSolution) -> None:
        # Called after dominance filtering accepted the candidate.
        if self._outside_grid(candidate.objectives) or not self._have_grid:
            self._recompute_grid()

        if len(self._members) <= self.capacity:
            return

        census = self._cell_census()
        candidate_cell = self.cell_of(candidate.objectives)
        max_count = max(len(v) for v in census.values())
        crowded_cells = [c for c, v in census.items() if len(v) == max_count]

        protected = self._protected_indices()
        candidate_idx = len(self._members) - 1  # just appended

        if candidate_cell in crowded_cells:
            # The candidate landed in a most-crowded cell: evict another
            # occupant of that cell (an unprotected one) — or, when the
            # candidate is not itself protected, the candidate.
            pool = [
                i
                for i in census[candidate_cell]
                if i != candidate_idx and i not in protected
            ]
            if pool:
                victim = int(self._rng.choice(pool))
            elif candidate_idx not in protected:
                victim = candidate_idx
            else:
                # Candidate is a new extreme inside a fully protected
                # cell (tiny archives): evict any unprotected member.
                fallback = [
                    i
                    for i in range(len(self._members))
                    if i not in protected
                ]
                victim = (
                    int(self._rng.choice(fallback))
                    if fallback
                    else candidate_idx
                )
        else:
            victims: list[int] = []
            for cell in crowded_cells:
                victims.extend(
                    i
                    for i in census[cell]
                    if i not in protected and i != candidate_idx
                )
            if victims:
                victim = int(self._rng.choice(victims))
            else:
                # Everything in the crowded cells is protected (tiny
                # archives): fall back to any unprotected member.
                fallback = [
                    i
                    for i in range(len(self._members))
                    if i not in protected and i != candidate_idx
                ]
                victim = int(self._rng.choice(fallback)) if fallback else candidate_idx
        del self._members[victim]

    # ------------------------------------------------------------------ #
    # sampling (AEDB-MLS population re-initialisation)                   #
    # ------------------------------------------------------------------ #
    def sample(
        self, k: int, rng: np.random.Generator | int | None = None
    ) -> list[FloatSolution]:
        """``k`` members drawn uniformly with replacement (copies).

        AEDB-MLS re-seeds a population from the archive this way; copies
        are returned so the archive's own members stay immutable.
        """
        if not self._members:
            raise ValueError("cannot sample from an empty archive")
        gen = as_generator(rng) if rng is not None else self._rng
        idx = gen.integers(0, len(self._members), size=k)
        return [self._members[int(i)].copy() for i in idx]

    def grid_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Current (lower, upper) grid bounds — diagnostics/tests."""
        return self._grid_lower.copy(), self._grid_upper.copy()

    def cell_population(self, objectives: np.ndarray) -> int:
        """Number of members sharing the cell containing ``objectives``.

        The PAES acceptance rule compares the crowding of the candidate's
        and the current solution's grid regions; this is that census.
        """
        if not self._members:
            return 0
        target = self.cell_of(np.asarray(objectives, dtype=float))
        return sum(
            1 for m in self._members if self.cell_of(m.objectives) == target
        )
