"""Non-dominated solution archives.

* :class:`UnboundedArchive` — keeps every non-dominated solution seen;
* :class:`CrowdingDistanceArchive` — bounded, evicts the most crowded
  member (jMetal's ``CrowdingDistanceArchive``, used by CellDE);
* :class:`AdaptiveGridArchive` — the AGA method from PAES (Knowles &
  Corne 2000), the archiving strategy of AEDB-MLS (Sect. IV-A of the
  paper);
* :class:`EpsilonArchive` — epsilon-dominance boxes (Laumanns et al.
  2002), the alternative elite-bounding strategy the archive ablation
  compares AGA against (extension).
"""

from repro.moo.archive.adaptive_grid import AdaptiveGridArchive
from repro.moo.archive.crowding import CrowdingDistanceArchive
from repro.moo.archive.epsilon import EpsilonArchive
from repro.moo.archive.nondominated import UnboundedArchive

__all__ = [
    "UnboundedArchive",
    "CrowdingDistanceArchive",
    "AdaptiveGridArchive",
    "EpsilonArchive",
]
