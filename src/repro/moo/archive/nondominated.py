"""Unbounded non-dominated archive.

The base class of all archives: maintains the invariant that members are
mutually non-dominated (under constraint-domination) and deduplicates
identical objective vectors.  ``add`` returns True when the candidate was
accepted, which all callers use as their "found something new" signal.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.moo.solution import FloatSolution

__all__ = ["UnboundedArchive"]


class UnboundedArchive:
    """Archive without a size limit."""

    def __init__(self) -> None:
        self._members: list[FloatSolution] = []

    # ------------------------------------------------------------------ #
    def add(self, candidate: FloatSolution) -> bool:
        """Insert ``candidate`` unless dominated or duplicated.

        Members dominated by the candidate are evicted.  The candidate is
        stored by reference; callers that keep mutating their solution must
        pass a copy.  The dominance screen is one vectorised pass over the
        member objective matrix.
        """
        if not candidate.is_evaluated:
            raise ValueError("cannot archive an unevaluated solution")
        if self._members:
            obj_m = np.vstack([m.objectives for m in self._members])
            vio_m = np.maximum(
                np.array([m.constraint_violation for m in self._members]), 0.0
            )
            obj_c = candidate.objectives
            vio_c = max(candidate.constraint_violation, 0.0)
            feas_m = vio_m <= 0.0
            feas_c = vio_c <= 0.0

            pareto_mc = np.all(obj_m <= obj_c, axis=1) & np.any(
                obj_m < obj_c, axis=1
            )
            pareto_cm = np.all(obj_c <= obj_m, axis=1) & np.any(
                obj_c < obj_m, axis=1
            )
            if feas_c:
                member_dominates = feas_m & pareto_mc
                cand_dominates = np.where(feas_m, pareto_cm, True)
            else:
                member_dominates = feas_m | (vio_m < vio_c)
                cand_dominates = ~feas_m & (vio_c < vio_m)
            if bool(member_dominates.any()):
                return False
            duplicate = np.all(obj_m == obj_c, axis=1) & ~cand_dominates
            if bool(duplicate.any()):
                return False
            if bool(cand_dominates.any()):
                keep = np.flatnonzero(~cand_dominates)
                self._members = [self._members[i] for i in keep]
        self._members.append(candidate)
        self._on_accept(candidate)
        return True

    def add_all(self, candidates: Sequence[FloatSolution]) -> int:
        """Add many; return how many were accepted."""
        return sum(1 for c in candidates if self.add(c))

    # Hook for bounded subclasses (truncation happens here).
    def _on_accept(self, candidate: FloatSolution) -> None:
        return None

    # ------------------------------------------------------------------ #
    @property
    def members(self) -> list[FloatSolution]:
        """Current members (list copy; solutions shared by reference)."""
        return list(self._members)

    def objectives_matrix(self) -> np.ndarray:
        """``(n, m)`` matrix of member objectives (empty -> shape (0, 0))."""
        if not self._members:
            return np.empty((0, 0))
        return np.vstack([m.objectives for m in self._members])

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[FloatSolution]:
        return iter(list(self._members))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(size={len(self._members)})"
