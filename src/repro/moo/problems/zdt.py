"""The ZDT bi-objective test suite (Zitzler, Deb, Thiele 2000).

Standard scalable 2-objective problems with analytically known Pareto
fronts; the framework's convergence tests use ZDT1/2/3 (convex, concave,
disconnected) and the multimodal/biased ZDT4/6 for stress runs.
"""

from __future__ import annotations

import numpy as np

from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution

__all__ = ["ZDT1", "ZDT2", "ZDT3", "ZDT4", "ZDT6"]


class _ZDT(Problem):
    """Shared scaffolding: f1 from x0, f2 = g * h(f1, g)."""

    def __init__(self, n_variables: int, lower=None, upper=None, name=None):
        lower = np.zeros(n_variables) if lower is None else lower
        upper = np.ones(n_variables) if upper is None else upper
        super().__init__(lower, upper, n_objectives=2, name=name)

    def _evaluate(self, solution: FloatSolution) -> None:
        x = solution.variables
        f1 = self._f1(x)
        g = self._g(x)
        f2 = g * self._h(f1, g)
        solution.objectives[0] = f1
        solution.objectives[1] = f2
        solution.constraint_violation = 0.0

    def _f1(self, x: np.ndarray) -> float:
        return float(x[0])

    def _g(self, x: np.ndarray) -> float:
        raise NotImplementedError

    def _h(self, f1: float, g: float) -> float:
        raise NotImplementedError

    def pareto_front(self, n: int = 100) -> np.ndarray:
        """``(n, 2)`` points sampled from the analytic Pareto front."""
        f1 = np.linspace(0.0, 1.0, n)
        return np.column_stack([f1, self._front_f2(f1)])

    def _front_f2(self, f1: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class ZDT1(_ZDT):
    """Convex front: f2 = 1 - sqrt(f1)."""

    def __init__(self, n_variables: int = 30):
        super().__init__(n_variables, name="ZDT1")

    def _g(self, x: np.ndarray) -> float:
        return 1.0 + 9.0 * float(np.mean(x[1:]))

    def _h(self, f1: float, g: float) -> float:
        return 1.0 - np.sqrt(f1 / g)

    def _front_f2(self, f1: np.ndarray) -> np.ndarray:
        return 1.0 - np.sqrt(f1)


class ZDT2(_ZDT):
    """Concave front: f2 = 1 - f1^2."""

    def __init__(self, n_variables: int = 30):
        super().__init__(n_variables, name="ZDT2")

    def _g(self, x: np.ndarray) -> float:
        return 1.0 + 9.0 * float(np.mean(x[1:]))

    def _h(self, f1: float, g: float) -> float:
        return 1.0 - (f1 / g) ** 2

    def _front_f2(self, f1: np.ndarray) -> np.ndarray:
        return 1.0 - f1**2


class ZDT3(_ZDT):
    """Disconnected front (five convex pieces)."""

    def __init__(self, n_variables: int = 30):
        super().__init__(n_variables, name="ZDT3")

    def _g(self, x: np.ndarray) -> float:
        return 1.0 + 9.0 * float(np.mean(x[1:]))

    def _h(self, f1: float, g: float) -> float:
        r = f1 / g
        return 1.0 - np.sqrt(r) - r * np.sin(10.0 * np.pi * f1)

    def pareto_front(self, n: int = 100) -> np.ndarray:
        # The front lives on disconnected f1 intervals (Zitzler et al.);
        # each interval is open on the left except the first (the left
        # endpoint is weakly dominated by the previous segment's end).
        segments = [
            (0.0, 0.0830015349, False),
            (0.1822287280, 0.2577623634, True),
            (0.4093136748, 0.4538821041, True),
            (0.6183967944, 0.6525117038, True),
            (0.8233317983, 0.8518328654, True),
        ]
        per_seg = max(n // len(segments), 2)
        pieces = []
        for a, b, left_open in segments:
            seg = np.linspace(a, b, per_seg + (1 if left_open else 0))
            pieces.append(seg[1:] if left_open else seg)
        f1 = np.concatenate(pieces)
        f2 = 1.0 - np.sqrt(f1) - f1 * np.sin(10.0 * np.pi * f1)
        return np.column_stack([f1, f2])

    def _front_f2(self, f1: np.ndarray) -> np.ndarray:
        return 1.0 - np.sqrt(f1) - f1 * np.sin(10.0 * np.pi * f1)


class ZDT4(_ZDT):
    """Multimodal: 21^9 local fronts; global front as ZDT1."""

    def __init__(self, n_variables: int = 10):
        lower = np.concatenate([[0.0], -5.0 * np.ones(n_variables - 1)])
        upper = np.concatenate([[1.0], 5.0 * np.ones(n_variables - 1)])
        super().__init__(n_variables, lower, upper, name="ZDT4")

    def _g(self, x: np.ndarray) -> float:
        tail = x[1:]
        return float(
            1.0
            + 10.0 * tail.size
            + np.sum(tail**2 - 10.0 * np.cos(4.0 * np.pi * tail))
        )

    def _h(self, f1: float, g: float) -> float:
        return 1.0 - np.sqrt(f1 / g)

    def _front_f2(self, f1: np.ndarray) -> np.ndarray:
        return 1.0 - np.sqrt(f1)


class ZDT6(_ZDT):
    """Non-uniformly distributed, concave front."""

    def __init__(self, n_variables: int = 10):
        super().__init__(n_variables, name="ZDT6")

    def _f1(self, x: np.ndarray) -> float:
        return float(
            1.0 - np.exp(-4.0 * x[0]) * np.sin(6.0 * np.pi * x[0]) ** 6
        )

    def _g(self, x: np.ndarray) -> float:
        return float(1.0 + 9.0 * (np.sum(x[1:]) / (x.size - 1)) ** 0.25)

    def _h(self, f1: float, g: float) -> float:
        return 1.0 - (f1 / g) ** 2

    def pareto_front(self, n: int = 100) -> np.ndarray:
        f1 = np.linspace(0.2807753191, 1.0, n)
        return np.column_stack([f1, 1.0 - f1**2])

    def _front_f2(self, f1: np.ndarray) -> np.ndarray:
        return 1.0 - f1**2
