"""Benchmark problems with known Pareto fronts.

Used to *validate* the optimisation framework (NSGA-II, CellDE, archives,
indicators) independently of the AEDB simulator, exactly as one would
validate a jMetal build.  Each problem exposes ``pareto_front(n)`` where
the true front is known analytically.
"""

from repro.moo.problems.dtlz import DTLZ1, DTLZ2
from repro.moo.problems.misc import (
    BinhKorn,
    ConstrEx,
    Fonseca,
    Kursawe,
    Schaffer,
    Srinivas,
    Tanaka,
    Viennet2,
)
from repro.moo.problems.zdt import ZDT1, ZDT2, ZDT3, ZDT4, ZDT6

__all__ = [
    "ZDT1",
    "ZDT2",
    "ZDT3",
    "ZDT4",
    "ZDT6",
    "DTLZ1",
    "DTLZ2",
    "Schaffer",
    "Fonseca",
    "Kursawe",
    "Srinivas",
    "Tanaka",
    "ConstrEx",
    "BinhKorn",
    "Viennet2",
]
