"""Classic small multi-objective problems, including constrained ones.

The constrained problems (Srinivas, Tanaka, ConstrEx, BinhKorn) exercise
the framework's constraint-domination path — the same machinery the AEDB
broadcast-time constraint flows through — against known solutions.
"""

from __future__ import annotations

import numpy as np

from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution

__all__ = [
    "Schaffer",
    "Fonseca",
    "Kursawe",
    "Srinivas",
    "Tanaka",
    "ConstrEx",
    "BinhKorn",
    "Viennet2",
]


def _violation(*gs: float) -> float:
    """Aggregate constraint violation: sum of positive parts of g_i <= 0."""
    return float(sum(max(g, 0.0) for g in gs))


class Schaffer(Problem):
    """Schaffer's single-variable problem: front f2 = (sqrt(f1) - 2)^2."""

    def __init__(self):
        super().__init__([-1000.0], [1000.0], n_objectives=2, name="Schaffer")

    def _evaluate(self, solution: FloatSolution) -> None:
        x = float(solution.variables[0])
        solution.objectives[0] = x**2
        solution.objectives[1] = (x - 2.0) ** 2
        solution.constraint_violation = 0.0

    def pareto_front(self, n: int = 100) -> np.ndarray:
        x = np.linspace(0.0, 2.0, n)
        return np.column_stack([x**2, (x - 2.0) ** 2])


class Fonseca(Problem):
    """Fonseca–Fleming, concave front, n variables."""

    def __init__(self, n_variables: int = 3):
        super().__init__(
            -4.0 * np.ones(n_variables),
            4.0 * np.ones(n_variables),
            n_objectives=2,
            name="Fonseca",
        )

    def _evaluate(self, solution: FloatSolution) -> None:
        x = solution.variables
        n = x.size
        shift = 1.0 / np.sqrt(n)
        solution.objectives[0] = 1.0 - np.exp(-np.sum((x - shift) ** 2))
        solution.objectives[1] = 1.0 - np.exp(-np.sum((x + shift) ** 2))
        solution.constraint_violation = 0.0

    def pareto_front(self, n: int = 100) -> np.ndarray:
        # Front parametrised by x1=...=xn=t, t in [-1/sqrt(n), 1/sqrt(n)].
        nv = self.n_variables
        t = np.linspace(-1.0 / np.sqrt(nv), 1.0 / np.sqrt(nv), n)
        f1 = 1.0 - np.exp(-nv * (t - 1.0 / np.sqrt(nv)) ** 2)
        f2 = 1.0 - np.exp(-nv * (t + 1.0 / np.sqrt(nv)) ** 2)
        return np.column_stack([f1, f2])


class Kursawe(Problem):
    """Kursawe's disconnected, non-convex problem."""

    def __init__(self, n_variables: int = 3):
        super().__init__(
            -5.0 * np.ones(n_variables),
            5.0 * np.ones(n_variables),
            n_objectives=2,
            name="Kursawe",
        )

    def _evaluate(self, solution: FloatSolution) -> None:
        x = solution.variables
        solution.objectives[0] = float(
            np.sum(-10.0 * np.exp(-0.2 * np.sqrt(x[:-1] ** 2 + x[1:] ** 2)))
        )
        solution.objectives[1] = float(
            np.sum(np.abs(x) ** 0.8 + 5.0 * np.sin(x**3))
        )
        solution.constraint_violation = 0.0


class Srinivas(Problem):
    """Srinivas & Deb's constrained bi-objective problem."""

    def __init__(self):
        super().__init__(
            [-20.0, -20.0], [20.0, 20.0], n_objectives=2, n_constraints=2,
            name="Srinivas",
        )

    def _evaluate(self, solution: FloatSolution) -> None:
        x, y = solution.variables
        solution.objectives[0] = (x - 2.0) ** 2 + (y - 1.0) ** 2 + 2.0
        solution.objectives[1] = 9.0 * x - (y - 1.0) ** 2
        g1 = x**2 + y**2 - 225.0
        g2 = x - 3.0 * y + 10.0
        solution.constraint_violation = _violation(g1 / 225.0, g2 / 10.0)


class Tanaka(Problem):
    """Tanaka's problem: the constraint carves the front itself."""

    def __init__(self):
        eps = 1e-12
        super().__init__(
            [eps, eps], [np.pi, np.pi], n_objectives=2, n_constraints=2,
            name="Tanaka",
        )

    def _evaluate(self, solution: FloatSolution) -> None:
        x, y = solution.variables
        solution.objectives[0] = x
        solution.objectives[1] = y
        g1 = -(x**2 + y**2 - 1.0 - 0.1 * np.cos(16.0 * np.arctan2(x, y)))
        g2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 - 0.5
        solution.constraint_violation = _violation(g1, g2)


class ConstrEx(Problem):
    """Deb's CONSTR example (two linear constraints)."""

    def __init__(self):
        super().__init__(
            [0.1, 0.0], [1.0, 5.0], n_objectives=2, n_constraints=2,
            name="ConstrEx",
        )

    def _evaluate(self, solution: FloatSolution) -> None:
        x, y = solution.variables
        solution.objectives[0] = x
        solution.objectives[1] = (1.0 + y) / x
        g1 = 6.0 - (y + 9.0 * x)
        g2 = 1.0 + y - 9.0 * x
        solution.constraint_violation = _violation(g1, g2)


class BinhKorn(Problem):
    """Binh & Korn's constrained problem with a known convex front."""

    def __init__(self):
        super().__init__(
            [0.0, 0.0], [5.0, 3.0], n_objectives=2, n_constraints=2,
            name="BinhKorn",
        )

    def _evaluate(self, solution: FloatSolution) -> None:
        x, y = solution.variables
        solution.objectives[0] = 4.0 * x**2 + 4.0 * y**2
        solution.objectives[1] = (x - 5.0) ** 2 + (y - 5.0) ** 2
        g1 = (x - 5.0) ** 2 + y**2 - 25.0
        g2 = 7.7 - ((x - 8.0) ** 2 + (y + 3.0) ** 2)
        solution.constraint_violation = _violation(g1 / 25.0, g2 / 7.7)


class Viennet2(Problem):
    """Viennet's second problem — a cheap 3-objective analytic target."""

    def __init__(self):
        super().__init__(
            [-4.0, -4.0], [4.0, 4.0], n_objectives=3, name="Viennet2"
        )

    def _evaluate(self, solution: FloatSolution) -> None:
        x, y = solution.variables
        solution.objectives[0] = (
            (x - 2.0) ** 2 / 2.0 + (y + 1.0) ** 2 / 13.0 + 3.0
        )
        solution.objectives[1] = (
            (x + y - 3.0) ** 2 / 36.0 + (-x + y + 2.0) ** 2 / 8.0 - 17.0
        )
        solution.objectives[2] = (
            (x + 2.0 * y - 1.0) ** 2 / 175.0 + (2.0 * y - x) ** 2 / 17.0 - 13.0
        )
        solution.constraint_violation = 0.0
