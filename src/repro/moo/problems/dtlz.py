"""DTLZ1/DTLZ2 (Deb, Thiele, Laumanns, Zitzler 2002), 3-objective.

The AEDB tuning problem is 3-objective; these two scalable problems give
the framework a 3-objective validation target with analytic fronts
(DTLZ1: the simplex sum f_i = 0.5; DTLZ2: the unit sphere octant).
"""

from __future__ import annotations

import numpy as np

from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution

__all__ = ["DTLZ1", "DTLZ2"]


class _DTLZ(Problem):
    def __init__(self, n_variables: int, n_objectives: int, name: str):
        super().__init__(
            np.zeros(n_variables),
            np.ones(n_variables),
            n_objectives=n_objectives,
            name=name,
        )

    @property
    def k(self) -> int:
        """Distance-variable count."""
        return self.n_variables - self.n_objectives + 1


class DTLZ1(_DTLZ):
    """Linear front: sum(f) = 0.5 on the simplex."""

    def __init__(self, n_variables: int = 7, n_objectives: int = 3):
        super().__init__(n_variables, n_objectives, name="DTLZ1")

    def _evaluate(self, solution: FloatSolution) -> None:
        x = solution.variables
        m = self.n_objectives
        xm = x[m - 1 :]
        g = 100.0 * (
            xm.size
            + np.sum((xm - 0.5) ** 2 - np.cos(20.0 * np.pi * (xm - 0.5)))
        )
        for i in range(m):
            f = 0.5 * (1.0 + g)
            f *= np.prod(x[: m - 1 - i])
            if i > 0:
                f *= 1.0 - x[m - 1 - i]
            solution.objectives[i] = f
        solution.constraint_violation = 0.0

    def pareto_front(self, n: int = 200) -> np.ndarray:
        """Uniform-ish sample of the simplex sum(f)=0.5 (m = 3 only)."""
        if self.n_objectives != 3:
            raise NotImplementedError("front sampling implemented for m=3")
        pts = []
        steps = int(np.sqrt(n)) + 1
        for a in np.linspace(0, 1, steps):
            for b in np.linspace(0, 1 - a, max(int((1 - a) * steps), 1)):
                c = 1.0 - a - b
                pts.append((0.5 * a, 0.5 * b, 0.5 * c))
        return np.array(pts)


class DTLZ2(_DTLZ):
    """Spherical front: ||f||_2 = 1 on the positive octant."""

    def __init__(self, n_variables: int = 12, n_objectives: int = 3):
        super().__init__(n_variables, n_objectives, name="DTLZ2")

    def _evaluate(self, solution: FloatSolution) -> None:
        x = solution.variables
        m = self.n_objectives
        xm = x[m - 1 :]
        g = float(np.sum((xm - 0.5) ** 2))
        for i in range(m):
            f = 1.0 + g
            f *= np.prod(np.cos(x[: m - 1 - i] * np.pi / 2.0))
            if i > 0:
                f *= np.sin(x[m - 1 - i] * np.pi / 2.0)
            solution.objectives[i] = f
        solution.constraint_violation = 0.0

    def pareto_front(self, n: int = 200) -> np.ndarray:
        """Spherical-coordinate grid on the unit octant (m = 3 only)."""
        if self.n_objectives != 3:
            raise NotImplementedError("front sampling implemented for m=3")
        steps = int(np.sqrt(n)) + 1
        theta = np.linspace(0, np.pi / 2, steps)
        phi = np.linspace(0, np.pi / 2, steps)
        tt, pp = np.meshgrid(theta, phi)
        pts = np.column_stack(
            [
                (np.cos(tt) * np.cos(pp)).ravel(),
                (np.cos(tt) * np.sin(pp)).ravel(),
                np.sin(tt).ravel(),
            ]
        )
        return pts
