"""Problem abstraction for box-constrained multi-objective optimisation.

Subclasses define bounds and ``_evaluate``; the base class provides
solution construction, bound clipping, and batch evaluation.  All
objectives are minimised internally; problems whose natural formulation
maximises (e.g. AEDB coverage) negate in ``_evaluate`` and advertise the
transform through :attr:`objective_labels` / :meth:`display_objectives`.
"""

from __future__ import annotations

import numpy as np

from repro.moo.solution import FloatSolution
from repro.utils.rng import as_generator

__all__ = ["Problem"]


class Problem:
    """Base class: an ``n_variables -> n_objectives`` minimisation problem.

    Parameters
    ----------
    lower_bounds, upper_bounds:
        Box constraints on the decision vector.
    n_objectives:
        Objective count.
    n_constraints:
        Number of inequality constraints folded into the solution's
        ``constraint_violation`` (informational; violation is aggregated).
    name:
        Human-readable identifier used in reports.
    """

    def __init__(
        self,
        lower_bounds,
        upper_bounds,
        n_objectives: int,
        n_constraints: int = 0,
        name: str | None = None,
    ):
        self.lower_bounds = np.asarray(lower_bounds, dtype=float).ravel()
        self.upper_bounds = np.asarray(upper_bounds, dtype=float).ravel()
        if self.lower_bounds.shape != self.upper_bounds.shape:
            raise ValueError("bound vectors must have equal length")
        if np.any(self.upper_bounds < self.lower_bounds):
            raise ValueError("upper bound below lower bound")
        self.n_objectives = int(n_objectives)
        self.n_constraints = int(n_constraints)
        self.name = name or type(self).__name__
        #: Number of ``evaluate`` calls served by this instance.
        self.evaluations = 0

    # ------------------------------------------------------------------ #
    @property
    def n_variables(self) -> int:
        """Decision-space dimensionality."""
        return int(self.lower_bounds.size)

    @property
    def objective_labels(self) -> tuple[str, ...]:
        """Display names for the (minimised) objectives."""
        return tuple(f"f{i + 1}" for i in range(self.n_objectives))

    def display_objectives(self, objectives: np.ndarray) -> np.ndarray:
        """Map internal (minimised) objectives to the paper's sign
        conventions for reporting.  Identity by default."""
        return np.asarray(objectives, dtype=float)

    # ------------------------------------------------------------------ #
    def create_solution(
        self, rng: np.random.Generator | int | None = None
    ) -> FloatSolution:
        """A uniformly random, unevaluated solution inside the box."""
        gen = as_generator(rng)
        variables = gen.uniform(self.lower_bounds, self.upper_bounds)
        return FloatSolution(variables, self.n_objectives)

    def clip(self, variables: np.ndarray) -> np.ndarray:
        """Project a vector onto the box."""
        return np.clip(variables, self.lower_bounds, self.upper_bounds)

    def evaluate(self, solution: FloatSolution) -> FloatSolution:
        """Evaluate in place (objectives + constraint violation)."""
        if solution.variables.size != self.n_variables:
            raise ValueError(
                f"solution has {solution.variables.size} variables, "
                f"problem expects {self.n_variables}"
            )
        self._evaluate(solution)
        self.evaluations += 1
        return solution

    def evaluate_batch(self, solutions) -> list[FloatSolution]:
        """Evaluate a list of solutions (hook point for parallel backends)."""
        return [self.evaluate(s) for s in solutions]

    # ------------------------------------------------------------------ #
    def _evaluate(self, solution: FloatSolution) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(n_variables={self.n_variables}, "
            f"n_objectives={self.n_objectives}, "
            f"n_constraints={self.n_constraints})"
        )
