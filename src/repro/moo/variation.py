"""Real-coded variation operators.

The operators the reproduced algorithms need, implemented from their
original publications:

* :class:`SBXCrossover` — simulated binary crossover (Deb & Agrawal 1995),
  the NSGA-II default;
* :class:`PolynomialMutation` — Deb's polynomial mutation;
* :class:`BLXAlphaCrossover` — blend crossover (Eshelman & Schaffer 1992),
  the operator family the paper's local-search perturbation (Eq. 2) is
  built from;
* :class:`DifferentialEvolutionCrossover` — DE/rand/1/bin variation as
  used inside CellDE (Durillo et al. 2008);
* :class:`UniformMutation` — bounded uniform resetting, used by the
  random-restart baseline.

All operators clip offspring into the problem box and never mutate their
parents.
"""

from __future__ import annotations

import numpy as np

from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range, check_probability

__all__ = [
    "SBXCrossover",
    "PolynomialMutation",
    "BLXAlphaCrossover",
    "DifferentialEvolutionCrossover",
    "UniformMutation",
]


class SBXCrossover:
    """Simulated binary crossover.

    Parameters
    ----------
    probability:
        Per-pair application probability (0.9 in the paper's NSGA-II).
    eta:
        Distribution index; larger values produce offspring closer to the
        parents (20 is the canonical setting).
    """

    def __init__(self, probability: float = 0.9, eta: float = 20.0):
        self.probability = check_probability(probability, "probability")
        self.eta = check_in_range(eta, "eta", 0.0, 1e6)

    def execute(
        self,
        parent_a: FloatSolution,
        parent_b: FloatSolution,
        problem: Problem,
        rng: np.random.Generator | int | None = None,
    ) -> tuple[FloatSolution, FloatSolution]:
        """Two offspring from two parents."""
        gen = as_generator(rng)
        x = parent_a.variables.copy()
        y = parent_b.variables.copy()
        if gen.random() <= self.probability:
            n = x.size
            u = gen.random(n)
            beta = np.where(
                u <= 0.5,
                (2.0 * u) ** (1.0 / (self.eta + 1.0)),
                (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (self.eta + 1.0)),
            )
            # Per-variable 50% swap keeps the operator unbiased.
            do_cross = gen.random(n) <= 0.5
            c1 = 0.5 * ((1 + beta) * x + (1 - beta) * y)
            c2 = 0.5 * ((1 - beta) * x + (1 + beta) * y)
            x = np.where(do_cross, c1, x)
            y = np.where(do_cross, c2, y)
        child_a = FloatSolution(problem.clip(x), problem.n_objectives)
        child_b = FloatSolution(problem.clip(y), problem.n_objectives)
        return child_a, child_b


class PolynomialMutation:
    """Deb's polynomial mutation.

    ``probability`` defaults to ``1/n_variables`` when ``None`` at call
    time, the canonical NSGA-II setting.
    """

    def __init__(self, probability: float | None = None, eta: float = 20.0):
        self.probability = (
            None if probability is None else check_probability(probability, "probability")
        )
        self.eta = check_in_range(eta, "eta", 0.0, 1e6)

    def execute(
        self,
        solution: FloatSolution,
        problem: Problem,
        rng: np.random.Generator | int | None = None,
    ) -> FloatSolution:
        """A mutated copy of ``solution``."""
        gen = as_generator(rng)
        x = solution.variables.copy()
        n = x.size
        prob = self.probability if self.probability is not None else 1.0 / n
        lo, hi = problem.lower_bounds, problem.upper_bounds
        span = hi - lo

        mutate = gen.random(n) <= prob
        if np.any(mutate):
            u = gen.random(n)
            # Bounded polynomial perturbation (Deb & Goyal 1996 variant).
            with np.errstate(divide="ignore", invalid="ignore"):
                delta1 = np.where(span > 0, (x - lo) / span, 0.0)
                delta2 = np.where(span > 0, (hi - x) / span, 0.0)
            mpow = 1.0 / (self.eta + 1.0)
            val_low = 2.0 * u + (1.0 - 2.0 * u) * (1.0 - delta1) ** (self.eta + 1.0)
            val_high = 2.0 * (1.0 - u) + 2.0 * (u - 0.5) * (1.0 - delta2) ** (
                self.eta + 1.0
            )
            deltaq = np.where(
                u <= 0.5,
                np.abs(val_low) ** mpow - 1.0,
                1.0 - np.abs(val_high) ** mpow,
            )
            x = np.where(mutate, x + deltaq * span, x)
        out = FloatSolution(problem.clip(x), problem.n_objectives)
        return out


class BLXAlphaCrossover:
    """Blend crossover BLX-α (Eshelman & Schaffer 1992).

    Each offspring gene is uniform in the parental interval extended by
    ``alpha`` times its width on both sides.  This is the classical
    *crossover* form; the paper's local-search *perturbation* (Eq. 2) is a
    directional variant implemented in :mod:`repro.core.operators`.
    """

    def __init__(self, probability: float = 1.0, alpha: float = 0.5):
        self.probability = check_probability(probability, "probability")
        self.alpha = check_in_range(alpha, "alpha", 0.0, 10.0)

    def execute(
        self,
        parent_a: FloatSolution,
        parent_b: FloatSolution,
        problem: Problem,
        rng: np.random.Generator | int | None = None,
    ) -> FloatSolution:
        """One offspring blended from two parents."""
        gen = as_generator(rng)
        x, y = parent_a.variables, parent_b.variables
        if gen.random() <= self.probability:
            lo = np.minimum(x, y)
            hi = np.maximum(x, y)
            width = hi - lo
            child = gen.uniform(lo - self.alpha * width, hi + self.alpha * width)
        else:
            child = x.copy()
        return FloatSolution(problem.clip(child), problem.n_objectives)


class DifferentialEvolutionCrossover:
    """DE/rand/1/bin variation (Storn & Price), as used by CellDE.

    ``child = current`` with, per gene (binomial mask at rate ``cr`` plus a
    guaranteed gene), ``base + f * (a - b)``.
    """

    def __init__(self, cr: float = 0.9, f: float = 0.5):
        self.cr = check_probability(cr, "cr")
        self.f = check_in_range(f, "f", 0.0, 2.0)

    def execute(
        self,
        current: FloatSolution,
        base: FloatSolution,
        diff_a: FloatSolution,
        diff_b: FloatSolution,
        problem: Problem,
        rng: np.random.Generator | int | None = None,
    ) -> FloatSolution:
        """One trial vector."""
        gen = as_generator(rng)
        n = current.variables.size
        mutant = base.variables + self.f * (diff_a.variables - diff_b.variables)
        mask = gen.random(n) <= self.cr
        mask[int(gen.integers(n))] = True  # guarantee at least one gene
        child = np.where(mask, mutant, current.variables)
        return FloatSolution(problem.clip(child), problem.n_objectives)


class UniformMutation:
    """Reset each gene, with some probability, uniformly inside its box."""

    def __init__(self, probability: float | None = None):
        self.probability = (
            None if probability is None else check_probability(probability, "probability")
        )

    def execute(
        self,
        solution: FloatSolution,
        problem: Problem,
        rng: np.random.Generator | int | None = None,
    ) -> FloatSolution:
        """A mutated copy of ``solution``."""
        gen = as_generator(rng)
        x = solution.variables.copy()
        n = x.size
        prob = self.probability if self.probability is not None else 1.0 / n
        mutate = gen.random(n) <= prob
        fresh = gen.uniform(problem.lower_bounds, problem.upper_bounds)
        x = np.where(mutate, fresh, x)
        return FloatSolution(problem.clip(x), problem.n_objectives)
