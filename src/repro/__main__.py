"""``python -m repro`` — alias for the ``repro-aedb`` CLI."""

import sys

from repro.cli import main

sys.exit(main())
