"""Multi-network fitness evaluation.

"The quality of the solution is not tested in one single network but in
10 different networks, and the fitness value of each objective is defined
as the average value of the 10 runs.  These 10 networks are always the
same for evaluating every solution."  (paper, Sect. V)

:class:`NetworkSetEvaluator` owns that fixed network set and turns an
:class:`~repro.manet.aedb.AEDBParams` into averaged
:class:`~repro.manet.metrics.BroadcastMetrics`.

:class:`ParallelNetworkSetEvaluator` fans the per-network simulations
out to a process pool (each run is a pure function of
``(scenario, params)``, so the fan-out is embarrassingly parallel and
bit-for-bit identical to the serial evaluator).  Worth it when the
per-simulation cost dominates the process round-trip — the paper-scale
75-node networks, not the tiny test fixtures; the break-even is
measured in ``benchmarks/bench_simulator.py``.

:meth:`NetworkSetEvaluator.evaluate_many` is the batched entry point:
the parallel evaluator pushes *all* configurations' simulations through
one ``pool.map`` instead of one fan-out per configuration, which keeps
every worker busy across configuration boundaries — the primitive the
campaign executor builds on.  The worker pool is persistent across
batches and is reclaimed by :meth:`close`, the context manager, or (via
``weakref.finalize``) garbage collection and interpreter exit, so an
unclosed evaluator no longer orphans worker processes.

Two optional layers plug into both evaluators (DESIGN.md §9):

* a :class:`~repro.manet.shared.SharedRuntimeArena` is created
  automatically by the parallel evaluator, so its workers map one
  shared-memory copy of each scenario's substrate instead of privately
  rebuilding it per process (transparent fallback to the per-process
  LRU when shared memory is unavailable);
* ``persistent=`` accepts a
  :class:`~repro.tuning.cache.PersistentEvaluationCache`, short-cutting
  any ``(scenario, params)`` simulation already recorded on disk —
  across processes, runs, and campaigns.  The cache file is
  single-writer: whoever constructs the evaluator owns the handle.  A
  process that must *read* another party's cache without contending for
  its file — a campaign shard worker warm-starting from the parent
  campaign's sidecar (DESIGN.md §10) — opens its own cache and preloads
  via :meth:`~repro.tuning.cache.PersistentEvaluationCache.warm_from`.
"""

from __future__ import annotations

import weakref
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.manet.aedb import AEDBParams
from repro.manet.metrics import BroadcastMetrics, aggregate_metrics
from repro.manet.runtime import get_runtime
from repro.manet.scenarios import NetworkScenario, make_scenarios
from repro.manet.shared import SharedRuntimeArena, SharedRuntimeHandle, attach_runtime
from repro.manet.simulator import BroadcastSimulator
from repro.telemetry import get_recorder
from repro.tuning.cache import EvaluationCache, PersistentEvaluationCache

__all__ = ["NetworkSetEvaluator", "ParallelNetworkSetEvaluator"]


def _simulate_one(
    scenario: NetworkScenario,
    params: AEDBParams,
    handle: "SharedRuntimeHandle | None" = None,
) -> BroadcastMetrics:
    """Module-level worker (must be picklable for process pools).

    With a handle the worker maps the parent's shared-memory substrate
    (one precompute for the whole pool); without one — or when the
    attach cannot be honoured — it resolves the scenario's runtime from
    its own per-process LRU, so a batch fanned out over the pool pays
    the beacon-grid precompute at most once per (worker, scenario).
    Either way the metrics are bit-identical.
    """
    return BroadcastSimulator(
        scenario, params, runtime=attach_runtime(scenario, handle)
    ).run()


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Finalizer target (module-level so it holds no evaluator ref)."""
    pool.shutdown()


class NetworkSetEvaluator:
    """Average AEDB broadcast metrics over a fixed scenario set."""

    def __init__(
        self,
        scenarios: list[NetworkScenario],
        cache: EvaluationCache | None = None,
        persistent: PersistentEvaluationCache | None = None,
    ):
        if not scenarios:
            raise ValueError("scenario set must be non-empty")
        n_nodes = {s.n_nodes for s in scenarios}
        if len(n_nodes) != 1:
            raise ValueError(
                f"scenario set mixes node counts: {sorted(n_nodes)}"
            )
        self.scenarios = list(scenarios)
        self.cache = cache
        #: Optional on-disk per-simulation memo, shared across processes
        #: and runs (PersistentEvaluationCache, DESIGN.md §9).
        self.persistent = persistent
        #: Simulations actually executed (cache hits excluded).
        self.simulations_run = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def for_density(
        cls,
        density_per_km2: float,
        n_networks: int = 10,
        master_seed: int = 0xAEDB,
        n_nodes: int | None = None,
        sim=None,
        cache: EvaluationCache | None = None,
        mobility_model: str = "random-walk",
        persistent: PersistentEvaluationCache | None = None,
    ) -> "NetworkSetEvaluator":
        """Build the paper's evaluation set for one density."""
        return cls(
            make_scenarios(
                density_per_km2,
                n_networks=n_networks,
                master_seed=master_seed,
                n_nodes=n_nodes,
                sim=sim,
                mobility_model=mobility_model,
            ),
            cache=cache,
            persistent=persistent,
        )

    # ------------------------------------------------------------------ #
    @property
    def n_networks(self) -> int:
        """Number of evaluation networks."""
        return len(self.scenarios)

    @property
    def n_nodes(self) -> int:
        """Devices per network."""
        return self.scenarios[0].n_nodes

    def _simulate_all(self, params: AEDBParams) -> BroadcastMetrics:
        with get_recorder().span("eval.evaluate", n_networks=self.n_networks):
            return self._simulate_all_inner(params)

    def _simulate_all_inner(self, params: AEDBParams) -> BroadcastMetrics:
        runs = []
        for scenario in self.scenarios:
            stored = (
                self.persistent.get_metrics(scenario, params)
                if self.persistent is not None
                else None
            )
            if stored is None:
                # The shared runtime (per-process bounded LRU) makes
                # every evaluation after the first on a scenario skip
                # the whole parameter-independent substrate, and the
                # simulator runs the vectorised protocol warm path
                # (batched deliveries + interval live-mask index,
                # DESIGN.md §11) on top of it; results are
                # bit-identical on every combination of those layers.
                stored = BroadcastSimulator(
                    scenario, params, runtime=get_runtime(scenario)
                ).run()
                self.simulations_run += 1
                if self.persistent is not None:
                    self.persistent.put_metrics(scenario, params, stored)
            runs.append(stored)
        return aggregate_metrics(runs)

    def evaluate(self, params: AEDBParams) -> BroadcastMetrics:
        """Averaged metrics for one configuration (cached if enabled)."""
        if self.cache is None:
            return self._simulate_all(params)
        result = self.cache.get_or_compute(
            params.as_array(), lambda: self._simulate_all(params)
        )
        assert isinstance(result, BroadcastMetrics)
        return result

    def evaluate_many(
        self, params_list: list[AEDBParams]
    ) -> list[BroadcastMetrics]:
        """Averaged metrics for a batch of configurations, input order.

        The serial baseline simply loops; the parallel evaluator
        overrides this with a single flattened pool fan-out.
        """
        plist = list(params_list)
        with get_recorder().span("eval.batch", n_params=len(plist)):
            return [self.evaluate(p) for p in plist]

    def evaluate_vector(self, vector: np.ndarray) -> BroadcastMetrics:
        """Averaged metrics for a raw parameter vector (clipped)."""
        return self.evaluate(AEDBParams.from_array(vector).clipped())


class ParallelNetworkSetEvaluator(NetworkSetEvaluator):
    """Evaluator that simulates the network set on a process pool.

    Drop-in for :class:`NetworkSetEvaluator` — identical results
    (simulations are pure functions of their inputs and are aggregated
    in scenario order), different wall-clock.  The pool is created
    lazily on first use, reused across :meth:`evaluate` /
    :meth:`evaluate_many` calls, and shut down by :meth:`close`, the
    context manager, or a ``weakref.finalize`` hook when the evaluator
    is garbage-collected or the interpreter exits.

    A :class:`~repro.manet.shared.SharedRuntimeArena` over the scenario
    set is built alongside the pool (``shared_runtimes=False`` opts
    out), so workers map one precomputed substrate instead of each
    rebuilding their own; when shared memory is unavailable the workers
    transparently fall back to their per-process LRUs.
    """

    def __init__(
        self,
        scenarios: list[NetworkScenario],
        cache: EvaluationCache | None = None,
        max_workers: int | None = None,
        persistent: PersistentEvaluationCache | None = None,
        shared_runtimes: bool = True,
    ):
        super().__init__(scenarios, cache=cache, persistent=persistent)
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self.shared_runtimes = shared_runtimes
        self._pool: ProcessPoolExecutor | None = None
        self._finalizer: weakref.finalize | None = None
        self._arena: SharedRuntimeArena | None = None
        self._arena_tried = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            # Reclaims the workers when the evaluator is collected or the
            # interpreter exits, whichever comes first — close() makes it
            # a no-op.  The callback must not reference self (it would
            # keep the evaluator alive forever).
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self._pool

    def _ensure_arena(self) -> SharedRuntimeArena | None:
        # Created (once) before the pool so the shared segments — and
        # the stdlib resource tracker — exist before any worker forks.
        # A failed creation is not retried: the per-process fallback is
        # correct, just less shared.  The arena carries its own
        # crash-safe finalizer; close() just drops it earlier.
        if not self._arena_tried:
            self._arena_tried = True
            if self.shared_runtimes:
                self._arena = SharedRuntimeArena.create(self.scenarios)
        return self._arena

    def _pooled_runs(
        self, pairs: list[tuple[NetworkScenario, AEDBParams]]
    ) -> list[BroadcastMetrics]:
        """Resolve ``(scenario, params)`` simulations, pair order.

        Persistent-cache hits never reach the pool; the remainder goes
        through ONE ``pool.map`` with shared-runtime handles attached.
        """
        out: list[BroadcastMetrics | None] = [None] * len(pairs)
        todo: list[int] = []
        for i, (scenario, params) in enumerate(pairs):
            stored = (
                self.persistent.get_metrics(scenario, params)
                if self.persistent is not None
                else None
            )
            if stored is not None:
                out[i] = stored
            else:
                todo.append(i)
        if todo:
            arena = self._ensure_arena()
            pool = self._ensure_pool()
            with get_recorder().span("eval.pool_map", n_jobs=len(todo)):
                runs = list(
                    pool.map(
                        _simulate_one,
                        [pairs[i][0] for i in todo],
                        [pairs[i][1] for i in todo],
                        [
                            arena.handle_for(pairs[i][0])
                            if arena is not None
                            else None
                            for i in todo
                        ],
                    )
                )
            self.simulations_run += len(runs)
            for i, metrics in zip(todo, runs):
                out[i] = metrics
                if self.persistent is not None:
                    self.persistent.put_metrics(
                        pairs[i][0], pairs[i][1], metrics
                    )
        assert all(m is not None for m in out)
        return out  # type: ignore[return-value]

    def _simulate_all(self, params: AEDBParams) -> BroadcastMetrics:
        with get_recorder().span("eval.evaluate", n_networks=self.n_networks):
            return aggregate_metrics(
                self._pooled_runs([(s, params) for s in self.scenarios])
            )

    def evaluate_many(
        self, params_list: list[AEDBParams]
    ) -> list[BroadcastMetrics]:
        """Batched evaluation through ONE pool fan-out.

        All uncached configurations' per-network simulations are
        flattened into a single ``pool.map``, so workers stay busy across
        configuration boundaries (the per-configuration fan-out of
        :meth:`evaluate` leaves them idle at every aggregation barrier).
        Duplicate vectors within the batch simulate once.
        """
        plist = list(params_list)
        with get_recorder().span("eval.batch", n_params=len(plist)):
            return self._evaluate_many_inner(plist)

    def _evaluate_many_inner(
        self, plist: list[AEDBParams]
    ) -> list[BroadcastMetrics]:
        out: list[BroadcastMetrics | None] = [None] * len(plist)
        # Group indices by parameter vector — under the cache's rounded
        # key when caching, so batch dedup agrees with the serial path's
        # get_or_compute keying — and resolve cache hits up front.
        todo: dict[tuple[float, ...], list[int]] = {}
        for i, params in enumerate(plist):
            arr = params.as_array()
            cached = self.cache.get(arr) if self.cache is not None else None
            if cached is not None:
                assert isinstance(cached, BroadcastMetrics)
                out[i] = cached
            else:
                key = (
                    self.cache.key_for(arr)
                    if self.cache is not None
                    else tuple(arr)
                )
                todo.setdefault(key, []).append(i)
        if todo:
            unique = [plist[indices[0]] for indices in todo.values()]
            n_scen = len(self.scenarios)
            runs = self._pooled_runs(
                [(s, p) for p in unique for s in self.scenarios]
            )
            for j, indices in enumerate(todo.values()):
                metrics = aggregate_metrics(runs[j * n_scen:(j + 1) * n_scen])
                if self.cache is not None:
                    self.cache.put(unique[j].as_array(), metrics)
                for i in indices:
                    out[i] = metrics
        assert all(m is not None for m in out)
        return out  # type: ignore[return-value]

    def close(self) -> None:
        """Shut the worker pool down and release the arena (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()  # runs _shutdown_pool exactly once
            self._finalizer = None
        self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._arena_tried = False

    def __enter__(self) -> "ParallelNetworkSetEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
