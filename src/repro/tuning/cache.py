"""Optional evaluation memoisation.

The simulator makes fitness a pure function of the parameter vector, so
re-evaluating an identical vector (which population algorithms do when
clones survive selection) is wasted work.  The cache is keyed on the
vector rounded to a configurable precision, evicts in true LRU order
(hits refresh recency, the oldest entry goes first), and is thread-safe
(AEDB-MLS's shared-memory engine evaluates from many threads).

Disabled by default in experiment presets — the paper does not cache — but
exposed for the ablation benchmarks, the campaign executor's batched
evaluation path, and interactive use.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

import numpy as np

__all__ = ["EvaluationCache"]


class EvaluationCache:
    """Bounded LRU memoisation of ``vector -> payload`` evaluations."""

    def __init__(self, decimals: int = 9, max_entries: int = 100_000):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.decimals = int(decimals)
        self.max_entries = int(max_entries)
        self._store: OrderedDict[tuple[float, ...], object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def key_for(self, vector: np.ndarray) -> tuple[float, ...]:
        """Cache key: the vector rounded to ``decimals`` places."""
        return tuple(np.round(np.asarray(vector, dtype=float), self.decimals))

    # ------------------------------------------------------------------ #
    def get(self, vector: np.ndarray) -> object | None:
        """The cached payload, or ``None`` on a miss (both are counted).

        A hit moves the entry to the most-recently-used position.
        Payloads are never ``None`` (callers store metrics objects), so
        ``None`` unambiguously means absent.
        """
        key = self.key_for(vector)
        with self._lock:
            if key in self._store:
                self.hits += 1
                self._store.move_to_end(key)
                return self._store[key]
            self.misses += 1
            return None

    def put(self, vector: np.ndarray, payload: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if full."""
        key = self.key_for(vector)
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
            elif len(self._store) >= self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1
            self._store[key] = payload

    def get_or_compute(
        self, vector: np.ndarray, compute: Callable[[], object]
    ) -> object:
        """Return the cached payload or compute, store, and return it.

        ``compute`` runs outside the lock (evaluations are slow; holding
        the lock would serialise the engines).  A rare duplicate compute
        for the same key is accepted — last writer wins, results being
        deterministic makes that harmless.
        """
        payload = self.get(vector)
        if payload is None:
            payload = compute()
            self.put(vector, payload)
        return payload

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters snapshot: hits, misses, evictions, size, capacity."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._store),
                "max_entries": self.max_entries,
                "hit_rate": (
                    self.hits / (self.hits + self.misses)
                    if (self.hits + self.misses)
                    else 0.0
                ),
            }

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
