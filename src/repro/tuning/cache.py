"""Optional evaluation memoisation — in-memory and persistent.

The simulator makes fitness a pure function of its inputs, which buys
two independent caching layers:

* :class:`EvaluationCache` — per-process LRU keyed on the *parameter
  vector* (an evaluator's scenario set is fixed, so the vector is the
  whole key).  Re-evaluating an identical vector — which population
  algorithms do when clones survive selection — is wasted work.  Keys
  round to a configurable precision, hits refresh recency, and the
  structure is thread-safe (AEDB-MLS's shared-memory engine evaluates
  from many threads).  Disabled by default in experiment presets — the
  paper does not cache — but exposed for the ablation benchmarks, the
  campaign executor's batched evaluation path, and interactive use.

* :class:`PersistentEvaluationCache` — the on-disk form (DESIGN.md §9):
  one JSONL sidecar mapping a content key over the full
  ``(scenario, params)`` description to the exact
  :class:`~repro.manet.metrics.BroadcastMetrics` of that single-network
  simulation.  Because the key covers *everything* the simulation
  depends on, the file can outlive the process, the campaign, and the
  machine: repeated sweeps over overlapping grids — or two different
  campaigns sharing scenario + params + seed cells — skip those
  simulations entirely.  Floats round-trip through JSON via ``repr``,
  so a hit returns metrics bit-identical to what was stored.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import IO, Callable

import numpy as np

from repro.manet.aedb import AEDBParams
from repro.manet.metrics import BroadcastMetrics
from repro.manet.scenarios import NetworkScenario
from repro.telemetry import get_recorder
from repro.utils.jsonl import ensure_line_boundary

__all__ = ["EvaluationCache", "PersistentEvaluationCache"]


class EvaluationCache:
    """Bounded LRU memoisation of ``vector -> payload`` evaluations."""

    def __init__(self, decimals: int = 9, max_entries: int = 100_000):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.decimals = int(decimals)
        self.max_entries = int(max_entries)
        self._store: OrderedDict[tuple[float, ...], object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def key_for(self, vector: np.ndarray) -> tuple[float, ...]:
        """Cache key: the vector rounded to ``decimals`` places."""
        return tuple(np.round(np.asarray(vector, dtype=float), self.decimals))

    # ------------------------------------------------------------------ #
    def get(self, vector: np.ndarray) -> object | None:
        """The cached payload, or ``None`` on a miss (both are counted).

        A hit moves the entry to the most-recently-used position.
        Payloads are never ``None`` (callers store metrics objects), so
        ``None`` unambiguously means absent.
        """
        key = self.key_for(vector)
        with self._lock:
            if key in self._store:
                self.hits += 1
                self._store.move_to_end(key)
                payload = self._store[key]
            else:
                self.misses += 1
                payload = None
        # Telemetry outside the lock: recorders may do I/O.
        get_recorder().count(
            "lru_cache.hit" if payload is not None else "lru_cache.miss"
        )
        return payload

    def put(self, vector: np.ndarray, payload: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if full."""
        key = self.key_for(vector)
        with self._lock:
            fill = key not in self._store
            if not fill:
                self._store.move_to_end(key)
            elif len(self._store) >= self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1
            self._store[key] = payload
        if fill:
            get_recorder().count("lru_cache.fill")

    def get_or_compute(
        self, vector: np.ndarray, compute: Callable[[], object]
    ) -> object:
        """Return the cached payload or compute, store, and return it.

        ``compute`` runs outside the lock (evaluations are slow; holding
        the lock would serialise the engines).  A rare duplicate compute
        for the same key is accepted — last writer wins, results being
        deterministic makes that harmless.
        """
        payload = self.get(vector)
        if payload is None:
            payload = compute()
            self.put(vector, payload)
        return payload

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters snapshot: hits, misses, evictions, size, capacity."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._store),
                "max_entries": self.max_entries,
                "hit_rate": (
                    self.hits / (self.hits + self.misses)
                    if (self.hits + self.misses)
                    else 0.0
                ),
            }

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


# --------------------------------------------------------------------- #
def _canonical_json(obj) -> str:
    """Deterministic JSON (sorted keys, fixed separators, repr floats)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class PersistentEvaluationCache:
    """Content-keyed on-disk memoisation of single-network simulations.

    One JSON line per entry::

        {"key": "<sha1>", "metrics": {...}, "v": 1}

    appended (and flushed) the moment a result exists, so a crash loses
    at most the line being written — and a torn tail line is skipped on
    the next load, never an error.  The writer contract is
    single-writer-per-file (the campaign executor's parent process, or
    one evaluator); any number of readers may load concurrently.

    Keys hash the *complete* simulation input: every scenario field
    (mobility seed, source, node count, mobility model, the full
    simulation/radio config) plus the exact parameter vector, under a
    format version.  Anything that would change the simulated result
    changes the key, so a stale entry can never be mistaken for the
    current cell's — the same discipline as the campaign store's cell
    keys.  Entries assume the scenario-default protocol seed (the only
    seed evaluators and campaign cells use); runs with an explicit
    ``protocol_seed`` must not be cached here.

    Usage::

        cache = PersistentEvaluationCache("runs/evaluations.jsonl")
        hit = cache.get_metrics(scenario, params)
        if hit is None:
            hit = BroadcastSimulator(scenario, params).run()
            cache.put_metrics(scenario, params, hit)
    """

    VERSION = 1

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._entries: dict[str, BroadcastMetrics] = {}
        self._lock = threading.Lock()
        self._writer: IO[str] | None = None
        self.hits = 0
        self.misses = 0
        self._load()

    # ------------------------------------------------------------------ #
    @classmethod
    def _read_entries(cls, path: Path) -> dict[str, BroadcastMetrics]:
        """Parse one cache file (missing file / torn or foreign lines ok)."""
        entries: dict[str, BroadcastMetrics] = {}
        try:
            text = path.read_text()
        except FileNotFoundError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crash mid-append
            if obj.get("v") != cls.VERSION:
                continue  # future/foreign format: ignore, don't fail
            try:
                metrics = BroadcastMetrics(**obj["metrics"])
            except (KeyError, TypeError):
                continue
            entries[obj["key"]] = metrics
        return entries

    def _load(self) -> None:
        self._entries.update(self._read_entries(self.path))

    def warm_from(self, path: str | Path) -> int:
        """Preload entries from *another* cache file, memory only.

        Nothing is written: hits on warmed entries are served from
        memory and never re-appended, so this cache's own file stays
        single-writer and append-only.  Keys already present keep their
        current value.  This is how a shard backend's workers each own
        their shard's sidecar while still starting warm from the parent
        campaign's cache.  Returns the number of entries added.
        """
        loaded = self._read_entries(Path(path))
        with self._lock:
            added = 0
            for key, metrics in loaded.items():
                if key not in self._entries:
                    self._entries[key] = metrics
                    added += 1
        return added

    @classmethod
    def simulation_key(
        cls, scenario: NetworkScenario, params: AEDBParams
    ) -> str:
        """Content key of one ``(scenario, params)`` simulation."""
        payload = {
            "v": cls.VERSION,
            # asdict recurses into the nested sim/radio/mobility configs,
            # so any config change reshapes the key.
            "scenario": asdict(scenario),
            "params": [float(v) for v in params.as_array()],
        }
        return hashlib.sha1(
            _canonical_json(payload).encode("utf-8")
        ).hexdigest()

    # ------------------------------------------------------------------ #
    def get_metrics(
        self, scenario: NetworkScenario, params: AEDBParams
    ) -> BroadcastMetrics | None:
        """The stored metrics, or ``None`` on a miss (both counted)."""
        key = self.simulation_key(scenario, params)
        with self._lock:
            metrics = self._entries.get(key)
            if metrics is not None:
                self.hits += 1
            else:
                self.misses += 1
        # Telemetry outside the lock: recorders may do I/O.
        get_recorder().count(
            "eval_cache.hit" if metrics is not None else "eval_cache.miss"
        )
        return metrics

    def put_metrics(
        self,
        scenario: NetworkScenario,
        params: AEDBParams,
        metrics: BroadcastMetrics,
    ) -> None:
        """Record one simulation result (appended to disk immediately)."""
        key = self.simulation_key(scenario, params)
        line = _canonical_json({
            "key": key,
            "metrics": {
                "coverage": metrics.coverage,
                "energy_dbm": metrics.energy_dbm,
                "forwardings": metrics.forwardings,
                "broadcast_time_s": metrics.broadcast_time_s,
                "n_nodes": metrics.n_nodes,
            },
            "v": self.VERSION,
        })
        with self._lock:
            if key in self._entries:
                return  # already on disk; keep the file append-only
            self._entries[key] = metrics
            if self._writer is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                ensure_line_boundary(self.path)
                self._writer = self.path.open("a", encoding="utf-8")
            self._writer.write(line + "\n")
            self._writer.flush()
        get_recorder().count("eval_cache.fill")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters snapshot: entries, disk size, session hits/misses."""
        with self._lock:
            entries = len(self._entries)
            hits, misses = self.hits, self.misses
        try:
            disk_bytes = self.path.stat().st_size
        except FileNotFoundError:
            disk_bytes = 0
        return {
            "path": str(self.path),
            "entries": entries,
            "disk_bytes": disk_bytes,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        }

    def close(self) -> None:
        """Release the append handle (idempotent; entries stay loaded)."""
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    def flush(self) -> int:
        """Delete the sidecar and every in-memory entry; return the count.

        The maintenance operation behind ``repro-aedb cache flush`` —
        use it when simulator semantics changed underneath recorded
        results (the version field guards *format* changes, not physics
        fixes).
        """
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            if self._writer is not None:
                self._writer.close()
                self._writer = None
            self.path.unlink(missing_ok=True)
        return removed

    def __enter__(self) -> "PersistentEvaluationCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
