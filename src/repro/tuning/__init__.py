"""The AEDB parameter-tuning problem (paper Sect. III-A, Eq. 1).

Five real variables (Table III domains), three minimised objectives —
energy used, negated coverage, number of forwardings — and the broadcast
time folded in as the constraint ``bt < 2 s``.  Fitness is the average of
the metrics over a fixed set of evaluation networks (10 per density in
the paper), computed by :class:`NetworkSetEvaluator`.
"""

from repro.tuning.bounds import VARIABLE_DOMAINS, variable_names
from repro.tuning.cache import EvaluationCache, PersistentEvaluationCache
from repro.tuning.evaluation import (
    NetworkSetEvaluator,
    ParallelNetworkSetEvaluator,
)
from repro.tuning.problem import AEDBTuningProblem, make_tuning_problem

__all__ = [
    "AEDBTuningProblem",
    "make_tuning_problem",
    "NetworkSetEvaluator",
    "ParallelNetworkSetEvaluator",
    "EvaluationCache",
    "PersistentEvaluationCache",
    "VARIABLE_DOMAINS",
    "variable_names",
]
