"""The AEDB tuning problem as a :class:`repro.moo.Problem` (Eq. 1).

Internal objective vector (all minimised):

====  =====================  ==========================
 idx   internal objective     paper objective
====  =====================  ==========================
  0    energy (dBm sum)       min energy used
  1    -coverage (devices)    max coverage
  2    forwardings            min forwardings
====  =====================  ==========================

Constraint: broadcast time < 2 s, exposed as
``constraint_violation = max(0, bt - 2)``.

:meth:`AEDBTuningProblem.display_objectives` flips coverage back to its
natural sign for reports, matching the paper's figures.
"""

from __future__ import annotations

import numpy as np

from repro.manet.aedb import AEDBParams
from repro.manet.metrics import BroadcastMetrics
from repro.moo.problem import Problem
from repro.moo.solution import FloatSolution
from repro.tuning.bounds import (
    BROADCAST_TIME_LIMIT_S,
    lower_bounds,
    upper_bounds,
    variable_names,
)
from repro.tuning.cache import EvaluationCache
from repro.tuning.evaluation import NetworkSetEvaluator

__all__ = ["AEDBTuningProblem", "make_tuning_problem"]


class AEDBTuningProblem(Problem):
    """5 variables, 3 objectives, 1 constraint — simulation-backed."""

    def __init__(
        self,
        evaluator: NetworkSetEvaluator,
        time_limit_s: float = BROADCAST_TIME_LIMIT_S,
    ):
        super().__init__(
            lower_bounds(),
            upper_bounds(),
            n_objectives=3,
            n_constraints=1,
            name=f"AEDB-{int(evaluator.scenarios[0].density_per_km2)}dev",
        )
        self.evaluator = evaluator
        self.time_limit_s = float(time_limit_s)

    # ------------------------------------------------------------------ #
    @property
    def objective_labels(self) -> tuple[str, ...]:
        return ("energy[dBm]", "-coverage[devices]", "forwardings")

    @property
    def density_per_km2(self) -> float:
        """Density label of the underlying evaluation networks."""
        return self.evaluator.scenarios[0].density_per_km2

    def display_objectives(self, objectives: np.ndarray) -> np.ndarray:
        """(energy, +coverage, forwardings) — the paper's axes."""
        out = np.atleast_2d(np.asarray(objectives, dtype=float)).copy()
        out[:, 1] = -out[:, 1]
        return out if np.asarray(objectives).ndim == 2 else out[0]

    # ------------------------------------------------------------------ #
    def params_of(self, solution: FloatSolution) -> AEDBParams:
        """Decode a solution's variables into protocol parameters."""
        return AEDBParams.from_array(self.clip(solution.variables))

    def _evaluate(self, solution: FloatSolution) -> None:
        metrics = self.evaluator.evaluate(self.params_of(solution))
        self._fill(solution, metrics)

    def _fill(self, solution: FloatSolution, metrics: BroadcastMetrics) -> None:
        solution.objectives[0] = metrics.energy_dbm
        solution.objectives[1] = -metrics.coverage
        solution.objectives[2] = metrics.forwardings
        solution.constraint_violation = max(
            metrics.broadcast_time_s - self.time_limit_s, 0.0
        )
        solution.attributes["metrics"] = metrics

    def variable_names(self) -> tuple[str, ...]:
        """The five AEDB parameter names, vector order."""
        return variable_names()


def make_tuning_problem(
    density_per_km2: float,
    n_networks: int = 10,
    master_seed: int = 0xAEDB,
    n_nodes: int | None = None,
    use_cache: bool = False,
    sim=None,
    mobility_model: str = "random-walk",
) -> AEDBTuningProblem:
    """One-call construction of the paper's tuning problem.

    ``n_networks``/``n_nodes`` shrink the evaluation set for tests and
    quick benchmarks; defaults reproduce the paper's setting.
    ``mobility_model`` selects the motion regime of the evaluation
    networks (campaign sweeps tune beyond the paper's random walk).
    """
    evaluator = NetworkSetEvaluator.for_density(
        density_per_km2,
        n_networks=n_networks,
        master_seed=master_seed,
        n_nodes=n_nodes,
        sim=sim,
        cache=EvaluationCache() if use_cache else None,
        mobility_model=mobility_model,
    )
    return AEDBTuningProblem(evaluator)
