"""Table III — the optimisation domains of the five AEDB variables.

Kept in one place (mirroring :attr:`repro.manet.aedb.AEDBParams.DOMAINS`)
so the tuning problem, the local-search operators, and the sensitivity
analysis all agree on variable order and ranges.  The sensitivity
analysis deliberately uses *wider* ranges (Sect. III-B); those live in
:mod:`repro.sensitivity.analysis`.
"""

from __future__ import annotations

import numpy as np

from repro.manet.aedb import AEDBParams

__all__ = [
    "VARIABLE_DOMAINS",
    "variable_names",
    "lower_bounds",
    "upper_bounds",
    "BROADCAST_TIME_LIMIT_S",
]

#: (name, lower, upper) for each optimisation variable, Table III order.
VARIABLE_DOMAINS: tuple[tuple[str, float, float], ...] = AEDBParams.DOMAINS

#: The feasibility constraint of Eq. 1: broadcast time must stay below 2 s.
BROADCAST_TIME_LIMIT_S: float = 2.0


def variable_names() -> tuple[str, ...]:
    """Variable names in canonical (vector) order."""
    return AEDBParams.names()


def lower_bounds() -> np.ndarray:
    """Lower bounds vector (Table III)."""
    return AEDBParams.lower_bounds()


def upper_bounds() -> np.ndarray:
    """Upper bounds vector (Table III)."""
    return AEDBParams.upper_bounds()
