"""Configuration dataclasses for the MANET simulator.

The defaults reproduce Table II of the paper plus the ns3 defaults the
paper inherits implicitly (log-distance propagation constants, energy
detection threshold, beacon cadence).  All values carry explicit units in
their names or docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_in_range, check_positive

__all__ = ["RadioConfig", "MobilityConfig", "SimulationConfig"]


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer model parameters.

    The propagation constants are ns3's ``LogDistancePropagationLossModel``
    defaults (exponent 3.0, reference loss 46.6777 dB at 1 m), and the
    detection threshold matches ns3's WiFi energy-detection default of
    -96 dBm.  With the paper's default transmission power of 16.02 dBm this
    yields a maximum decode range of ~151 m.
    """

    #: Default (maximum) transmission power, dBm — Table II.
    default_tx_power_dbm: float = 16.02
    #: Minimum power a frame needs at the receiver to be decodable, dBm.
    detection_threshold_dbm: float = -96.0
    #: Log-distance path-loss exponent (dimensionless).
    path_loss_exponent: float = 3.0
    #: Path loss at the reference distance, dB.
    reference_loss_db: float = 46.6777
    #: Reference distance for the path-loss model, m.
    reference_distance_m: float = 1.0
    #: SINR (dB) by which the strongest frame must exceed the interference
    #: power-sum to be captured during a collision.
    capture_threshold_db: float = 10.0
    #: Airtime of one broadcast data frame, s (~256 B at 1 Mb/s).
    frame_airtime_s: float = 0.002
    #: Lowest transmission power a node may select, dBm.  AEDB reduces
    #: power adaptively; this floor keeps the model physical.
    min_tx_power_dbm: float = -40.0
    #: Propagation family: "log-distance" (paper default), "friis",
    #: "two-ray" or "shadowed" — see :func:`repro.manet.propagation.build_path_loss`.
    propagation: str = "log-distance"
    #: Carrier frequency, GHz (friis / two-ray models only).
    frequency_ghz: float = 2.4
    #: Antenna height above ground, m (two-ray model only).
    antenna_height_m: float = 1.5
    #: Rough-channel offset scale, dB ("shadowed" model only).
    shadowing_sigma_db: float = 4.0
    #: Seed of the deterministic shadowing offsets.
    shadowing_seed: int = 0

    def __post_init__(self) -> None:
        check_positive(self.path_loss_exponent, "path_loss_exponent")
        check_positive(self.reference_distance_m, "reference_distance_m")
        check_positive(self.frame_airtime_s, "frame_airtime_s")
        check_positive(self.capture_threshold_db, "capture_threshold_db", strict=False)
        check_positive(self.frequency_ghz, "frequency_ghz")
        check_positive(self.antenna_height_m, "antenna_height_m")
        check_positive(self.shadowing_sigma_db, "shadowing_sigma_db", strict=False)
        if self.propagation not in ("log-distance", "friis", "two-ray", "shadowed"):
            raise ValueError(
                f"unknown propagation model {self.propagation!r}; choose "
                "from 'log-distance', 'friis', 'two-ray', 'shadowed'"
            )
        if self.min_tx_power_dbm > self.default_tx_power_dbm:
            raise ValueError(
                "min_tx_power_dbm must not exceed default_tx_power_dbm "
                f"({self.min_tx_power_dbm} > {self.default_tx_power_dbm})"
            )

    @property
    def max_range_m(self) -> float:
        """Decode range at default power in free air (no interference)."""
        from repro.manet.propagation import build_path_loss

        return build_path_loss(self).range_for_budget(
            self.default_tx_power_dbm - self.detection_threshold_dbm
        )


@dataclass(frozen=True)
class MobilityConfig:
    """Random-walk mobility parameters (Table II)."""

    #: Minimum node speed, m/s.
    speed_min_mps: float = 0.0
    #: Maximum node speed, m/s (2 m/s = 7.2 km/h in the paper).
    speed_max_mps: float = 2.0
    #: Direction & speed are redrawn every this many seconds.
    epoch_s: float = 20.0

    def __post_init__(self) -> None:
        check_positive(self.epoch_s, "epoch_s")
        check_positive(self.speed_min_mps, "speed_min_mps", strict=False)
        if self.speed_max_mps < self.speed_min_mps:
            raise ValueError(
                f"speed_max_mps ({self.speed_max_mps}) < "
                f"speed_min_mps ({self.speed_min_mps})"
            )


@dataclass(frozen=True)
class SimulationConfig:
    """Experiment timeline and arena parameters (Table II / Sect. V).

    The network evolves (mobility + beaconing) for ``warmup_s`` seconds so
    nodes are well distributed and neighbour tables are warm; the source
    then broadcasts, and the simulation stops at ``horizon_s``.
    """

    #: Side of the square arena, m.
    area_side_m: float = 500.0
    #: Broadcast injection time, s.
    warmup_s: float = 30.0
    #: Absolute end of simulation, s.
    horizon_s: float = 40.0
    #: HELLO beacon period, s (Sect. III: "every 1 second").
    beacon_interval_s: float = 1.0
    #: Neighbour-table entries expire after this many seconds without a
    #: fresh beacon (2.5 s = tolerate one lost beacon).
    neighbor_expiry_s: float = 2.5
    #: Uniform random medium-access jitter applied before any data
    #: transmission, s.  Desynchronises timers that expire simultaneously.
    mac_jitter_s: float = 0.0005
    radio: RadioConfig = field(default_factory=RadioConfig)
    mobility: MobilityConfig = field(default_factory=MobilityConfig)

    def __post_init__(self) -> None:
        check_positive(self.area_side_m, "area_side_m")
        check_positive(self.beacon_interval_s, "beacon_interval_s")
        check_positive(self.neighbor_expiry_s, "neighbor_expiry_s")
        check_positive(self.mac_jitter_s, "mac_jitter_s", strict=False)
        check_in_range(self.warmup_s, "warmup_s", 0.0, self.horizon_s)

    @property
    def broadcast_window_s(self) -> float:
        """Time available for the dissemination to complete, s."""
        return self.horizon_s - self.warmup_s
