"""Discrete-event MANET broadcast simulator (the repo's ns3 substitute).

This subpackage provides everything needed to *score* an AEDB parameter
configuration the way the paper does with ns3:

* :mod:`repro.manet.mobility` — random-walk node mobility in a bounded
  square arena (speed and heading redrawn every epoch, reflective walls);
* :mod:`repro.manet.propagation` — log-distance path loss with the ns3
  default constants, dBm in / dBm out;
* :mod:`repro.manet.beacons` — 1 Hz HELLO beaconing that maintains the
  per-node neighbour tables (neighbour id -> last beacon RX power), the
  cross-layer information AEDB relies on;
* :mod:`repro.manet.medium` — the shared radio medium: frame scheduling,
  half-duplex constraint and SINR-capture collision resolution;
* :mod:`repro.manet.aedb` — the AEDB protocol state machine (Fig. 1 of the
  paper): forwarding-area test, delay window with duplicate suppression,
  and adaptive transmission-power selection;
* :mod:`repro.manet.simulator` — ties the above into a single broadcast
  experiment and extracts the four metrics (coverage, energy, forwardings,
  broadcast time);
* :mod:`repro.manet.scenarios` — the fixed evaluation networks (10 per
  density, as in the paper);
* :mod:`repro.manet.runtime` — the per-scenario cache of the
  parameter-independent substrate (beacon-table timeline, position
  snapshots, path-loss model) that makes repeated evaluations on the
  same network skip the whole beacon cost;
* :mod:`repro.manet.shared` — the cross-process form of that cache:
  one shared-memory precompute per scenario, mapped read-only by every
  pool worker (DESIGN.md §9);
* :mod:`repro.manet.compiled` — dispatch for the optional compiled
  event core (``repro.manet._evcore``, built by ``setup.py
  build_ext``): bit-identical to the pure path, selected by
  ``REPRO_COMPILED``, falling back automatically (DESIGN.md §14).
"""

from repro.manet.aedb import AEDBParams
from repro.manet.compiled import (
    compiled_core_available,
    compiled_core_reason,
)
from repro.manet.config import (
    MobilityConfig,
    RadioConfig,
    SimulationConfig,
)
from repro.manet.events import make_event_queue
from repro.manet.metrics import BroadcastMetrics
from repro.manet.runtime import (
    ScenarioRuntime,
    clear_runtime_cache,
    get_runtime,
    runtime_cache_nbytes,
    runtime_cache_size,
    set_runtime_memoisation,
)
from repro.manet.scenarios import (
    MOBILITY_MODELS,
    NetworkScenario,
    make_scenarios,
    nodes_for_density,
)
from repro.manet.shared import (
    SharedRuntimeArena,
    SharedRuntimeHandle,
    attach_runtime,
    set_shared_runtimes,
    shared_runtimes_enabled,
)
from repro.manet.simulator import BroadcastSimulator, simulate_broadcast

__all__ = [
    "compiled_core_available",
    "compiled_core_reason",
    "make_event_queue",
    "AEDBParams",
    "RadioConfig",
    "MobilityConfig",
    "SimulationConfig",
    "BroadcastMetrics",
    "BroadcastSimulator",
    "simulate_broadcast",
    "NetworkScenario",
    "make_scenarios",
    "nodes_for_density",
    "MOBILITY_MODELS",
    "ScenarioRuntime",
    "get_runtime",
    "set_runtime_memoisation",
    "clear_runtime_cache",
    "runtime_cache_size",
    "runtime_cache_nbytes",
    "SharedRuntimeArena",
    "SharedRuntimeHandle",
    "attach_runtime",
    "shared_runtimes_enabled",
    "set_shared_runtimes",
]
