"""Node mobility models.

:class:`RandomWalkMobility` reproduces the paper's setting (Table II):
every node draws a uniform speed in ``[speed_min, speed_max]`` and a
uniform heading, keeps them for one epoch (20 s), then redraws; walls
reflect.  Positions at *arbitrary* times are computed analytically (no
trajectory integration): per epoch the motion is ballistic, and the
reflective walls are applied with the triangle-wave fold from
:mod:`repro.manet.geometry`.

:class:`StaticMobility` pins nodes in place — used by unit tests and by
deterministic protocol examples.
"""

from __future__ import annotations

import numpy as np

from repro.manet.config import MobilityConfig
from repro.manet.geometry import reflect_fold
from repro.utils.rng import as_generator

__all__ = [
    "MobilityModel",
    "RandomWalkMobility",
    "RandomWaypointMobility",
    "GaussMarkovMobility",
    "RandomDirectionMobility",
    "StaticMobility",
]


class MobilityModel:
    """Interface: positions of ``n_nodes`` at any time in ``[0, horizon]``."""

    n_nodes: int
    area_side_m: float

    def positions_at(self, time_s: float) -> np.ndarray:
        """``(n_nodes, 2)`` array of coordinates at ``time_s``."""
        raise NotImplementedError

    def positions_into(self, time_s: float, out: np.ndarray) -> np.ndarray:
        """Like :meth:`positions_at`, written into ``out`` (returned).

        The allocation-free spelling for per-frame hot paths that own a
        scratch buffer (DESIGN.md §11).  The default copies the pure
        :meth:`positions_at` answer; models with a cheap closed form
        (the paper's random walk) override it to fill ``out`` directly
        with the *same arithmetic*, so the bits match either way.
        """
        np.copyto(out, self.positions_at(time_s))
        return out

    def position_of(self, node: int, time_s: float) -> np.ndarray:
        """Convenience: ``(2,)`` coordinates of one node at ``time_s``."""
        return self.positions_at(time_s)[node]


class StaticMobility(MobilityModel):
    """Nodes that never move; positions given explicitly."""

    def __init__(self, positions: np.ndarray, area_side_m: float):
        pos = np.asarray(positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {pos.shape}")
        if np.any(pos < 0) or np.any(pos > area_side_m):
            raise ValueError("positions must lie inside the arena")
        self._pos = pos.copy()
        # Handed out directly by positions_at on every query, so it must
        # be read-only: one caller write would silently corrupt every
        # later query (and any runtime built on this trace).  Matches the
        # snapshot discipline of repro.manet.runtime.
        self._pos.setflags(write=False)
        self.n_nodes = pos.shape[0]
        self.area_side_m = float(area_side_m)

    def positions_at(self, time_s: float) -> np.ndarray:
        return self._pos


class RandomWalkMobility(MobilityModel):
    """Random-walk (random direction) mobility with reflective walls.

    The full trajectory over ``[0, horizon]`` is determined at construction
    from the RNG: initial positions are uniform in the arena; for each
    epoch ``k`` a per-node velocity vector is drawn; epoch-start positions
    are propagated with reflection.  ``positions_at`` is then O(n) with no
    state mutation, so it is safe to query out of order (the event queue
    does not process times monotonically across networks).
    """

    def __init__(
        self,
        n_nodes: int,
        area_side_m: float,
        horizon_s: float,
        config: MobilityConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if area_side_m <= 0:
            raise ValueError(f"area_side_m must be positive, got {area_side_m}")
        if horizon_s < 0:
            raise ValueError(f"horizon_s must be non-negative, got {horizon_s}")
        cfg = config or MobilityConfig()
        gen = as_generator(rng)

        self.n_nodes = int(n_nodes)
        self.area_side_m = float(area_side_m)
        self.horizon_s = float(horizon_s)
        self.config = cfg

        n_epochs = max(1, int(np.ceil(horizon_s / cfg.epoch_s)) + 1)
        self._epoch_s = cfg.epoch_s
        # Velocities per epoch: speed ~ U[min,max], heading ~ U[0, 2pi).
        speeds = gen.uniform(
            cfg.speed_min_mps, cfg.speed_max_mps, size=(n_epochs, n_nodes)
        )
        headings = gen.uniform(0.0, 2.0 * np.pi, size=(n_epochs, n_nodes))
        self._vel = np.stack(
            [speeds * np.cos(headings), speeds * np.sin(headings)], axis=-1
        )  # (epochs, n, 2)
        # Epoch-start positions, propagated with reflection.
        starts = np.empty((n_epochs, n_nodes, 2))
        starts[0] = gen.uniform(0.0, area_side_m, size=(n_nodes, 2))
        for k in range(1, n_epochs):
            unfolded = starts[k - 1] + self._vel[k - 1] * cfg.epoch_s
            starts[k] = reflect_fold(unfolded, area_side_m)
        self._starts = starts
        self._n_epochs = n_epochs
        # One epoch's displacement per axis is bounded by speed_max *
        # epoch_s; when that stays under the arena side, every unfolded
        # coordinate lies within one fold period of [0, side] and the
        # triangle-wave fold reduces to "add the period to the (rare)
        # negatives" — floor-mod is exact there, so the shortcut is
        # bit-identical to np.mod (positions_into uses it).
        self._fold_is_one_period = (
            cfg.speed_max_mps * cfg.epoch_s < area_side_m
        )
        # Per-epoch: can ANY coordinate go negative during the epoch?
        # x(dt) = start + v*dt is monotone in dt, so the epoch-wide
        # minimum is start + min(v, 0) * epoch_s; epochs where it stays
        # >= 0 let positions_into skip the negative-fix scan entirely.
        self._epoch_has_negative = (
            (self._starts + np.minimum(self._vel, 0.0) * cfg.epoch_s) < 0.0
        ).any(axis=(1, 2))

    def positions_at(self, time_s: float) -> np.ndarray:
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        k = min(int(time_s / self._epoch_s), self._n_epochs - 1)
        dt = time_s - k * self._epoch_s
        unfolded = self._starts[k] + self._vel[k] * dt
        return reflect_fold(unfolded, self.area_side_m)

    def positions_into(self, time_s: float, out: np.ndarray) -> np.ndarray:
        # Same expressions as positions_at, evaluated into ``out``:
        # ``starts + vel * dt`` (mul then add — addition commutes
        # exactly) and the triangle-wave fold's op sequence, so every
        # element is bit-identical to the allocating path.
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        k = min(int(time_s / self._epoch_s), self._n_epochs - 1)
        dt = time_s - k * self._epoch_s
        np.multiply(self._vel[k], dt, out)
        out += self._starts[k]
        side = self.area_side_m
        period = 2.0 * side
        if self._fold_is_one_period and dt <= self._epoch_s:
            # All coordinates sit in (-period, period): np.mod is the
            # identity for [0, period) and one exact-fmod + add for the
            # negatives — same bits, a fraction of the floor-mod cost.
            # Epochs that provably never dip below zero skip even the
            # negative scan.  (dt can only exceed the epoch length for
            # queries beyond the trace's last epoch — fold generically
            # there.)
            if self._epoch_has_negative[k]:
                negative = out < 0.0
                if negative.any():
                    out[negative] += period
        else:
            np.mod(out, period, out=out)
        np.subtract(out, side, out)
        np.abs(out, out)
        np.subtract(side, out, out)
        return out

    def velocities_at(self, time_s: float) -> np.ndarray:
        """Nominal ``(n, 2)`` velocity vectors (pre-reflection) at a time.

        Reflection flips velocity components at wall hits; this accessor
        reports the drawn epoch velocity, which is what the model "intends"
        and is sufficient for diagnostics.
        """
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        k = min(int(time_s / self._epoch_s), self._n_epochs - 1)
        return self._vel[k].copy()


class RandomWaypointMobility(MobilityModel):
    """Random-waypoint mobility (extension beyond the paper).

    Each node repeatedly picks a uniform destination in the arena and a
    uniform speed, travels there in a straight line, then immediately
    picks the next waypoint (no pause, for comparability with the
    random-walk setting).  Included to test the robustness of tuned AEDB
    configurations to the mobility model — see the extended examples.

    The itinerary over ``[0, horizon]`` is precomputed per node, so
    ``positions_at`` is pure like the other models.
    """

    def __init__(
        self,
        n_nodes: int,
        area_side_m: float,
        horizon_s: float,
        speed_min_mps: float = 0.1,
        speed_max_mps: float = 2.0,
        rng: np.random.Generator | int | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if area_side_m <= 0:
            raise ValueError(f"area_side_m must be positive, got {area_side_m}")
        if horizon_s < 0:
            raise ValueError(f"horizon_s must be non-negative, got {horizon_s}")
        if not 0 < speed_min_mps <= speed_max_mps:
            raise ValueError(
                "need 0 < speed_min_mps <= speed_max_mps, got "
                f"{speed_min_mps}, {speed_max_mps}"
            )
        gen = as_generator(rng)
        self.n_nodes = int(n_nodes)
        self.area_side_m = float(area_side_m)
        self.horizon_s = float(horizon_s)

        # Per node: lists of (start_time, start_pos, velocity, end_time).
        self._legs: list[list[tuple[float, np.ndarray, np.ndarray, float]]] = []
        for _ in range(n_nodes):
            legs = []
            t = 0.0
            pos = gen.uniform(0.0, area_side_m, size=2)
            while t <= horizon_s:
                target = gen.uniform(0.0, area_side_m, size=2)
                speed = float(gen.uniform(speed_min_mps, speed_max_mps))
                dist = float(np.linalg.norm(target - pos))
                duration = max(dist / speed, 1e-9)
                velocity = (target - pos) / duration
                legs.append((t, pos.copy(), velocity, t + duration))
                pos = target
                t += duration
            self._legs.append(legs)

    def positions_at(self, time_s: float) -> np.ndarray:
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        out = np.empty((self.n_nodes, 2))
        for i, legs in enumerate(self._legs):
            # Legs are time-ordered; find the active one.
            pos = legs[-1][1]
            for start, p0, vel, end in legs:
                if time_s < end:
                    pos = p0 + vel * (time_s - start)
                    break
            else:
                start, p0, vel, end = legs[-1]
                pos = p0 + vel * (end - start)  # parked at final waypoint
            out[i] = pos
        return np.clip(out, 0.0, self.area_side_m)


class GaussMarkovMobility(MobilityModel):
    """Gauss-Markov mobility (extension beyond the paper).

    Speed and heading evolve as first-order autoregressive processes:

    ``v_t = a v_{t-1} + (1 - a) v_mean + sqrt(1 - a^2) sigma_v w_t``

    (same form for the heading), so trajectories are *temporally
    correlated* — unlike the random walk's independent per-epoch redraws.
    ``alpha`` tunes the memory: 0 = memoryless (random-walk-like per
    tick), 1 = ballistic.  Used by the mobility-robustness studies to
    check that tuned AEDB configurations survive smoother motion.

    The trace is precomputed on a 1 s tick grid and linearly
    interpolated, so ``positions_at`` is pure and arena-convexity keeps
    interpolated points in bounds.  Walls reflect positions; headings
    near a wall are pulled toward the arena centre (the standard
    edge-declustering convention).
    """

    def __init__(
        self,
        n_nodes: int,
        area_side_m: float,
        horizon_s: float,
        alpha: float = 0.75,
        mean_speed_mps: float = 1.0,
        speed_sigma_mps: float = 0.5,
        heading_sigma_rad: float = 0.5,
        tick_s: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if area_side_m <= 0:
            raise ValueError(f"area_side_m must be positive, got {area_side_m}")
        if horizon_s < 0:
            raise ValueError(f"horizon_s must be non-negative, got {horizon_s}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if mean_speed_mps < 0:
            raise ValueError(f"mean_speed_mps must be >= 0, got {mean_speed_mps}")
        if tick_s <= 0:
            raise ValueError(f"tick_s must be positive, got {tick_s}")
        gen = as_generator(rng)

        self.n_nodes = int(n_nodes)
        self.area_side_m = float(area_side_m)
        self.horizon_s = float(horizon_s)
        self.alpha = float(alpha)
        self._tick_s = float(tick_s)

        n_ticks = max(2, int(np.ceil(horizon_s / tick_s)) + 2)
        pos = np.empty((n_ticks, n_nodes, 2))
        pos[0] = gen.uniform(0.0, area_side_m, size=(n_nodes, 2))
        speed = gen.uniform(0.0, 2.0 * mean_speed_mps, size=n_nodes)
        heading = gen.uniform(0.0, 2.0 * np.pi, size=n_nodes)
        noise_gain = np.sqrt(max(1.0 - alpha**2, 0.0))
        centre = 0.5 * area_side_m

        for k in range(1, n_ticks):
            # Pull the mean heading toward the centre near the walls so
            # nodes do not pile up at the boundary.
            to_centre = np.arctan2(
                centre - pos[k - 1, :, 1], centre - pos[k - 1, :, 0]
            )
            near_wall = (
                np.min(
                    np.minimum(pos[k - 1], area_side_m - pos[k - 1]), axis=1
                )
                < 0.1 * area_side_m
            )
            mean_heading = np.where(near_wall, to_centre, heading)

            speed = (
                alpha * speed
                + (1.0 - alpha) * mean_speed_mps
                + noise_gain * speed_sigma_mps * gen.standard_normal(n_nodes)
            )
            speed = np.clip(speed, 0.0, 2.0 * mean_speed_mps + 3.0 * speed_sigma_mps)
            heading = (
                alpha * heading
                + (1.0 - alpha) * mean_heading
                + noise_gain * heading_sigma_rad * gen.standard_normal(n_nodes)
            )
            step = (
                np.stack([np.cos(heading), np.sin(heading)], axis=-1)
                * speed[:, None]
                * tick_s
            )
            pos[k] = reflect_fold(pos[k - 1] + step, area_side_m)
        self._pos = pos
        self._n_ticks = n_ticks

    def positions_at(self, time_s: float) -> np.ndarray:
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        x = time_s / self._tick_s
        k = min(int(x), self._n_ticks - 2)
        frac = min(x - k, 1.0)
        return (1.0 - frac) * self._pos[k] + frac * self._pos[k + 1]


class RandomDirectionMobility(MobilityModel):
    """Random-direction mobility (extension beyond the paper).

    Each node picks a uniform heading and speed, travels in a straight
    line until it reaches the arena boundary, optionally pauses, then
    picks a fresh inward heading.  Compared to random waypoint this
    spreads node density uniformly instead of concentrating it in the
    centre — the other classic point of comparison for broadcast
    robustness.  Itineraries are precomputed; ``positions_at`` is pure.
    """

    def __init__(
        self,
        n_nodes: int,
        area_side_m: float,
        horizon_s: float,
        speed_min_mps: float = 0.5,
        speed_max_mps: float = 2.0,
        pause_s: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if area_side_m <= 0:
            raise ValueError(f"area_side_m must be positive, got {area_side_m}")
        if horizon_s < 0:
            raise ValueError(f"horizon_s must be non-negative, got {horizon_s}")
        if not 0 < speed_min_mps <= speed_max_mps:
            raise ValueError(
                "need 0 < speed_min_mps <= speed_max_mps, got "
                f"{speed_min_mps}, {speed_max_mps}"
            )
        if pause_s < 0:
            raise ValueError(f"pause_s must be >= 0, got {pause_s}")
        gen = as_generator(rng)
        self.n_nodes = int(n_nodes)
        self.area_side_m = float(area_side_m)
        self.horizon_s = float(horizon_s)

        side = self.area_side_m
        # Per node: (start_time, start_pos, velocity, end_time); a zero
        # velocity leg encodes a pause.
        self._legs: list[list[tuple[float, np.ndarray, np.ndarray, float]]] = []
        for _ in range(n_nodes):
            legs = []
            t = 0.0
            pos = gen.uniform(0.0, side, size=2)
            while t <= horizon_s:
                heading = float(gen.uniform(0.0, 2.0 * np.pi))
                speed = float(gen.uniform(speed_min_mps, speed_max_mps))
                vel = speed * np.array([np.cos(heading), np.sin(heading)])
                # Time to the nearest wall along this ray.
                with np.errstate(divide="ignore"):
                    t_wall = np.where(
                        vel > 0,
                        (side - pos) / np.where(vel > 0, vel, 1.0),
                        np.where(vel < 0, -pos / np.where(vel < 0, vel, -1.0), np.inf),
                    )
                duration = float(max(np.min(t_wall), 1e-9))
                legs.append((t, pos.copy(), vel, t + duration))
                pos = np.clip(pos + vel * duration, 0.0, side)
                t += duration
                if pause_s > 0 and t <= horizon_s:
                    legs.append((t, pos.copy(), np.zeros(2), t + pause_s))
                    t += pause_s
            self._legs.append(legs)

    def positions_at(self, time_s: float) -> np.ndarray:
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        out = np.empty((self.n_nodes, 2))
        for i, legs in enumerate(self._legs):
            pos = legs[-1][1]
            for start, p0, vel, end in legs:
                if time_s < end:
                    pos = p0 + vel * (time_s - start)
                    break
            else:
                start, p0, vel, end = legs[-1]
                pos = p0 + vel * (end - start)  # parked at the last wall
            out[i] = pos
        return np.clip(out, 0.0, self.area_side_m)
