"""The AEDB protocol (Adaptive Enhanced Distance-Based broadcasting).

Implements the Fig. 1 pseudocode of the paper (Ruiz & Bouvry 2010 protocol)
as a per-node state machine driven by the radio medium:

* **Forwarding-area test** — on the first copy of the broadcast message, a
  node computes the received power ``p`` and becomes a forwarding
  candidate only if the transmitter is far enough away, i.e. ``p`` is at
  most ``border_threshold``.  Candidates arm a random delay drawn
  uniformly from the delay interval.
* **Duplicate suppression** — copies heard while waiting update the
  strongest-copy tracker (the paper's ``pmin``; it tracks the *closest*
  transmitter, hence minimum distance == maximum power — see DESIGN.md
  §4/§7).  When the timer fires, the candidate re-runs the border test
  against the tracker and silently drops if some transmitter got (or was)
  too close.
* **Adaptive power** — a surviving candidate chooses its TX power from its
  beacon-derived neighbour table: if more than ``neighbors_threshold``
  neighbours sit inside its own forwarding area, it shrinks its range to
  the *closest* such potential forwarder (dense regime — shedding far
  neighbours saves energy at no connectivity cost); otherwise it reaches
  its *furthest* neighbour, excluding nodes it already heard the message
  from (sparse regime — preserve connectivity).  ``margin_threshold`` dB
  of headroom is added for mobility, and the result is clamped to the
  radio's power limits.

The class is medium-agnostic: the simulator wires ``on_receive`` to radio
deliveries and ``transmit`` back to the medium.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.manet.beacons import NeighborTables
from repro.manet.config import RadioConfig
from repro.manet.events import EventHandle, EventQueue
from repro.utils.rng import as_generator

__all__ = ["AEDBParams", "AEDBNodeState", "AEDBProtocol"]


@dataclass(frozen=True)
class AEDBParams:
    """The five tunable AEDB parameters (the optimisation variables).

    Domains are Table III of the paper; :meth:`clipped` projects arbitrary
    vectors back into them.  ``min_delay > max_delay`` is representable
    (the optimiser explores the box), and the protocol interprets the
    delay interval as ``[min(lo, hi), max(lo, hi)]``.
    """

    #: Lower edge of the forwarding-delay window, s.  Domain [0, 1].
    min_delay_s: float = 0.0
    #: Upper edge of the forwarding-delay window, s.  Domain [0, 5].
    max_delay_s: float = 1.0
    #: Forwarding-area border, dBm.  Domain [-95, -70].  A node forwards
    #: only if the strongest copy it heard is at most this power (i.e. all
    #: transmitters are far enough away).  Higher (less negative) values
    #: enlarge the forwarding area.
    border_threshold_dbm: float = -90.0
    #: Mobility headroom added to the estimated TX power, dB.  Domain [0, 3].
    margin_threshold_db: float = 1.0
    #: Density switch: with more than this many neighbours inside the
    #: node's forwarding area, power shrinks to the closest of them.
    #: Domain [0, 50].
    neighbors_threshold: float = 10.0

    #: Table III domains, in canonical variable order.
    DOMAINS = (
        ("min_delay_s", 0.0, 1.0),
        ("max_delay_s", 0.0, 5.0),
        ("border_threshold_dbm", -95.0, -70.0),
        ("margin_threshold_db", 0.0, 3.0),
        ("neighbors_threshold", 0.0, 50.0),
    )

    @classmethod
    def names(cls) -> tuple[str, ...]:
        """Canonical variable names, in vector order."""
        return tuple(name for name, _, _ in cls.DOMAINS)

    @classmethod
    def lower_bounds(cls) -> np.ndarray:
        """Vector of Table III lower bounds."""
        return np.array([lo for _, lo, _ in cls.DOMAINS])

    @classmethod
    def upper_bounds(cls) -> np.ndarray:
        """Vector of Table III upper bounds."""
        return np.array([hi for _, _, hi in cls.DOMAINS])

    @classmethod
    def from_array(cls, values) -> "AEDBParams":
        """Build from a length-5 vector in canonical order."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size != len(cls.DOMAINS):
            raise ValueError(
                f"expected {len(cls.DOMAINS)} values, got {arr.size}"
            )
        return cls(**{name: float(v) for (name, _, _), v in zip(cls.DOMAINS, arr)})

    def as_array(self) -> np.ndarray:
        """The parameter vector in canonical order."""
        return np.array([getattr(self, name) for name in self.names()])

    def clipped(self) -> "AEDBParams":
        """A copy with every field projected into its Table III domain."""
        updates = {}
        for name, lo, hi in self.DOMAINS:
            val = getattr(self, name)
            updates[name] = float(min(max(val, lo), hi))
        return replace(self, **updates)

    @property
    def delay_interval(self) -> tuple[float, float]:
        """The effective (ordered, non-negative) delay window in seconds."""
        lo, hi = self.min_delay_s, self.max_delay_s
        lo, hi = (lo, hi) if lo <= hi else (hi, lo)
        return (max(lo, 0.0), max(hi, 0.0))


class AEDBNodeState(enum.Enum):
    """Per-node protocol phase for the current broadcast message."""

    IDLE = "idle"  # never received the message
    WAITING = "waiting"  # received; forwarding timer armed
    DROPPED = "dropped"  # received; decided not to forward
    FORWARDED = "forwarded"  # received and retransmitted


#: Integer mirror of :class:`AEDBNodeState` kept in ``_state_code`` so the
#: batched delivery path can partition a receiver vector with one numpy
#: compare instead of a per-node Python state lookup.
_CODE_IDLE, _CODE_WAITING, _CODE_DROPPED, _CODE_FORWARDED = range(4)

#: At or below this many receivers, on_receive_batch runs the scalar
#: per-receiver state machine instead of the full-vector update: a
#: handful of list/array-scalar operations beats numpy's fixed per-op
#: dispatch.  Purely a wall-clock cutover — both sides are identical by
#: construction (the scalar loop IS the per-event code).
_SMALL_BATCH = 8
_CODE_FOR_STATE = {
    AEDBNodeState.IDLE: _CODE_IDLE,
    AEDBNodeState.WAITING: _CODE_WAITING,
    AEDBNodeState.DROPPED: _CODE_DROPPED,
    AEDBNodeState.FORWARDED: _CODE_FORWARDED,
}


#: Transmit callback: (sender, tx_power_dbm, time_s) -> None
TransmitFn = Callable[[int, float, float], None]


class AEDBProtocol:
    """AEDB instances for all nodes of one network, for one message."""

    def __init__(
        self,
        params: AEDBParams,
        n_nodes: int,
        queue: EventQueue,
        tables: NeighborTables,
        radio: RadioConfig,
        transmit: TransmitFn,
        rng: np.random.Generator | int | None = None,
        mac_jitter_s: float = 0.0005,
        record_decisions: bool = True,
    ):
        self.params = params
        self.n_nodes = int(n_nodes)
        self._queue = queue
        self._tables = tables
        self._radio = radio
        self._transmit = transmit
        # The protocol only ever draws uniforms, so any object with a
        # Generator-compatible ``uniform`` is accepted — in particular
        # the runtime's precomputed replay stream
        # (:class:`repro.manet.runtime.UniformStream`).
        if callable(getattr(rng, "uniform", None)):
            self._rng = rng
        else:
            self._rng = as_generator(rng)
        self._mac_jitter_s = float(mac_jitter_s)
        # Hot-path constants hoisted once (params and radio are frozen
        # dataclasses; attribute chains per delivery are measurable).
        self._border_dbm = float(params.border_threshold_dbm)
        self._delay_lo, self._delay_hi = params.delay_interval
        self._neighbors_threshold = float(params.neighbors_threshold)
        self._margin_db = float(params.margin_threshold_db)
        self._required_dbm = float(radio.detection_threshold_dbm)
        self._min_tx_dbm = float(radio.min_tx_power_dbm)
        self._max_tx_dbm = float(radio.default_tx_power_dbm)

        self.state = [AEDBNodeState.IDLE] * n_nodes
        #: Integer mirror of ``state`` (same transitions, numpy-typed) —
        #: the batched path's vectorised phase test.
        self._state_code = np.zeros(n_nodes, dtype=np.int8)
        # Scratch masks reused by every on_receive_batch call (ufuncs
        # write into them with ``out=``, so the warm path allocates
        # nothing per frame).
        self._batch_mask_a = np.empty(n_nodes, dtype=bool)
        self._batch_mask_b = np.empty(n_nodes, dtype=bool)
        # Phase population counters: the batch path skips whole blocks
        # (duplicate suppression / first-copy detection) when no node is
        # in the corresponding phase — plain-int tests instead of numpy
        # scans.  Maintained by _set_state and the batch entrant loop.
        self._n_idle = n_nodes
        self._n_waiting = 0
        # Scratch for _select_tx_power's masks (timer path; never live
        # across calls, and timer events cannot interleave with batch
        # deliveries within one event).
        self._select_mask = np.empty(n_nodes, dtype=bool)
        #: Batched-delivery cutover tallies (plain ints, maintained
        #: unconditionally — one add per frame): frames that ran the
        #: full-vector update vs the small-batch scalar loop.  The
        #: simulator ships them as telemetry counters under
        #: ``REPRO_TELEMETRY=deep``.
        self.batch_frames_vector = 0
        self.batch_frames_scalar = 0
        #: Strongest copy heard per node (the paper's ``pmin``), dBm.
        self.strongest_copy_dbm = np.full(n_nodes, -np.inf)
        #: Time of first successful reception per node (NaN = never).
        self.first_rx_time = np.full(n_nodes, np.nan)
        #: ``[i, j]`` — node ``i`` heard the message *from* node ``j``
        #: (``j`` already has it).  A boolean matrix so the power
        #: selection can mask candidates without a per-id Python scan.
        self._heard_from = np.zeros((n_nodes, n_nodes), dtype=bool)
        self._timers: list[EventHandle | None] = [None] * n_nodes
        self._record_decisions = bool(record_decisions)
        #: Decision log, for tests and diagnostics (empty when
        #: ``record_decisions=False`` — the per-event formatting is
        #: measurable in tight evaluation loops).
        self.decisions: list[tuple[float, int, str]] = []

    def _set_state(self, node: int, state: AEDBNodeState) -> None:
        """One transition, all representations (list, code mirror,
        phase counters)."""
        previous = self.state[node]
        if previous is AEDBNodeState.IDLE:
            self._n_idle -= 1
        elif previous is AEDBNodeState.WAITING:
            self._n_waiting -= 1
        if state is AEDBNodeState.WAITING:
            self._n_waiting += 1
        self.state[node] = state
        self._state_code[node] = _CODE_FOR_STATE[state]

    # ------------------------------------------------------------------ #
    # message origin                                                     #
    # ------------------------------------------------------------------ #
    def start_broadcast(self, source: int, time_s: float) -> None:
        """Source node seeds the dissemination at the default power."""
        if not (0 <= source < self.n_nodes):
            raise ValueError(f"source {source} out of range")
        self._set_state(source, AEDBNodeState.FORWARDED)
        self.first_rx_time[source] = time_s
        if self._record_decisions:
            self.decisions.append((time_s, source, "source"))
        self._transmit(source, self._radio.default_tx_power_dbm, time_s)

    # ------------------------------------------------------------------ #
    # reception path (Fig. 1 lines 1–15)                                 #
    # ------------------------------------------------------------------ #
    def _first_copy(self, node: int, rx_power_dbm: float, time_s: float) -> None:
        """First reception at an IDLE node (Fig. 1 lines 3–11).

        The single source of truth for the border test / timer arming —
        shared by :meth:`on_receive` and the small-batch loop of
        :meth:`on_receive_batch`, so the two delivery paths can never
        drift apart.
        """
        self.first_rx_time[node] = time_s
        self.strongest_copy_dbm[node] = rx_power_dbm
        if rx_power_dbm > self._border_dbm:
            # Transmitter too close: outside the forwarding area.
            self._set_state(node, AEDBNodeState.DROPPED)
            if self._record_decisions:
                self.decisions.append((time_s, node, "drop:border-first"))
            return
        self._set_state(node, AEDBNodeState.WAITING)
        lo, hi = self._delay_lo, self._delay_hi
        delay = float(self._rng.uniform(lo, hi)) if hi > lo else lo
        self._timers[node] = self._queue.schedule(
            time_s + delay, lambda t, n=node: self._on_timer(n, t)
        )
        if self._record_decisions:
            self.decisions.append((time_s, node, f"arm:{delay:.4f}"))

    def on_receive(self, node: int, sender: int, rx_power_dbm: float, time_s: float) -> None:
        """Radio delivered a copy of the message to ``node``."""
        self._heard_from[node, sender] = True
        state = self.state[node]

        if state is AEDBNodeState.IDLE:
            self._first_copy(node, rx_power_dbm, time_s)
        elif state is AEDBNodeState.WAITING:
            # Fig. 1 line 12: track the closest transmitter heard so far.
            if rx_power_dbm > self.strongest_copy_dbm[node]:
                self.strongest_copy_dbm[node] = rx_power_dbm
        # DROPPED / FORWARDED: duplicates are ignored.

    def on_receive_batch(
        self,
        receivers: np.ndarray,
        senders,
        rx_dbm: np.ndarray,
        time_s: float,
    ) -> None:
        """One frame's deliveries to every receiver as array ops.

        ``receivers`` is a boolean eligibility mask over ALL nodes and
        ``rx_dbm`` the full per-node rx-power vector, exactly as
        :class:`~repro.manet.medium.RadioMedium` computed them (both
        valid only for the duration of the call).  Semantically
        identical to calling :meth:`on_receive` once per masked node in
        ascending id order — the order the medium's per-event loop
        delivers.  The ordering contract (DESIGN.md §11): RNG delay
        draws happen only for nodes entering WAITING, in receiver
        order, and their timers are scheduled in that same order, so
        both the :class:`~repro.manet.runtime.UniformStream` replay
        cursor and the event queue's insertion-order tie-breaking stay
        aligned with the per-event path; the decision log interleaves
        border-drops and arms exactly as the loop would.

        ``senders`` is the transmitting node id (one frame has one
        sender; the plural mirrors the delivery-callback convention).
        All mask work runs full-vector into preallocated scratch — no
        per-receiver fancy indexing on the warm path.
        """
        if np.count_nonzero(receivers) <= _SMALL_BATCH:
            # Tiny frames (adapted-power transmissions reaching a
            # handful of nodes): below the cutover, numpy's fixed
            # per-op dispatch costs more than a few scalar updates, so
            # run the per-receiver state machine directly — same code
            # the per-event path runs, ascending id order, one Python
            # dispatch per frame instead of one per delivery.
            self.batch_frames_scalar += 1
            state = self.state
            strongest_arr = self.strongest_copy_dbm
            heard = self._heard_from
            for r in np.nonzero(receivers)[0].tolist():
                heard[r, senders] = True
                st = state[r]
                if st is AEDBNodeState.WAITING:
                    rx = rx_dbm[r]
                    if rx > strongest_arr[r]:
                        strongest_arr[r] = rx
                elif st is AEDBNodeState.IDLE:
                    self._first_copy(r, float(rx_dbm[r]), time_s)
            return
        self.batch_frames_vector += 1
        self._heard_from[:, senders] |= receivers
        codes = self._state_code
        strongest = self.strongest_copy_dbm

        # Duplicates heard while WAITING (Fig. 1 line 12), vectorised —
        # the warm path: after the first wave almost every delivery is a
        # duplicate-suppression update.  The phase counters gate each
        # block with a plain-int test, so frames resolving after every
        # timer fired (or after full coverage) skip the numpy work.
        if self._n_waiting:
            waiting = self._batch_mask_a
            np.equal(codes, _CODE_WAITING, out=waiting)
            waiting &= receivers
            if waiting.any():
                stronger = self._batch_mask_b
                np.greater(rx_dbm, strongest, out=stronger)
                stronger &= waiting
                if stronger.any():
                    np.copyto(strongest, rx_dbm, where=stronger)

        # First copies: border test vectorised, then one pass in receiver
        # order over the (at most once per node per run) IDLE entrants.
        if not self._n_idle:
            return
        idle = self._batch_mask_a  # waiting mask no longer needed
        np.equal(codes, _CODE_IDLE, out=idle)
        idle &= receivers
        if not idle.any():
            return
        idle_nodes = np.flatnonzero(idle)
        rx_idle = rx_dbm[idle_nodes]
        self.first_rx_time[idle_nodes] = time_s
        strongest[idle_nodes] = rx_idle
        dropped = rx_idle > self._border_dbm
        lo, hi = self._delay_lo, self._delay_hi
        record = self._record_decisions
        state, timers, code = self.state, self._timers, codes
        uniform, schedule = self._rng.uniform, self._queue.schedule
        self._n_idle -= idle_nodes.size
        for node, is_drop in zip(idle_nodes.tolist(), dropped.tolist()):
            if is_drop:
                state[node] = AEDBNodeState.DROPPED
                code[node] = _CODE_DROPPED
                if record:
                    self.decisions.append((time_s, node, "drop:border-first"))
                continue
            state[node] = AEDBNodeState.WAITING
            code[node] = _CODE_WAITING
            self._n_waiting += 1
            delay = float(uniform(lo, hi)) if hi > lo else lo
            timers[node] = schedule(
                time_s + delay, lambda t, n=node: self._on_timer(n, t)
            )
            if record:
                self.decisions.append((time_s, node, f"arm:{delay:.4f}"))
        # DROPPED / FORWARDED receivers: duplicates are ignored.

    # ------------------------------------------------------------------ #
    # timer path (Fig. 1 lines 16–26)                                    #
    # ------------------------------------------------------------------ #
    def _on_timer(self, node: int, time_s: float) -> None:
        self._timers[node] = None
        if self.state[node] is not AEDBNodeState.WAITING:
            return
        if self.strongest_copy_dbm[node] > self._border_dbm:
            # A transmitter got too close while we were waiting.
            self._set_state(node, AEDBNodeState.DROPPED)
            if self._record_decisions:
                self.decisions.append((time_s, node, "drop:border-timer"))
            return
        power = self._select_tx_power(node, time_s)
        self._set_state(node, AEDBNodeState.FORWARDED)
        if self._record_decisions:
            self.decisions.append((time_s, node, f"forward:{power:.2f}dBm"))
        jitter = (
            float(self._rng.uniform(0.0, self._mac_jitter_s))
            if self._mac_jitter_s > 0
            else 0.0
        )
        self._transmit(node, power, time_s + jitter)

    # ------------------------------------------------------------------ #
    # adaptive power selection (Fig. 1 lines 19–24)                      #
    # ------------------------------------------------------------------ #
    def _select_tx_power(self, node: int, time_s: float) -> float:
        tables = self._tables
        live = tables.live_mask(node, time_s)
        neighbor_rx = tables.rx_power[node]

        # Potential forwarders: live neighbours inside *this node's*
        # forwarding area (they would hear us below the border threshold,
        # by reciprocity of the beacon-measured loss).  Selections run
        # masked (argmax/argmin over ±inf-filled copies) instead of
        # materialising id vectors: a live neighbour always has a real
        # beacon rx, so the mask fill can never win the extremum, and
        # ties resolve to the lowest id exactly as the id-vector
        # spelling did.
        in_forwarding_area = np.less_equal(
            neighbor_rx, self._border_dbm, out=self._select_mask
        )
        in_forwarding_area &= live

        if np.count_nonzero(in_forwarding_area) > self._neighbors_threshold:
            # Dense regime: shrink range to the closest potential
            # forwarder (the strongest beacon among them) — far neighbours
            # are deliberately shed.
            target = int(
                np.where(in_forwarding_area, neighbor_rx, -np.inf).argmax()
            )
        else:
            # Sparse regime: reach the furthest neighbour, excluding nodes
            # the message was heard from (they already have it).  For
            # booleans ``live & ~heard`` is exactly ``live > heard`` —
            # one ufunc instead of two.
            candidates = np.greater(live, self._heard_from[node])
            if not candidates.any():
                # No usable neighbour knowledge: fall back to full power.
                return self._max_tx_dbm
            target = int(np.where(candidates, neighbor_rx, np.inf).argmin())

        loss = tables.link_loss_db(node, target)
        power = self._required_dbm + loss + self._margin_db
        return float(min(max(power, self._min_tx_dbm), self._max_tx_dbm))

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #
    def covered_nodes(self) -> np.ndarray:
        """Ids of nodes that received the message (including the source)."""
        return np.flatnonzero(~np.isnan(self.first_rx_time))

    def forwarder_nodes(self) -> np.ndarray:
        """Ids of nodes that (re)transmitted, including the source."""
        return np.array(
            [
                i
                for i in range(self.n_nodes)
                if self.state[i] is AEDBNodeState.FORWARDED
            ],
            dtype=int,
        )
