"""The AEDB protocol (Adaptive Enhanced Distance-Based broadcasting).

Implements the Fig. 1 pseudocode of the paper (Ruiz & Bouvry 2010 protocol)
as a per-node state machine driven by the radio medium:

* **Forwarding-area test** — on the first copy of the broadcast message, a
  node computes the received power ``p`` and becomes a forwarding
  candidate only if the transmitter is far enough away, i.e. ``p`` is at
  most ``border_threshold``.  Candidates arm a random delay drawn
  uniformly from the delay interval.
* **Duplicate suppression** — copies heard while waiting update the
  strongest-copy tracker (the paper's ``pmin``; it tracks the *closest*
  transmitter, hence minimum distance == maximum power — see DESIGN.md
  §4/§7).  When the timer fires, the candidate re-runs the border test
  against the tracker and silently drops if some transmitter got (or was)
  too close.
* **Adaptive power** — a surviving candidate chooses its TX power from its
  beacon-derived neighbour table: if more than ``neighbors_threshold``
  neighbours sit inside its own forwarding area, it shrinks its range to
  the *closest* such potential forwarder (dense regime — shedding far
  neighbours saves energy at no connectivity cost); otherwise it reaches
  its *furthest* neighbour, excluding nodes it already heard the message
  from (sparse regime — preserve connectivity).  ``margin_threshold`` dB
  of headroom is added for mobility, and the result is clamped to the
  radio's power limits.

The class is medium-agnostic: the simulator wires ``on_receive`` to radio
deliveries and ``transmit`` back to the medium.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.manet.beacons import NeighborTables
from repro.manet.config import RadioConfig
from repro.manet.events import EventHandle, EventQueue
from repro.utils.rng import as_generator

__all__ = ["AEDBParams", "AEDBNodeState", "AEDBProtocol"]


@dataclass(frozen=True)
class AEDBParams:
    """The five tunable AEDB parameters (the optimisation variables).

    Domains are Table III of the paper; :meth:`clipped` projects arbitrary
    vectors back into them.  ``min_delay > max_delay`` is representable
    (the optimiser explores the box), and the protocol interprets the
    delay interval as ``[min(lo, hi), max(lo, hi)]``.
    """

    #: Lower edge of the forwarding-delay window, s.  Domain [0, 1].
    min_delay_s: float = 0.0
    #: Upper edge of the forwarding-delay window, s.  Domain [0, 5].
    max_delay_s: float = 1.0
    #: Forwarding-area border, dBm.  Domain [-95, -70].  A node forwards
    #: only if the strongest copy it heard is at most this power (i.e. all
    #: transmitters are far enough away).  Higher (less negative) values
    #: enlarge the forwarding area.
    border_threshold_dbm: float = -90.0
    #: Mobility headroom added to the estimated TX power, dB.  Domain [0, 3].
    margin_threshold_db: float = 1.0
    #: Density switch: with more than this many neighbours inside the
    #: node's forwarding area, power shrinks to the closest of them.
    #: Domain [0, 50].
    neighbors_threshold: float = 10.0

    #: Table III domains, in canonical variable order.
    DOMAINS = (
        ("min_delay_s", 0.0, 1.0),
        ("max_delay_s", 0.0, 5.0),
        ("border_threshold_dbm", -95.0, -70.0),
        ("margin_threshold_db", 0.0, 3.0),
        ("neighbors_threshold", 0.0, 50.0),
    )

    @classmethod
    def names(cls) -> tuple[str, ...]:
        """Canonical variable names, in vector order."""
        return tuple(name for name, _, _ in cls.DOMAINS)

    @classmethod
    def lower_bounds(cls) -> np.ndarray:
        """Vector of Table III lower bounds."""
        return np.array([lo for _, lo, _ in cls.DOMAINS])

    @classmethod
    def upper_bounds(cls) -> np.ndarray:
        """Vector of Table III upper bounds."""
        return np.array([hi for _, _, hi in cls.DOMAINS])

    @classmethod
    def from_array(cls, values) -> "AEDBParams":
        """Build from a length-5 vector in canonical order."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size != len(cls.DOMAINS):
            raise ValueError(
                f"expected {len(cls.DOMAINS)} values, got {arr.size}"
            )
        return cls(**{name: float(v) for (name, _, _), v in zip(cls.DOMAINS, arr)})

    def as_array(self) -> np.ndarray:
        """The parameter vector in canonical order."""
        return np.array([getattr(self, name) for name in self.names()])

    def clipped(self) -> "AEDBParams":
        """A copy with every field projected into its Table III domain."""
        updates = {}
        for name, lo, hi in self.DOMAINS:
            val = getattr(self, name)
            updates[name] = float(min(max(val, lo), hi))
        return replace(self, **updates)

    @property
    def delay_interval(self) -> tuple[float, float]:
        """The effective (ordered, non-negative) delay window in seconds."""
        lo, hi = self.min_delay_s, self.max_delay_s
        lo, hi = (lo, hi) if lo <= hi else (hi, lo)
        return (max(lo, 0.0), max(hi, 0.0))


class AEDBNodeState(enum.Enum):
    """Per-node protocol phase for the current broadcast message."""

    IDLE = "idle"  # never received the message
    WAITING = "waiting"  # received; forwarding timer armed
    DROPPED = "dropped"  # received; decided not to forward
    FORWARDED = "forwarded"  # received and retransmitted


#: Transmit callback: (sender, tx_power_dbm, time_s) -> None
TransmitFn = Callable[[int, float, float], None]


class AEDBProtocol:
    """AEDB instances for all nodes of one network, for one message."""

    def __init__(
        self,
        params: AEDBParams,
        n_nodes: int,
        queue: EventQueue,
        tables: NeighborTables,
        radio: RadioConfig,
        transmit: TransmitFn,
        rng: np.random.Generator | int | None = None,
        mac_jitter_s: float = 0.0005,
        record_decisions: bool = True,
    ):
        self.params = params
        self.n_nodes = int(n_nodes)
        self._queue = queue
        self._tables = tables
        self._radio = radio
        self._transmit = transmit
        # The protocol only ever draws uniforms, so any object with a
        # Generator-compatible ``uniform`` is accepted — in particular
        # the runtime's precomputed replay stream
        # (:class:`repro.manet.runtime.UniformStream`).
        if callable(getattr(rng, "uniform", None)):
            self._rng = rng
        else:
            self._rng = as_generator(rng)
        self._mac_jitter_s = float(mac_jitter_s)

        self.state = [AEDBNodeState.IDLE] * n_nodes
        #: Strongest copy heard per node (the paper's ``pmin``), dBm.
        self.strongest_copy_dbm = np.full(n_nodes, -np.inf)
        #: Time of first successful reception per node (NaN = never).
        self.first_rx_time = np.full(n_nodes, np.nan)
        #: ``[i, j]`` — node ``i`` heard the message *from* node ``j``
        #: (``j`` already has it).  A boolean matrix so the power
        #: selection can mask candidates without a per-id Python scan.
        self._heard_from = np.zeros((n_nodes, n_nodes), dtype=bool)
        self._timers: list[EventHandle | None] = [None] * n_nodes
        self._record_decisions = bool(record_decisions)
        #: Decision log, for tests and diagnostics (empty when
        #: ``record_decisions=False`` — the per-event formatting is
        #: measurable in tight evaluation loops).
        self.decisions: list[tuple[float, int, str]] = []

    # ------------------------------------------------------------------ #
    # message origin                                                     #
    # ------------------------------------------------------------------ #
    def start_broadcast(self, source: int, time_s: float) -> None:
        """Source node seeds the dissemination at the default power."""
        if not (0 <= source < self.n_nodes):
            raise ValueError(f"source {source} out of range")
        self.state[source] = AEDBNodeState.FORWARDED
        self.first_rx_time[source] = time_s
        if self._record_decisions:
            self.decisions.append((time_s, source, "source"))
        self._transmit(source, self._radio.default_tx_power_dbm, time_s)

    # ------------------------------------------------------------------ #
    # reception path (Fig. 1 lines 1–15)                                 #
    # ------------------------------------------------------------------ #
    def on_receive(self, node: int, sender: int, rx_power_dbm: float, time_s: float) -> None:
        """Radio delivered a copy of the message to ``node``."""
        self._heard_from[node, sender] = True
        state = self.state[node]

        if state is AEDBNodeState.IDLE:
            self.first_rx_time[node] = time_s
            self.strongest_copy_dbm[node] = rx_power_dbm
            if rx_power_dbm > self.params.border_threshold_dbm:
                # Transmitter too close: outside the forwarding area.
                self.state[node] = AEDBNodeState.DROPPED
                if self._record_decisions:
                    self.decisions.append((time_s, node, "drop:border-first"))
                return
            self.state[node] = AEDBNodeState.WAITING
            lo, hi = self.params.delay_interval
            delay = float(self._rng.uniform(lo, hi)) if hi > lo else lo
            self._timers[node] = self._queue.schedule(
                time_s + delay, lambda t, n=node: self._on_timer(n, t)
            )
            if self._record_decisions:
                self.decisions.append((time_s, node, f"arm:{delay:.4f}"))
        elif state is AEDBNodeState.WAITING:
            # Fig. 1 line 12: track the closest transmitter heard so far.
            if rx_power_dbm > self.strongest_copy_dbm[node]:
                self.strongest_copy_dbm[node] = rx_power_dbm
        # DROPPED / FORWARDED: duplicates are ignored.

    # ------------------------------------------------------------------ #
    # timer path (Fig. 1 lines 16–26)                                    #
    # ------------------------------------------------------------------ #
    def _on_timer(self, node: int, time_s: float) -> None:
        self._timers[node] = None
        if self.state[node] is not AEDBNodeState.WAITING:
            return
        if self.strongest_copy_dbm[node] > self.params.border_threshold_dbm:
            # A transmitter got too close while we were waiting.
            self.state[node] = AEDBNodeState.DROPPED
            if self._record_decisions:
                self.decisions.append((time_s, node, "drop:border-timer"))
            return
        power = self._select_tx_power(node, time_s)
        self.state[node] = AEDBNodeState.FORWARDED
        if self._record_decisions:
            self.decisions.append((time_s, node, f"forward:{power:.2f}dBm"))
        jitter = (
            float(self._rng.uniform(0.0, self._mac_jitter_s))
            if self._mac_jitter_s > 0
            else 0.0
        )
        self._transmit(node, power, time_s + jitter)

    # ------------------------------------------------------------------ #
    # adaptive power selection (Fig. 1 lines 19–24)                      #
    # ------------------------------------------------------------------ #
    def _select_tx_power(self, node: int, time_s: float) -> float:
        tables = self._tables
        live = tables.live_mask(node, time_s)
        neighbor_rx = tables.rx_power[node]

        # Potential forwarders: live neighbours inside *this node's*
        # forwarding area (they would hear us below the border threshold,
        # by reciprocity of the beacon-measured loss).
        in_forwarding_area = live & (
            neighbor_rx <= self.params.border_threshold_dbm
        )
        pf_ids = np.nonzero(in_forwarding_area)[0]

        required = self._radio.detection_threshold_dbm

        if pf_ids.size > self.params.neighbors_threshold:
            # Dense regime: shrink range to the closest potential
            # forwarder (the strongest beacon among them) — far neighbours
            # are deliberately shed.
            target = pf_ids[int(np.argmax(neighbor_rx[pf_ids]))]
        else:
            # Sparse regime: reach the furthest neighbour, excluding nodes
            # the message was heard from (they already have it).
            candidates = np.nonzero(live & ~self._heard_from[node])[0]
            if candidates.size == 0:
                # No usable neighbour knowledge: fall back to full power.
                return self._radio.default_tx_power_dbm
            target = candidates[int(np.argmin(neighbor_rx[candidates]))]

        loss = tables.link_loss_db(node, int(target))
        power = required + loss + self.params.margin_threshold_db
        return float(
            min(
                max(power, self._radio.min_tx_power_dbm),
                self._radio.default_tx_power_dbm,
            )
        )

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #
    def covered_nodes(self) -> np.ndarray:
        """Ids of nodes that received the message (including the source)."""
        return np.flatnonzero(~np.isnan(self.first_rx_time))

    def forwarder_nodes(self) -> np.ndarray:
        """Ids of nodes that (re)transmitted, including the source."""
        return np.array(
            [
                i
                for i in range(self.n_nodes)
                if self.state[i] is AEDBNodeState.FORWARDED
            ],
            dtype=int,
        )
