"""Broadcast performance metrics (Sect. III-A of the paper).

The four standard metrics, with the exact conventions used to match the
paper's Fig. 6 axes (see DESIGN.md §4):

* **coverage** — number of devices, excluding the source, that received
  the broadcast message;
* **energy** — the sum of the transmission powers of *all* data frames in
  raw dBm (the only reading consistent with the paper's negative-valued
  energy axis);
* **forwardings** — number of devices that retransmitted after receiving
  (the source's seed transmission is not a forwarding);
* **broadcast_time** — time between the source's transmission and the last
  first-reception.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = ["BroadcastMetrics", "aggregate_metrics"]


@dataclass(frozen=True)
class BroadcastMetrics:
    """Outcome of one simulated dissemination."""

    #: Devices (excl. source) that received the message.
    coverage: float
    #: Sum of data-frame TX powers, raw dBm.
    energy_dbm: float
    #: Retransmissions (excl. the source's seed frame).
    forwardings: float
    #: Last first-reception minus source send time, s (0 if nobody heard).
    broadcast_time_s: float
    #: Number of nodes in the network (for coverage ratios).
    n_nodes: int = 0

    @property
    def coverage_ratio(self) -> float:
        """Coverage as a fraction of the non-source population."""
        if self.n_nodes <= 1:
            return 0.0
        return self.coverage / (self.n_nodes - 1)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """(coverage, energy, forwardings, broadcast_time)."""
        return (
            self.coverage,
            self.energy_dbm,
            self.forwardings,
            self.broadcast_time_s,
        )

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"coverage={self.coverage:.1f}/{max(self.n_nodes - 1, 0)} "
            f"energy={self.energy_dbm:.1f}dBm "
            f"forwardings={self.forwardings:.1f} "
            f"bt={self.broadcast_time_s:.3f}s"
        )


def aggregate_metrics(samples: list[BroadcastMetrics]) -> BroadcastMetrics:
    """Average a list of per-network metrics (the paper's 10-network mean).

    ``n_nodes`` must agree across samples (they are the same scenario at
    different seeds); it is carried through unchanged.
    """
    if not samples:
        raise ValueError("cannot aggregate an empty metrics list")
    n_nodes = {m.n_nodes for m in samples}
    if len(n_nodes) != 1:
        raise ValueError(f"mixed n_nodes in aggregation: {sorted(n_nodes)}")
    means = {
        f.name: float(np.mean([getattr(m, f.name) for m in samples]))
        for f in fields(BroadcastMetrics)
        if f.name != "n_nodes"
    }
    return BroadcastMetrics(n_nodes=n_nodes.pop(), **means)
