"""Minimal discrete-event simulation core.

A binary-heap event queue with stable tie-breaking (events scheduled at
identical timestamps fire in insertion order), which keeps runs bit-for-bit
reproducible.  Callbacks receive the firing time; cancellation is handled
with tombstones so it is O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["EventQueue", "EventHandle", "make_event_queue"]


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.schedule`; supports
    cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True


#: Shared handle for :meth:`EventQueue.post` events — never cancelled.
_NEVER_CANCELLED = EventHandle()


class EventQueue:
    """Time-ordered callback queue.

    ``schedule(t, fn)`` enqueues ``fn`` to run at simulated time ``t``;
    ``run_until(horizon)`` pops and executes events in time order until the
    queue drains or the next event lies beyond the horizon.  Scheduling in
    the past (before the most recently fired event) is rejected — that
    always indicates a protocol-logic bug.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EventHandle, Callable[[float], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._fired = 0

    @property
    def now(self) -> float:
        """Timestamp of the most recently fired event (0 before any)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for _, _, h, _ in self._heap if not h.cancelled)

    @property
    def fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    def schedule(self, time_s: float, callback: Callable[[float], None]) -> EventHandle:
        """Enqueue ``callback`` to fire at ``time_s``; returns a handle."""
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule at {time_s} (current time {self._now})"
            )
        handle = EventHandle()
        heapq.heappush(self._heap, (time_s, next(self._counter), handle, callback))
        return handle

    def post(self, time_s: float, callback: Callable[[float], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle.

        Identical ordering and causality semantics; the event shares one
        immortal never-cancelled handle, which spares the per-event
        allocation on paths that never cancel (frame starts/ends, beacon
        rounds — the bulk of a simulation's events).
        """
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule at {time_s} (current time {self._now})"
            )
        heapq.heappush(
            self._heap, (time_s, next(self._counter), _NEVER_CANCELLED, callback)
        )

    def run_until(self, horizon_s: float) -> int:
        """Fire events with timestamp <= horizon; return how many fired."""
        fired_here = 0
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= horizon_s:
            time_s, _, handle, callback = pop(heap)
            if handle.cancelled:
                continue
            self._now = time_s
            callback(time_s)
            self._fired += 1
            fired_here += 1
        # Advance the clock to the horizon unconditionally: the caller has
        # observed time ``horizon_s``, so a later ``schedule()`` before it
        # would violate causality even when the heap still holds events
        # (or cancelled tombstones) beyond the horizon.
        self._now = max(self._now, horizon_s)
        return fired_here

    def run_all(self, hard_limit: int = 10_000_000) -> int:
        """Fire every pending event (guarded against runaway schedules)."""
        fired_here = 0
        while self._heap:
            if fired_here >= hard_limit:
                raise RuntimeError("event limit exceeded; runaway schedule?")
            time_s, _, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time_s
            callback(time_s)
            self._fired += 1
            fired_here += 1
        return fired_here


def make_event_queue(mode: str | None = None):
    """An event queue honouring the compiled-core mode (DESIGN.md §14).

    Returns the compiled :class:`repro.manet._evcore.EventQueue` when the
    extension is usable and the mode allows it, else the pure-Python
    :class:`EventQueue`.  The two are drop-in interchangeable: identical
    (time, insertion-order) pop ordering, tombstone cancellation, clock
    semantics, and error messages — pinned by
    ``tests/manet/test_events_spec.py`` running every case against both.

    ``mode`` is a pre-resolved ``auto``/``on``/``off`` (e.g. a
    simulator's ``compiled=`` argument); ``None`` reads
    ``REPRO_COMPILED``.  ``on`` with no usable extension raises.
    """
    from repro.manet.compiled import (
        compiled_core_available,
        compiled_core_reason,
        resolve_compiled_mode,
    )

    mode = resolve_compiled_mode(mode)
    if mode != "off" and compiled_core_available():
        from repro.manet import _evcore

        return _evcore.EventQueue()
    if mode == "on":
        raise RuntimeError(
            "REPRO_COMPILED=on but the compiled event core is unavailable: "
            f"{compiled_core_reason()}"
        )
    return EventQueue()
