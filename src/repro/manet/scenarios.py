"""Evaluation network scenarios.

The paper scores every candidate configuration on the *same* 10 random
networks per density and averages the metrics (Sect. V).  A scenario here
bundles everything that defines one such network: node count, mobility
trace seed, mobility model, and source node.  Scenario construction is
keyed off a master seed through :class:`repro.utils.rng.RngFactory`, so
two processes asking for "density 300, network 7" always get the
identical network.

Densities are devices/km²; with the paper's 500 m × 500 m arena (0.25 km²)
the three studied densities map to 25 / 50 / 75 nodes, which matches the
coverage axes of the paper's Fig. 6.

Beyond the paper, scenarios can select any of the mobility models in
:mod:`repro.manet.mobility` via ``mobility_model`` — the seed material is
shared across models, so a campaign sweeping the mobility axis compares
the *same* network population under different motion regimes.

Because a frozen scenario always materialises the identical trace,
:meth:`NetworkScenario.build_mobility` memoises the built model per
process (an optimiser evaluating thousands of candidates otherwise
rebuilds the same arrays for every one).  Opt out for memory-constrained
runs with :func:`set_mobility_memoisation` or ``REPRO_MOBILITY_MEMO=0``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.manet.config import SimulationConfig
from repro.manet.mobility import (
    GaussMarkovMobility,
    MobilityModel,
    RandomDirectionMobility,
    RandomWalkMobility,
    RandomWaypointMobility,
)
from repro.utils import flags
from repro.utils.rng import RngFactory

__all__ = [
    "NetworkScenario",
    "nodes_for_density",
    "make_scenarios",
    "set_mobility_memoisation",
    "clear_mobility_cache",
    "mobility_cache_size",
    "MOBILITY_MODELS",
    "PAPER_DENSITIES",
]

#: The three densities studied in the paper (devices/km²).
PAPER_DENSITIES = (100, 200, 300)

#: Mobility models reachable from scenario construction.  "random-walk"
#: is the paper's setting (Table II); the others are the extension models
#: of :mod:`repro.manet.mobility`, exposed for campaign sweeps.
MOBILITY_MODELS = (
    "random-walk",
    "random-waypoint",
    "gauss-markov",
    "random-direction",
)


def nodes_for_density(density_per_km2: float, area_side_m: float = 500.0) -> int:
    """Device count for a density over the square arena (rounded)."""
    if density_per_km2 <= 0:
        raise ValueError(f"density must be positive, got {density_per_km2}")
    area_km2 = (area_side_m / 1000.0) ** 2
    n = int(round(density_per_km2 * area_km2))
    return max(n, 2)


# --------------------------------------------------------------------- #
# Per-process trace memoisation.  Mobility models are pure (positions_at
# never mutates state), so one instance can safely serve every simulator
# that shares the scenario — across threads too.  Lookups take the lock;
# a raced duplicate build is accepted (results are deterministic).
# Bounded LRU: the win case is an optimiser re-evaluating a fixed
# 10-scenario set, so a small cap gives the full hit rate while a
# long-lived campaign worker streaming thousands of distinct scenarios
# cannot grow its memory without bound.
_MOBILITY_MEMO: OrderedDict["NetworkScenario", MobilityModel] = OrderedDict()
_MEMO_MAX_ENTRIES = 128
_MEMO_LOCK = threading.Lock()
_MEMO_ENABLED = flags.read_bool("REPRO_MOBILITY_MEMO")


def set_mobility_memoisation(enabled: bool) -> None:
    """Turn trace memoisation on or off (off also drops cached traces)."""
    global _MEMO_ENABLED
    _MEMO_ENABLED = bool(enabled)
    if not _MEMO_ENABLED:
        clear_mobility_cache()


def clear_mobility_cache() -> None:
    """Drop every memoised mobility trace in this process."""
    with _MEMO_LOCK:
        _MOBILITY_MEMO.clear()


def mobility_cache_size() -> int:
    """Number of traces currently memoised."""
    with _MEMO_LOCK:
        return len(_MOBILITY_MEMO)


@dataclass(frozen=True)
class NetworkScenario:
    """One reproducible evaluation network."""

    #: Devices/km² this scenario belongs to (label only).
    density_per_km2: float
    #: Index of the network within its density's evaluation set.
    network_index: int
    #: Number of devices.
    n_nodes: int
    #: Seed material for the mobility trace.
    mobility_seed: int
    #: Node that injects the broadcast at warmup time.
    source: int
    #: Simulation timeline/arena (shared across the set).
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    #: Motion regime, one of :data:`MOBILITY_MODELS`.
    mobility_model: str = "random-walk"

    def build_mobility(self) -> MobilityModel:
        """Materialise the mobility trace (memoised per process, LRU)."""
        if not _MEMO_ENABLED:
            return self._materialise_mobility()
        with _MEMO_LOCK:
            cached = _MOBILITY_MEMO.get(self)
            if cached is not None:
                _MOBILITY_MEMO.move_to_end(self)
                return cached
        model = self._materialise_mobility()
        with _MEMO_LOCK:
            existing = _MOBILITY_MEMO.get(self)
            if existing is not None:
                return existing
            if len(_MOBILITY_MEMO) >= _MEMO_MAX_ENTRIES:
                _MOBILITY_MEMO.popitem(last=False)
            _MOBILITY_MEMO[self] = model
            return model

    def _materialise_mobility(self) -> MobilityModel:
        rng = np.random.default_rng(self.mobility_seed)
        mob = self.sim.mobility
        # Every model honours the scenario's configured speed range so a
        # mobility-axis sweep compares motion *shapes*, not silently
        # different speed regimes.  Waypoint/direction itineraries need a
        # strictly positive minimum speed (a zero-speed leg never ends),
        # so the configured floor is clamped to 0.1 m/s for them.
        lo = max(mob.speed_min_mps, 0.1)
        hi = max(mob.speed_max_mps, lo)
        if self.mobility_model == "random-walk":
            return RandomWalkMobility(
                n_nodes=self.n_nodes,
                area_side_m=self.sim.area_side_m,
                horizon_s=self.sim.horizon_s,
                config=mob,
                rng=rng,
            )
        if self.mobility_model == "random-waypoint":
            return RandomWaypointMobility(
                self.n_nodes, self.sim.area_side_m, self.sim.horizon_s,
                speed_min_mps=lo, speed_max_mps=hi, rng=rng,
            )
        if self.mobility_model == "gauss-markov":
            return GaussMarkovMobility(
                self.n_nodes, self.sim.area_side_m, self.sim.horizon_s,
                mean_speed_mps=0.5 * (mob.speed_min_mps + mob.speed_max_mps),
                rng=rng,
            )
        if self.mobility_model == "random-direction":
            return RandomDirectionMobility(
                self.n_nodes, self.sim.area_side_m, self.sim.horizon_s,
                speed_min_mps=lo, speed_max_mps=hi, rng=rng,
            )
        raise ValueError(
            f"unknown mobility model {self.mobility_model!r}; "
            f"choose from {MOBILITY_MODELS}"
        )


def make_scenarios(
    density_per_km2: float,
    n_networks: int = 10,
    sim: SimulationConfig | None = None,
    master_seed: int = 0xAEDB,
    n_nodes: int | None = None,
    mobility_model: str = "random-walk",
) -> list[NetworkScenario]:
    """The fixed evaluation set for one density.

    ``n_networks`` defaults to the paper's 10; tests and quick benchmarks
    pass fewer.  ``n_nodes`` overrides the density-derived count (used by
    fast test fixtures); the density label is kept for bookkeeping.
    ``mobility_model`` selects the motion regime without perturbing the
    seed material — the same networks move differently, which is what a
    mobility-axis sweep wants to compare.
    """
    if n_networks <= 0:
        raise ValueError(f"n_networks must be positive, got {n_networks}")
    if mobility_model not in MOBILITY_MODELS:
        raise ValueError(
            f"unknown mobility model {mobility_model!r}; "
            f"choose from {MOBILITY_MODELS}"
        )
    cfg = sim or SimulationConfig()
    count = n_nodes if n_nodes is not None else nodes_for_density(
        density_per_km2, cfg.area_side_m
    )
    factory = RngFactory(master_seed)
    scenarios = []
    for k in range(n_networks):
        gen = factory.generator("scenario", density_per_km2, count, k)
        seed = int(gen.integers(0, 2**32 - 1))
        source = int(gen.integers(0, count))
        scenarios.append(
            NetworkScenario(
                density_per_km2=float(density_per_km2),
                network_index=k,
                n_nodes=count,
                mobility_seed=seed,
                source=source,
                sim=cfg,
                mobility_model=mobility_model,
            )
        )
    return scenarios
