"""Evaluation network scenarios.

The paper scores every candidate configuration on the *same* 10 random
networks per density and averages the metrics (Sect. V).  A scenario here
bundles everything that defines one such network: node count, mobility
trace seed, and source node.  Scenario construction is keyed off a master
seed through :class:`repro.utils.rng.RngFactory`, so two processes asking
for "density 300, network 7" always get the identical network.

Densities are devices/km²; with the paper's 500 m × 500 m arena (0.25 km²)
the three studied densities map to 25 / 50 / 75 nodes, which matches the
coverage axes of the paper's Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.manet.config import SimulationConfig
from repro.manet.mobility import RandomWalkMobility
from repro.utils.rng import RngFactory

__all__ = [
    "NetworkScenario",
    "nodes_for_density",
    "make_scenarios",
    "PAPER_DENSITIES",
]

#: The three densities studied in the paper (devices/km²).
PAPER_DENSITIES = (100, 200, 300)


def nodes_for_density(density_per_km2: float, area_side_m: float = 500.0) -> int:
    """Device count for a density over the square arena (rounded)."""
    if density_per_km2 <= 0:
        raise ValueError(f"density must be positive, got {density_per_km2}")
    area_km2 = (area_side_m / 1000.0) ** 2
    n = int(round(density_per_km2 * area_km2))
    return max(n, 2)


@dataclass(frozen=True)
class NetworkScenario:
    """One reproducible evaluation network."""

    #: Devices/km² this scenario belongs to (label only).
    density_per_km2: float
    #: Index of the network within its density's evaluation set.
    network_index: int
    #: Number of devices.
    n_nodes: int
    #: Seed material for the mobility trace.
    mobility_seed: int
    #: Node that injects the broadcast at warmup time.
    source: int
    #: Simulation timeline/arena (shared across the set).
    sim: SimulationConfig = field(default_factory=SimulationConfig)

    def build_mobility(self) -> RandomWalkMobility:
        """Materialise the mobility trace for this scenario."""
        return RandomWalkMobility(
            n_nodes=self.n_nodes,
            area_side_m=self.sim.area_side_m,
            horizon_s=self.sim.horizon_s,
            config=self.sim.mobility,
            rng=np.random.default_rng(self.mobility_seed),
        )


def make_scenarios(
    density_per_km2: float,
    n_networks: int = 10,
    sim: SimulationConfig | None = None,
    master_seed: int = 0xAEDB,
    n_nodes: int | None = None,
) -> list[NetworkScenario]:
    """The fixed evaluation set for one density.

    ``n_networks`` defaults to the paper's 10; tests and quick benchmarks
    pass fewer.  ``n_nodes`` overrides the density-derived count (used by
    fast test fixtures); the density label is kept for bookkeeping.
    """
    if n_networks <= 0:
        raise ValueError(f"n_networks must be positive, got {n_networks}")
    cfg = sim or SimulationConfig()
    count = n_nodes if n_nodes is not None else nodes_for_density(
        density_per_km2, cfg.area_side_m
    )
    factory = RngFactory(master_seed)
    scenarios = []
    for k in range(n_networks):
        gen = factory.generator("scenario", density_per_km2, count, k)
        seed = int(gen.integers(0, 2**32 - 1))
        source = int(gen.integers(0, count))
        scenarios.append(
            NetworkScenario(
                density_per_km2=float(density_per_km2),
                network_index=k,
                n_nodes=count,
                mobility_seed=seed,
                source=source,
                sim=cfg,
            )
        )
    return scenarios
