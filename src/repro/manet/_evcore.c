/* Compiled event core for the AEDB broadcast simulator (DESIGN.md §14).
 *
 * Two layers, both pinned bit-identical to the pure-Python reference:
 *
 * 1. ``EventQueue`` / ``EventHandle`` — drop-in replacements for
 *    ``repro.manet.events`` with the same semantics, messages and
 *    tie-breaking (a (time, counter) min-heap; cancellation via
 *    tombstones; the unconditional horizon clock advance of PR 5).
 *
 * 2. ``run_window`` — the whole broadcast window of one
 *    ``BroadcastSimulator`` run as a single C event loop: window beacon
 *    snapshot swaps, frame transmission/resolution with SINR capture,
 *    and the AEDB decision kernel, flattened into typed arrays.
 *
 * Bit-identity strategy (probed on this host, see DESIGN.md §14):
 * every IEEE-exact operation (+ - * / sqrt fmod fabs comparisons) runs
 * natively in C, compiled with ``-ffp-contract=off`` so no FMA
 * contraction can change results; the two transcendental steps the
 * reference evaluates through numpy ufuncs (``np.log10`` for path loss,
 * ``np.power(10, ·)`` for dBm→mW) are *bridged back into numpy itself*
 * — the kernel fills a scratch ndarray and calls the very ufunc objects
 * the pure path calls.  Both ufuncs are position-independent (same
 * scalar value → same bits at any offset/length/shape), so per-row
 * bridging reproduces the reference's full-matrix calls exactly.
 *
 * No numpy C API is used: arrays come in through the buffer protocol,
 * which keeps the extension buildable with nothing but a C compiler.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>
#include <string.h>
#include <stdlib.h>

/* ------------------------------------------------------------------ */
/* EventHandle                                                        */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    char cancelled;
} EvHandle;

static PyObject *
EvHandle_cancel(EvHandle *self, PyObject *Py_UNUSED(ignored))
{
    self->cancelled = 1;
    Py_RETURN_NONE;
}

static PyMethodDef EvHandle_methods[] = {
    {"cancel", (PyCFunction)EvHandle_cancel, METH_NOARGS,
     "Prevent the event from firing (no-op if already fired)."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef EvHandle_members[] = {
    {"cancelled", T_BOOL, offsetof(EvHandle, cancelled), 0,
     "True once cancel() has been called."},
    {NULL, 0, 0, 0, NULL},
};

static PyObject *
EvHandle_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    EvHandle *self = (EvHandle *)type->tp_alloc(type, 0);
    if (self != NULL)
        self->cancelled = 0;
    return (PyObject *)self;
}

static PyTypeObject EvHandle_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.manet._evcore.EventHandle",
    .tp_basicsize = sizeof(EvHandle),
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Opaque handle returned by EventQueue.schedule; supports "
              "cancellation.",
    .tp_new = EvHandle_new,
    .tp_methods = EvHandle_methods,
    .tp_members = EvHandle_members,
};

/* ------------------------------------------------------------------ */
/* EventQueue                                                         */
/* ------------------------------------------------------------------ */

typedef struct {
    double t;
    long long seq;
    PyObject *handle;  /* owned EvHandle*, or NULL for post() events */
    PyObject *cb;      /* owned callable */
} QEntry;

typedef struct {
    PyObject_HEAD
    QEntry *heap;
    Py_ssize_t len;
    Py_ssize_t cap;
    long long counter;
    double now;
    long long fired;
} EvQueue;

static inline int
qentry_lt(const QEntry *a, const QEntry *b)
{
    if (a->t < b->t) return 1;
    if (a->t > b->t) return 0;
    return a->seq < b->seq;
}

static int
evq_grow(EvQueue *self)
{
    Py_ssize_t cap = self->cap ? self->cap * 2 : 64;
    QEntry *heap = (QEntry *)PyMem_Realloc(self->heap, cap * sizeof(QEntry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->cap = cap;
    return 0;
}

/* Push an entry (steals the handle/cb references on success only). */
static int
evq_push(EvQueue *self, double t, PyObject *handle, PyObject *cb)
{
    if (self->len >= self->cap && evq_grow(self) < 0)
        return -1;
    QEntry *heap = self->heap;
    Py_ssize_t i = self->len++;
    QEntry item = {t, self->counter++, handle, cb};
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (!qentry_lt(&item, &heap[parent]))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = item;
    return 0;
}

static QEntry
evq_pop(EvQueue *self)
{
    QEntry *heap = self->heap;
    QEntry top = heap[0];
    QEntry last = heap[--self->len];
    Py_ssize_t n = self->len, i = 0;
    while (1) {
        Py_ssize_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && qentry_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (!qentry_lt(&heap[child], &last))
            break;
        heap[i] = heap[child];
        i = child;
    }
    if (n > 0)
        heap[i] = last;
    return top;
}

static PyObject *
EvQueue_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    EvQueue *self = (EvQueue *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->len = self->cap = 0;
    self->counter = 0;
    self->now = 0.0;
    self->fired = 0;
    return (PyObject *)self;
}

static int
EvQueue_traverse(EvQueue *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->len; i++) {
        Py_VISIT(self->heap[i].handle);
        Py_VISIT(self->heap[i].cb);
    }
    return 0;
}

static int
EvQueue_clear(EvQueue *self)
{
    Py_ssize_t n = self->len;
    self->len = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_CLEAR(self->heap[i].handle);
        Py_CLEAR(self->heap[i].cb);
    }
    return 0;
}

static void
EvQueue_dealloc(EvQueue *self)
{
    PyObject_GC_UnTrack(self);
    EvQueue_clear(self);
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
evq_check_future(EvQueue *self, double time_s)
{
    if (time_s < self->now) {
        PyObject *t_obj = PyFloat_FromDouble(time_s);
        PyObject *now_obj = PyFloat_FromDouble(self->now);
        if (t_obj != NULL && now_obj != NULL)
            PyErr_Format(PyExc_ValueError,
                         "cannot schedule at %R (current time %R)",
                         t_obj, now_obj);
        Py_XDECREF(t_obj);
        Py_XDECREF(now_obj);
        return -1;
    }
    return 0;
}

static PyObject *
EvQueue_schedule(EvQueue *self, PyObject *args)
{
    double time_s;
    PyObject *callback;
    if (!PyArg_ParseTuple(args, "dO:schedule", &time_s, &callback))
        return NULL;
    if (evq_check_future(self, time_s) < 0)
        return NULL;
    PyObject *handle = EvHandle_new(&EvHandle_Type, NULL, NULL);
    if (handle == NULL)
        return NULL;
    Py_INCREF(handle);   /* heap's reference */
    Py_INCREF(callback);
    if (evq_push(self, time_s, handle, callback) < 0) {
        Py_DECREF(handle);
        Py_DECREF(callback);
        Py_DECREF(handle);
        return NULL;
    }
    return handle;   /* caller's reference */
}

static PyObject *
EvQueue_post(EvQueue *self, PyObject *args)
{
    double time_s;
    PyObject *callback;
    if (!PyArg_ParseTuple(args, "dO:post", &time_s, &callback))
        return NULL;
    if (evq_check_future(self, time_s) < 0)
        return NULL;
    Py_INCREF(callback);
    if (evq_push(self, time_s, NULL, callback) < 0) {
        Py_DECREF(callback);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
EvQueue_run_until(EvQueue *self, PyObject *args)
{
    double horizon;
    if (!PyArg_ParseTuple(args, "d:run_until", &horizon))
        return NULL;
    long long fired_here = 0;
    while (self->len > 0 && self->heap[0].t <= horizon) {
        QEntry e = evq_pop(self);
        if (e.handle != NULL && ((EvHandle *)e.handle)->cancelled) {
            Py_DECREF(e.handle);
            Py_DECREF(e.cb);
            continue;
        }
        self->now = e.t;
        PyObject *res = PyObject_CallFunction(e.cb, "d", e.t);
        Py_XDECREF(e.handle);
        Py_DECREF(e.cb);
        if (res == NULL)
            return NULL;   /* exception propagates before fired++ */
        Py_DECREF(res);
        self->fired += 1;
        fired_here += 1;
    }
    /* Unconditional clock advance (the PR 5 fix): the caller has
     * observed time ``horizon``, so later schedules before it must be
     * rejected even when the heap still holds events beyond it. */
    if (horizon > self->now)
        self->now = horizon;
    return PyLong_FromLongLong(fired_here);
}

static PyObject *
EvQueue_run_all(EvQueue *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"hard_limit", NULL};
    long long hard_limit = 10000000;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|L:run_all", kwlist,
                                     &hard_limit))
        return NULL;
    long long fired_here = 0;
    while (self->len > 0) {
        if (fired_here >= hard_limit) {
            PyErr_SetString(PyExc_RuntimeError,
                            "event limit exceeded; runaway schedule?");
            return NULL;
        }
        QEntry e = evq_pop(self);
        if (e.handle != NULL && ((EvHandle *)e.handle)->cancelled) {
            Py_DECREF(e.handle);
            Py_DECREF(e.cb);
            continue;
        }
        self->now = e.t;
        PyObject *res = PyObject_CallFunction(e.cb, "d", e.t);
        Py_XDECREF(e.handle);
        Py_DECREF(e.cb);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
        self->fired += 1;
        fired_here += 1;
    }
    return PyLong_FromLongLong(fired_here);
}

static PyObject *
EvQueue_get_now(EvQueue *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
EvQueue_get_pending(EvQueue *self, void *closure)
{
    Py_ssize_t pending = 0;
    for (Py_ssize_t i = 0; i < self->len; i++) {
        PyObject *h = self->heap[i].handle;
        if (h == NULL || !((EvHandle *)h)->cancelled)
            pending += 1;
    }
    return PyLong_FromSsize_t(pending);
}

static PyObject *
EvQueue_get_fired(EvQueue *self, void *closure)
{
    return PyLong_FromLongLong(self->fired);
}

/* The clock and the fired counter are settable so the compiled-kernel
 * writeback (repro.manet.compiled) can restore the exact end-of-run
 * queue state the pure path would leave behind. */
static int
EvQueue_set_now(EvQueue *self, PyObject *value, void *closure)
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete now");
        return -1;
    }
    double v = PyFloat_AsDouble(value);
    if (v == -1.0 && PyErr_Occurred())
        return -1;
    self->now = v;
    return 0;
}

static int
EvQueue_set_fired(EvQueue *self, PyObject *value, void *closure)
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete fired");
        return -1;
    }
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->fired = v;
    return 0;
}

static PyGetSetDef EvQueue_getset[] = {
    {"now", (getter)EvQueue_get_now, (setter)EvQueue_set_now,
     "Timestamp of the most recently fired event (0 before any).", NULL},
    {"pending", (getter)EvQueue_get_pending, NULL,
     "Number of not-yet-fired, not-cancelled events.", NULL},
    {"fired", (getter)EvQueue_get_fired, (setter)EvQueue_set_fired,
     "Total number of events executed so far.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMethodDef EvQueue_methods[] = {
    {"schedule", (PyCFunction)EvQueue_schedule, METH_VARARGS,
     "Enqueue ``callback`` to fire at ``time_s``; returns a handle."},
    {"post", (PyCFunction)EvQueue_post, METH_VARARGS,
     "Fire-and-forget schedule: no cancellation handle."},
    {"run_until", (PyCFunction)EvQueue_run_until, METH_VARARGS,
     "Fire events with timestamp <= horizon; return how many fired."},
    {"run_all", (PyCFunction)EvQueue_run_all,
     METH_VARARGS | METH_KEYWORDS,
     "Fire every pending event (guarded against runaway schedules)."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject EvQueue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.manet._evcore.EventQueue",
    .tp_basicsize = sizeof(EvQueue),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled time-ordered callback queue (drop-in for "
              "repro.manet.events.EventQueue).",
    .tp_new = EvQueue_new,
    .tp_dealloc = (destructor)EvQueue_dealloc,
    .tp_traverse = (traverseproc)EvQueue_traverse,
    .tp_clear = (inquiry)EvQueue_clear,
    .tp_methods = EvQueue_methods,
    .tp_getset = EvQueue_getset,
};

/* ------------------------------------------------------------------ */
/* run_window kernel                                                  */
/* ------------------------------------------------------------------ */

/* fparams indices (keep in sync with repro/manet/compiled.py) */
enum {
    FP_WARMUP, FP_HORIZON, FP_AIRTIME, FP_DETECTION, FP_CAPTURE_LIN,
    FP_MIN_TX, FP_MAX_TX, FP_DEFAULT_TX, FP_REF_D, FP_REF_LOSS, FP_SCALE,
    FP_BORDER, FP_DELAY_LO, FP_DELAY_HI, FP_NBR_THRESHOLD, FP_MARGIN,
    FP_REQUIRED, FP_MAC_JITTER, FP_EXPIRY, FP_EPOCH_S, FP_SIDE,
    FP_COUNT
};

/* iparams indices */
enum {
    IP_N, IP_SOURCE, IP_WINDOW, IP_RECORD, IP_MOB_MODE, IP_N_EPOCHS,
    IP_FOLD_ONE, IP_RNG_OFFSET,
    IP_COUNT
};

/* counts_out indices */
enum {
    CN_FIRED, CN_FRAMES, CN_RESOLVED, CN_DRAWS, CN_BATCH_VECTOR,
    CN_BATCH_SCALAR, CN_DECISIONS,
    CN_COUNT
};

/* protocol state codes (mirror repro.manet.aedb) */
enum { ST_IDLE = 0, ST_WAITING = 1, ST_DROPPED = 2, ST_FORWARDED = 3 };

/* decision kinds (formatted by repro/manet/compiled.py) */
enum { DK_SOURCE = 0, DK_DROP_FIRST = 1, DK_ARM = 2, DK_DROP_TIMER = 3,
       DK_FORWARD = 4 };

/* event kinds */
enum { EV_BEACON = 0, EV_TRANSMIT = 1, EV_RESOLVE = 2, EV_TIMER = 3 };

typedef struct {
    double t;
    long long seq;
    int kind;
    long a;      /* beacon tick / node / frame index */
    double b;    /* TRANSMIT power */
} KEvent;

typedef struct {
    /* scalars */
    long n, source, W, n_epochs;
    int record, mob_mode, fold_one;
    double warmup, horizon, airtime, detection, capture_lin, min_tx,
        max_tx, default_tx, ref_d, ref_loss, scale, border, delay_lo,
        delay_hi, nbr_threshold, margin, required, mac_jitter, expiry,
        epoch_s, side;
    /* rng */
    const double *doubles;
    long n_doubles, draw;
    /* tables (current snapshot pointers; swapped at beacon events) */
    const double *rx_cur, *seen_cur;
    const double **win_rx, **win_seen;
    /* mobility */
    const double *static_pos;          /* (n, 2) */
    const double *walk_starts;         /* (E, n, 2) */
    const double *walk_vel;            /* (E, n, 2) */
    const unsigned char *walk_neg;     /* (E,) */
    double *pos;                       /* (n, 2) scratch */
    /* ufunc bridge */
    PyObject *log10_obj, *power_obj, *ten_obj;
    PyObject *scratch_a_obj, *scratch_b_obj;
    double *sa, *sb;                   /* scratch buffers, length n */
    /* protocol state (output arrays, written in place) */
    double *first_rx, *strongest, *timer_deadline;
    signed char *state;
    unsigned char *heard;              /* (n, n) */
    /* frames */
    double *fr_sender, *fr_power, *fr_start, *fr_flag;  /* frame_out cols */
    double *fr_end;                    /* scratch */
    long n_frames;
    long *active, *recent, *overlap;
    long n_active, n_recent;
    /* per-resolve scratch */
    double *rx;                        /* delivery rx vector */
    unsigned char *elig;
    long *det;
    double *interf;
    /* decisions */
    double *decisions;                 /* (2n+1, 4) */
    long n_decisions, dec_cap;
    /* event heap */
    KEvent *heap;
    long heap_len, heap_cap;
    long long seq;
    /* counters */
    long long fired;
    long batch_vector, batch_scalar;
    double energy;
    long n_resolved;
} Kernel;

static int
k_fail(const char *what)
{
    PyErr_Format(PyExc_RuntimeError, "evcore invariant violated: %s", what);
    return -1;
}

static int
k_push(Kernel *k, double t, int kind, long a, double b)
{
    if (k->heap_len >= k->heap_cap)
        return k_fail("event heap overflow");
    KEvent *heap = k->heap;
    long i = k->heap_len++;
    KEvent item = {t, k->seq++, kind, a, b};
    while (i > 0) {
        long parent = (i - 1) >> 1;
        KEvent *p = &heap[parent];
        if (!(item.t < p->t || (item.t == p->t && item.seq < p->seq)))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = item;
    return 0;
}

static KEvent
k_pop(Kernel *k)
{
    KEvent *heap = k->heap;
    KEvent top = heap[0];
    KEvent last = heap[--k->heap_len];
    long n = k->heap_len, i = 0;
    while (1) {
        long child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n &&
            (heap[child + 1].t < heap[child].t ||
             (heap[child + 1].t == heap[child].t &&
              heap[child + 1].seq < heap[child].seq)))
            child += 1;
        if (!(heap[child].t < last.t ||
              (heap[child].t == last.t && heap[child].seq < last.seq)))
            break;
        heap[i] = heap[child];
        i = child;
    }
    if (n > 0)
        heap[i] = last;
    return top;
}

static int
k_decision(Kernel *k, double t, long node, int kind, double value)
{
    if (k->n_decisions >= k->dec_cap)
        return k_fail("decision log overflow");
    double *row = k->decisions + 4 * k->n_decisions++;
    row[0] = t;
    row[1] = (double)node;
    row[2] = (double)kind;
    row[3] = value;
    return 0;
}

/* np.log10(scratch_a, out=scratch_a) via the exact ufunc object the
 * pure path calls; entries [m, n) are parked at 1.0 so the tail is
 * warning-free.  Same helper shape for np.power(10.0, scratch_b). */
static int
k_log10(Kernel *k, long m)
{
    for (long i = m; i < k->n; i++)
        k->sa[i] = 1.0;
    PyObject *r = PyObject_CallFunctionObjArgs(
        k->log10_obj, k->scratch_a_obj, k->scratch_a_obj, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

static int
k_pow10(Kernel *k, long m)
{
    for (long i = m; i < k->n; i++)
        k->sb[i] = 0.0;
    PyObject *r = PyObject_CallFunctionObjArgs(
        k->power_obj, k->ten_obj, k->scratch_b_obj, k->scratch_b_obj, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Positions at ``t`` — RandomWalkMobility.positions_into, op for op
 * (mul, add, one-period fold or floored mod, then the triangle wave). */
static const double *
k_positions(Kernel *k, double t)
{
    if (k->mob_mode == 0)
        return k->static_pos;
    long n2 = 2 * k->n;
    long e = (long)(t / k->epoch_s);
    if (e > k->n_epochs - 1)
        e = k->n_epochs - 1;
    double dt = t - (double)e * k->epoch_s;
    const double *sk = k->walk_starts + (size_t)e * n2;
    const double *vk = k->walk_vel + (size_t)e * n2;
    double *pos = k->pos;
    for (long i = 0; i < n2; i++) {
        double v = vk[i] * dt;
        pos[i] = v + sk[i];
    }
    double side = k->side;
    double period = 2.0 * side;
    if (k->fold_one && dt <= k->epoch_s) {
        if (k->walk_neg[e]) {
            for (long i = 0; i < n2; i++)
                if (pos[i] < 0.0)
                    pos[i] = pos[i] + period;
        }
    } else {
        for (long i = 0; i < n2; i++) {
            double m = fmod(pos[i], period);
            if (m != 0.0 && ((period < 0.0) != (m < 0.0)))
                m = m + period;
            pos[i] = m;
        }
    }
    for (long i = 0; i < n2; i++) {
        double v = pos[i] - side;
        v = fabs(v);
        pos[i] = side - v;
    }
    return pos;
}

static int k_do_transmit(Kernel *k, long sender, double power, double t);

/* AEDBProtocol._select_tx_power, scan spelling (bit-identical to both
 * the live-index and the scan path of the reference — all three
 * evaluate the same freshness predicate on the same floats). */
static double
k_select_tx_power(Kernel *k, long node, double t)
{
    long n = k->n;
    const double *nrx = k->rx_cur + (size_t)node * n;
    const double *nseen = k->seen_cur + (size_t)node * n;
    const unsigned char *nheard = k->heard + (size_t)node * n;
    unsigned char *live = k->elig;   /* free between resolves */
    long in_fwd_count = 0;
    for (long j = 0; j < n; j++) {
        unsigned char lv =
            ((t - nseen[j]) <= k->expiry) && (j != node);
        live[j] = lv;
        if (lv && nrx[j] <= k->border)
            in_fwd_count++;
    }
    long target = 0;
    if ((double)in_fwd_count > k->nbr_threshold) {
        /* dense regime: argmax over in-forwarding-area rx (-inf fill,
         * first occurrence on ties — strict > keeps the lowest id) */
        double best = -INFINITY;
        for (long j = 0; j < n; j++) {
            double v = (live[j] && nrx[j] <= k->border) ? nrx[j]
                                                        : -INFINITY;
            if (v > best) {
                best = v;
                target = j;
            }
        }
    } else {
        /* sparse regime: furthest live neighbour not already heard
         * from; no candidates → full power */
        int any = 0;
        for (long j = 0; j < n; j++) {
            live[j] = live[j] && !nheard[j];
            if (live[j])
                any = 1;
        }
        if (!any)
            return k->max_tx;
        double best = INFINITY;
        for (long j = 0; j < n; j++) {
            double v = live[j] ? nrx[j] : INFINITY;
            if (v < best) {
                best = v;
                target = j;
            }
        }
    }
    double loss = k->default_tx - nrx[target];
    double power = k->required + loss;
    power = power + k->margin;
    if (power < k->min_tx)
        power = k->min_tx;
    if (power > k->max_tx)
        power = k->max_tx;
    return power;
}

/* AEDBProtocol._first_copy */
static int
k_first_copy(Kernel *k, long node, double rx, double t)
{
    k->first_rx[node] = t;
    k->strongest[node] = rx;
    if (rx > k->border) {
        k->state[node] = ST_DROPPED;
        if (k->record && k_decision(k, t, node, DK_DROP_FIRST, 0.0) < 0)
            return -1;
        return 0;
    }
    k->state[node] = ST_WAITING;
    double delay;
    if (k->delay_hi > k->delay_lo) {
        if (k->draw >= k->n_doubles)
            return k_fail("uniform stream exhausted");
        double u = k->doubles[k->draw++];
        delay = k->delay_lo + (k->delay_hi - k->delay_lo) * u;
    } else {
        delay = k->delay_lo;
    }
    double fire = t + delay;
    k->timer_deadline[node] = fire;
    if (k_push(k, fire, EV_TIMER, node, 0.0) < 0)
        return -1;
    if (k->record && k_decision(k, t, node, DK_ARM, delay) < 0)
        return -1;
    return 0;
}

/* AEDBProtocol._on_timer (timers are never cancelled on this path) */
static int
k_on_timer(Kernel *k, long node, double t)
{
    if (k->state[node] != ST_WAITING)
        return 0;
    if (k->strongest[node] > k->border) {
        k->state[node] = ST_DROPPED;
        if (k->record && k_decision(k, t, node, DK_DROP_TIMER, 0.0) < 0)
            return -1;
        return 0;
    }
    double power = k_select_tx_power(k, node, t);
    k->state[node] = ST_FORWARDED;
    if (k->record && k_decision(k, t, node, DK_FORWARD, power) < 0)
        return -1;
    double jitter = 0.0;
    if (k->mac_jitter > 0.0) {
        if (k->draw >= k->n_doubles)
            return k_fail("uniform stream exhausted");
        double u = k->doubles[k->draw++];
        jitter = 0.0 + (k->mac_jitter - 0.0) * u;
    }
    /* BroadcastSimulator._transmit: now == t inside this callback */
    double t2 = t + jitter;
    if (t2 <= t)
        return k_do_transmit(k, node, power, t);
    return k_push(k, t2, EV_TRANSMIT, node, power);
}

/* RadioMedium.transmit */
static int
k_do_transmit(Kernel *k, long sender, double power, double t)
{
    if (power < k->min_tx)
        power = k->min_tx;
    if (power > k->max_tx)
        power = k->max_tx;
    if (k->n_frames >= k->n)
        return k_fail("frame table overflow");
    long f = k->n_frames++;
    k->fr_sender[f] = (double)sender;
    k->fr_power[f] = power;
    k->fr_start[f] = t;
    k->fr_end[f] = t + k->airtime;
    k->active[k->n_active++] = f;
    k->energy += power;
    return k_push(k, k->fr_end[f], EV_RESOLVE, f, 0.0);
}

/* AEDBProtocol.on_receive_batch: one ascending pass (identical to both
 * the scalar small-batch loop and the vectorised update — see
 * DESIGN.md §14 for the equivalence argument). */
static int
k_deliver(Kernel *k, long f, double t)
{
    long n = k->n, count = 0;
    for (long r = 0; r < n; r++)
        if (k->elig[r])
            count++;
    if (count <= 8)
        k->batch_scalar++;
    else
        k->batch_vector++;
    long sender = (long)k->fr_sender[f];
    for (long r = 0; r < n; r++) {
        if (!k->elig[r])
            continue;
        k->heard[(size_t)r * n + sender] = 1;
        signed char st = k->state[r];
        if (st == ST_WAITING) {
            if (k->rx[r] > k->strongest[r])
                k->strongest[r] = k->rx[r];
        } else if (st == ST_IDLE) {
            if (k_first_copy(k, r, k->rx[r], t) < 0)
                return -1;
        }
    }
    return 0;
}

/* RadioMedium._resolve, batch mode with the inlined log-distance fast
 * path (the only configuration the kernel accepts). */
static int
k_resolve(Kernel *k, long f, double t)
{
    long n = k->n;
    k->n_resolved++;
    /* active.remove(frame): first occurrence, order-preserving */
    long idx = -1;
    for (long i = 0; i < k->n_active; i++)
        if (k->active[i] == f) {
            idx = i;
            break;
        }
    if (idx < 0)
        return k_fail("resolving frame not in active list");
    for (long i = idx; i < k->n_active - 1; i++)
        k->active[i] = k->active[i + 1];
    k->n_active--;
    k->recent[k->n_recent++] = f;
    double tcut = t - 2.0 * k->airtime;
    if (k->fr_end[k->recent[0]] < tcut) {
        long w = 0;
        for (long i = 0; i < k->n_recent; i++)
            if (k->fr_end[k->recent[i]] >= tcut)
                k->recent[w++] = k->recent[i];
        k->n_recent = w;
    }
    const double *P =
        k_positions(k, 0.5 * (k->fr_start[f] + k->fr_end[f]));
    if (P == NULL)
        return -1;
    /* overlap scan: active then recent, list order */
    long n_ov = 0;
    if (!(k->n_active == 0 && k->n_recent == 1)) {
        for (long i = 0; i < k->n_active; i++) {
            long g = k->active[i];
            if (g != f && k->fr_start[g] < k->fr_end[f] &&
                k->fr_start[f] < k->fr_end[g])
                k->overlap[n_ov++] = g;
        }
        for (long i = 0; i < k->n_recent; i++) {
            long g = k->recent[i];
            if (g != f && k->fr_start[g] < k->fr_end[f] &&
                k->fr_start[f] < k->fr_end[g])
                k->overlap[n_ov++] = g;
        }
    }
    /* rx chain (diff → dist² → sqrt → clamp → log10 → scale) */
    long sender = (long)k->fr_sender[f];
    double sx = P[2 * sender], sy = P[2 * sender + 1];
    for (long j = 0; j < n; j++) {
        double dx = P[2 * j] - sx;
        double dy = P[2 * j + 1] - sy;
        double xx = dx * dx;
        double yy = dy * dy;
        double d2 = xx + yy;
        double d = sqrt(d2);
        if (d < k->ref_d)
            d = k->ref_d;
        if (k->ref_d != 1.0)
            d = d / k->ref_d;
        k->sa[j] = d;
    }
    if (k_log10(k, n) < 0)
        return -1;
    double txp = k->fr_power[f];
    for (long j = 0; j < n; j++) {
        double loss = k->sa[j] * k->scale;
        loss = loss + k->ref_loss;
        double rxj = txp - loss;
        k->rx[j] = rxj;
        k->elig[j] = rxj >= k->detection;
    }
    if (n_ov > 0) {
        k->elig[sender] = 0;
        for (long i = 0; i < n_ov; i++)
            k->elig[(long)k->fr_sender[k->overlap[i]]] = 0;
        long ndet = 0;
        for (long j = 0; j < n; j++) {
            if (k->elig[j])
                k->det[ndet++] = j;
            k->elig[j] = 0;
        }
        if (ndet > 0) {
            for (long m = 0; m < ndet; m++)
                k->interf[m] = 0.0;
            for (long i = 0; i < n_ov; i++) {
                long g = k->overlap[i];
                long os = (long)k->fr_sender[g];
                double ox = P[2 * os], oy = P[2 * os + 1];
                double op = k->fr_power[g];
                for (long m = 0; m < ndet; m++) {
                    long j = k->det[m];
                    double dx = P[2 * j] - ox;
                    double dy = P[2 * j + 1] - oy;
                    double xx = dx * dx;
                    double yy = dy * dy;
                    double d2 = xx + yy;
                    double d = sqrt(d2);
                    if (d < k->ref_d)
                        d = k->ref_d;
                    d = d / k->ref_d;   /* generic chain always divides */
                    k->sa[m] = d;
                }
                if (k_log10(k, ndet) < 0)
                    return -1;
                for (long m = 0; m < ndet; m++) {
                    double l = k->scale * k->sa[m];
                    double loss = k->ref_loss + l;
                    double rxi = op - loss;
                    k->sb[m] = rxi / 10.0;
                }
                if (k_pow10(k, ndet) < 0)
                    return -1;
                for (long m = 0; m < ndet; m++)
                    k->interf[m] = k->interf[m] + k->sb[m];
            }
            for (long m = 0; m < ndet; m++)
                k->sb[m] = k->rx[k->det[m]] / 10.0;
            if (k_pow10(k, ndet) < 0)
                return -1;
            for (long m = 0; m < ndet; m++) {
                long j = k->det[m];
                k->elig[j] = (k->interf[m] > 0.0)
                                 ? (k->sb[m] >= k->capture_lin * k->interf[m])
                                 : 1;
            }
        }
    } else {
        k->elig[sender] = 0;
    }
    return k_deliver(k, f, t);
}

/* Acquire a buffer; itemsize/min-length checked by the caller wrapper. */
static int
get_buf(PyObject *obj, Py_buffer *view, int writable, Py_ssize_t min_items,
        Py_ssize_t itemsize, const char *name)
{
    int flags = PyBUF_C_CONTIGUOUS | PyBUF_FORMAT;
    if (writable)
        flags |= PyBUF_WRITABLE;
    if (PyObject_GetBuffer(obj, view, flags) < 0)
        return -1;
    if (view->itemsize != itemsize ||
        view->len < min_items * itemsize) {
        PyErr_Format(PyExc_ValueError,
                     "evcore: bad buffer for %s (itemsize %zd, len %zd; "
                     "need itemsize %zd x %zd items)",
                     name, view->itemsize, view->len, itemsize, min_items);
        PyBuffer_Release(view);
        return -1;
    }
    return 0;
}

static PyObject *
evcore_run_window(PyObject *self, PyObject *args)
{
    PyObject *fparams_o, *iparams_o, *doubles_o, *start_rx_o, *start_seen_o,
        *win_times_o, *win_rx_o, *win_seen_o, *static_pos_o, *starts_o,
        *vel_o, *neg_o, *scratch_a_o, *scratch_b_o, *log10_o, *power_o,
        *first_rx_o, *strongest_o, *state_o, *heard_o, *frame_o, *timer_o,
        *decisions_o, *counts_o;
    if (!PyArg_ParseTuple(
            args, "OOOOOOOOOOOOOOOOOOOOOOOO:run_window",
            &fparams_o, &iparams_o, &doubles_o, &start_rx_o, &start_seen_o,
            &win_times_o, &win_rx_o, &win_seen_o, &static_pos_o, &starts_o,
            &vel_o, &neg_o, &scratch_a_o, &scratch_b_o, &log10_o, &power_o,
            &first_rx_o, &strongest_o, &state_o, &heard_o, &frame_o,
            &timer_o, &decisions_o, &counts_o))
        return NULL;

    Kernel k;
    memset(&k, 0, sizeof(k));
    PyObject *result = NULL;

    /* fixed buffers (indices into bufs[]; released in the epilogue) */
    enum { B_FPARAMS, B_IPARAMS, B_DOUBLES, B_START_RX, B_START_SEEN,
           B_WIN_TIMES, B_STATIC, B_STARTS, B_VEL, B_NEG, B_SA, B_SB,
           B_FIRST_RX, B_STRONGEST, B_STATE, B_HEARD, B_FRAME, B_TIMER,
           B_DECISIONS, B_COUNTS, B_FIXED };
    Py_buffer bufs[B_FIXED];
    char held[B_FIXED];
    memset(held, 0, sizeof(held));
    Py_buffer *wbufs = NULL;   /* 2W window-snapshot buffers */
    long n_wbufs = 0;

#define GETBUF(slot, obj, writable, min_items, itemsize, name)            \
    do {                                                                  \
        if (get_buf((obj), &bufs[slot], (writable), (min_items),          \
                    (itemsize), (name)) < 0)                              \
            goto done;                                                    \
        held[slot] = 1;                                                   \
    } while (0)

    GETBUF(B_FPARAMS, fparams_o, 0, FP_COUNT, 8, "fparams");
    GETBUF(B_IPARAMS, iparams_o, 0, IP_COUNT, 8, "iparams");
    const double *fp = (const double *)bufs[B_FPARAMS].buf;
    const long long *ip = (const long long *)bufs[B_IPARAMS].buf;

    long n = (long)ip[IP_N];
    long W = (long)ip[IP_WINDOW];
    k.n = n;
    k.source = (long)ip[IP_SOURCE];
    k.W = W;
    k.record = (int)ip[IP_RECORD];
    k.mob_mode = (int)ip[IP_MOB_MODE];
    k.n_epochs = (long)ip[IP_N_EPOCHS];
    k.fold_one = (int)ip[IP_FOLD_ONE];
    k.warmup = fp[FP_WARMUP];
    k.horizon = fp[FP_HORIZON];
    k.airtime = fp[FP_AIRTIME];
    k.detection = fp[FP_DETECTION];
    k.capture_lin = fp[FP_CAPTURE_LIN];
    k.min_tx = fp[FP_MIN_TX];
    k.max_tx = fp[FP_MAX_TX];
    k.default_tx = fp[FP_DEFAULT_TX];
    k.ref_d = fp[FP_REF_D];
    k.ref_loss = fp[FP_REF_LOSS];
    k.scale = fp[FP_SCALE];
    k.border = fp[FP_BORDER];
    k.delay_lo = fp[FP_DELAY_LO];
    k.delay_hi = fp[FP_DELAY_HI];
    k.nbr_threshold = fp[FP_NBR_THRESHOLD];
    k.margin = fp[FP_MARGIN];
    k.required = fp[FP_REQUIRED];
    k.mac_jitter = fp[FP_MAC_JITTER];
    k.expiry = fp[FP_EXPIRY];
    k.epoch_s = fp[FP_EPOCH_S];
    k.side = fp[FP_SIDE];

    if (n <= 0 || W <= 0 || k.source < 0 || k.source >= n) {
        PyErr_SetString(PyExc_ValueError, "evcore: bad n/W/source");
        goto done;
    }

    GETBUF(B_DOUBLES, doubles_o, 0, 0, 8, "doubles");
    k.doubles = (const double *)bufs[B_DOUBLES].buf;
    k.n_doubles = (long)(bufs[B_DOUBLES].len / 8);
    k.draw = (long)ip[IP_RNG_OFFSET];

    GETBUF(B_START_RX, start_rx_o, 0, n * n, 8, "start_rx");
    GETBUF(B_START_SEEN, start_seen_o, 0, n * n, 8, "start_seen");
    k.rx_cur = (const double *)bufs[B_START_RX].buf;
    k.seen_cur = (const double *)bufs[B_START_SEEN].buf;

    GETBUF(B_WIN_TIMES, win_times_o, 0, W, 8, "window_times");
    const double *win_times = (const double *)bufs[B_WIN_TIMES].buf;

    if (!PyTuple_Check(win_rx_o) || !PyTuple_Check(win_seen_o) ||
        PyTuple_GET_SIZE(win_rx_o) != W ||
        PyTuple_GET_SIZE(win_seen_o) != W) {
        PyErr_SetString(PyExc_ValueError,
                        "evcore: window snapshots must be W-tuples");
        goto done;
    }
    wbufs = (Py_buffer *)PyMem_Calloc(2 * (size_t)W, sizeof(Py_buffer));
    k.win_rx = (const double **)PyMem_Malloc(W * sizeof(double *));
    k.win_seen = (const double **)PyMem_Malloc(W * sizeof(double *));
    if (wbufs == NULL || k.win_rx == NULL || k.win_seen == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (long w = 0; w < W; w++) {
        if (get_buf(PyTuple_GET_ITEM(win_rx_o, w), &wbufs[n_wbufs], 0,
                    n * n, 8, "window_rx") < 0)
            goto done;
        k.win_rx[w] = (const double *)wbufs[n_wbufs++].buf;
        if (get_buf(PyTuple_GET_ITEM(win_seen_o, w), &wbufs[n_wbufs], 0,
                    n * n, 8, "window_seen") < 0)
            goto done;
        k.win_seen[w] = (const double *)wbufs[n_wbufs++].buf;
    }

    if (k.mob_mode == 0) {
        GETBUF(B_STATIC, static_pos_o, 0, 2 * n, 8, "static_pos");
        k.static_pos = (const double *)bufs[B_STATIC].buf;
    } else {
        GETBUF(B_STARTS, starts_o, 0, k.n_epochs * 2 * n, 8, "walk_starts");
        GETBUF(B_VEL, vel_o, 0, k.n_epochs * 2 * n, 8, "walk_vel");
        GETBUF(B_NEG, neg_o, 0, k.n_epochs, 1, "walk_epoch_neg");
        k.walk_starts = (const double *)bufs[B_STARTS].buf;
        k.walk_vel = (const double *)bufs[B_VEL].buf;
        k.walk_neg = (const unsigned char *)bufs[B_NEG].buf;
    }

    GETBUF(B_SA, scratch_a_o, 1, n, 8, "scratch_a");
    GETBUF(B_SB, scratch_b_o, 1, n, 8, "scratch_b");
    k.sa = (double *)bufs[B_SA].buf;
    k.sb = (double *)bufs[B_SB].buf;
    k.scratch_a_obj = scratch_a_o;
    k.scratch_b_obj = scratch_b_o;
    k.log10_obj = log10_o;
    k.power_obj = power_o;

    GETBUF(B_FIRST_RX, first_rx_o, 1, n, 8, "first_rx");
    GETBUF(B_STRONGEST, strongest_o, 1, n, 8, "strongest");
    GETBUF(B_STATE, state_o, 1, n, 1, "state_code");
    GETBUF(B_HEARD, heard_o, 1, n * n, 1, "heard_from");
    GETBUF(B_FRAME, frame_o, 1, 4 * n, 8, "frame_out");
    GETBUF(B_TIMER, timer_o, 1, n, 8, "timer_deadline");
    GETBUF(B_DECISIONS, decisions_o, 1, 4 * (2 * n + 1), 8, "decisions");
    GETBUF(B_COUNTS, counts_o, 1, CN_COUNT, 8, "counts");
    k.first_rx = (double *)bufs[B_FIRST_RX].buf;
    k.strongest = (double *)bufs[B_STRONGEST].buf;
    k.state = (signed char *)bufs[B_STATE].buf;
    k.heard = (unsigned char *)bufs[B_HEARD].buf;
    double *frame_out = (double *)bufs[B_FRAME].buf;
    k.fr_sender = frame_out;
    k.fr_power = frame_out + n;
    k.fr_start = frame_out + 2 * n;
    k.fr_flag = frame_out + 3 * n;
    k.timer_deadline = (double *)bufs[B_TIMER].buf;
    k.decisions = (double *)bufs[B_DECISIONS].buf;
    k.dec_cap = 2 * n + 1;
    long long *counts = (long long *)bufs[B_COUNTS].buf;

    k.ten_obj = PyFloat_FromDouble(10.0);
    if (k.ten_obj == NULL)
        goto done;

    /* plain-C scratch */
    k.heap_cap = W + 4 * n + 16;
    k.heap = (KEvent *)PyMem_Malloc(k.heap_cap * sizeof(KEvent));
    k.fr_end = (double *)PyMem_Malloc(n * sizeof(double));
    k.active = (long *)PyMem_Malloc(n * sizeof(long));
    k.recent = (long *)PyMem_Malloc(n * sizeof(long));
    k.overlap = (long *)PyMem_Malloc(n * sizeof(long));
    k.pos = (double *)PyMem_Malloc(2 * n * sizeof(double));
    k.rx = (double *)PyMem_Malloc(n * sizeof(double));
    k.elig = (unsigned char *)PyMem_Malloc(n);
    k.det = (long *)PyMem_Malloc(n * sizeof(long));
    k.interf = (double *)PyMem_Malloc(n * sizeof(double));
    if (k.heap == NULL || k.fr_end == NULL || k.active == NULL ||
        k.recent == NULL || k.overlap == NULL || k.pos == NULL ||
        k.rx == NULL || k.elig == NULL || k.det == NULL ||
        k.interf == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    /* --- event-loop setup, mirroring BroadcastSimulator.run() ------- */
    /* window beacon rounds posted first: seq 0 .. W-1 */
    for (long w = 0; w < W; w++)
        if (k_push(&k, win_times[w], EV_BEACON, w, 0.0) < 0)
            goto done;
    /* start_broadcast(source, warmup) */
    k.state[k.source] = ST_FORWARDED;
    k.first_rx[k.source] = k.warmup;
    if (k.record && k_decision(&k, k.warmup, k.source, DK_SOURCE, 0.0) < 0)
        goto done;
    if (k.warmup <= 0.0) {
        if (k_do_transmit(&k, k.source, k.default_tx, 0.0) < 0)
            goto done;
    } else {
        if (k_push(&k, k.warmup, EV_TRANSMIT, k.source, k.default_tx) < 0)
            goto done;
    }

    /* --- run_until(horizon) ---------------------------------------- */
    while (k.heap_len > 0 && k.heap[0].t <= k.horizon) {
        KEvent e = k_pop(&k);
        int rc = 0;
        switch (e.kind) {
        case EV_BEACON:
            k.rx_cur = k.win_rx[e.a];
            k.seen_cur = k.win_seen[e.a];
            break;
        case EV_TRANSMIT:
            rc = k_do_transmit(&k, e.a, e.b, e.t);
            break;
        case EV_RESOLVE:
            rc = k_resolve(&k, e.a, e.t);
            break;
        case EV_TIMER:
            rc = k_on_timer(&k, e.a, e.t);
            break;
        }
        if (rc < 0)
            goto done;
        k.fired++;
    }

    /* --- outputs ---------------------------------------------------- */
    for (long f = 0; f < k.n_frames; f++)
        k.fr_flag[f] = 0.0;
    for (long i = 0; i < k.n_active; i++)
        k.fr_flag[k.active[i]] = 1.0;
    for (long i = 0; i < k.n_recent; i++)
        k.fr_flag[k.recent[i]] = 2.0;
    counts[CN_FIRED] = k.fired;
    counts[CN_FRAMES] = k.n_frames;
    counts[CN_RESOLVED] = k.n_resolved;
    counts[CN_DRAWS] = k.draw - (long)ip[IP_RNG_OFFSET];
    counts[CN_BATCH_VECTOR] = k.batch_vector;
    counts[CN_BATCH_SCALAR] = k.batch_scalar;
    counts[CN_DECISIONS] = k.n_decisions;
    result = PyFloat_FromDouble(k.energy);

done:
    PyMem_Free(k.heap);
    PyMem_Free(k.fr_end);
    PyMem_Free(k.active);
    PyMem_Free(k.recent);
    PyMem_Free(k.overlap);
    PyMem_Free(k.pos);
    PyMem_Free(k.rx);
    PyMem_Free(k.elig);
    PyMem_Free(k.det);
    PyMem_Free(k.interf);
    PyMem_Free(k.win_rx);
    PyMem_Free(k.win_seen);
    Py_XDECREF(k.ten_obj);
    for (long i = 0; i < n_wbufs; i++)
        PyBuffer_Release(&wbufs[i]);
    PyMem_Free(wbufs);
    for (int i = 0; i < B_FIXED; i++)
        if (held[i])
            PyBuffer_Release(&bufs[i]);
    return result;
#undef GETBUF
}

/* ------------------------------------------------------------------ */
/* probe_ops: arithmetic self-check hooks for the fallback ladder      */
/* ------------------------------------------------------------------ */

static PyObject *
evcore_probe_ops(PyObject *self, PyObject *args)
{
    int op;
    PyObject *a_o, *b_o, *out_o;
    if (!PyArg_ParseTuple(args, "iOOO:probe_ops", &op, &a_o, &b_o, &out_o))
        return NULL;
    Py_buffer a, b, out;
    if (get_buf(a_o, &a, 0, 0, 8, "a") < 0)
        return NULL;
    if (get_buf(b_o, &b, 0, 0, 8, "b") < 0) {
        PyBuffer_Release(&a);
        return NULL;
    }
    if (get_buf(out_o, &out, 1, 0, 8, "out") < 0) {
        PyBuffer_Release(&a);
        PyBuffer_Release(&b);
        return NULL;
    }
    Py_ssize_t m = out.len / 8;
    if (a.len / 8 < m || b.len / 8 < m) {
        PyErr_SetString(PyExc_ValueError, "probe_ops: inputs shorter than out");
        PyBuffer_Release(&a);
        PyBuffer_Release(&b);
        PyBuffer_Release(&out);
        return NULL;
    }
    const double *pa = (const double *)a.buf;
    const double *pb = (const double *)b.buf;
    double *po = (double *)out.buf;
    switch (op) {
    case 0:   /* sqrt */
        for (Py_ssize_t i = 0; i < m; i++)
            po[i] = sqrt(pa[i]);
        break;
    case 1:   /* FMA-contraction canary: a*a + b*b as separate IEEE ops */
        for (Py_ssize_t i = 0; i < m; i++) {
            double xx = pa[i] * pa[i];
            double yy = pb[i] * pb[i];
            po[i] = xx + yy;
        }
        break;
    case 2:   /* floored modulo, the np.mod replica of the fold */
        for (Py_ssize_t i = 0; i < m; i++) {
            double r = fmod(pa[i], pb[i]);
            if (r != 0.0 && ((pb[i] < 0.0) != (r < 0.0)))
                r = r + pb[i];
            po[i] = r;
        }
        break;
    default:
        PyErr_SetString(PyExc_ValueError, "probe_ops: unknown op");
        PyBuffer_Release(&a);
        PyBuffer_Release(&b);
        PyBuffer_Release(&out);
        return NULL;
    }
    PyBuffer_Release(&a);
    PyBuffer_Release(&b);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* module                                                             */
/* ------------------------------------------------------------------ */

static PyMethodDef evcore_methods[] = {
    {"run_window", evcore_run_window, METH_VARARGS,
     "Run one broadcast window in the compiled event core (see "
     "repro.manet.compiled for the marshalling layer)."},
    {"probe_ops", evcore_probe_ops, METH_VARARGS,
     "probe_ops(op, a, b, out): evaluate sqrt / a*a+b*b / floored mod "
     "natively so the Python layer can verify arithmetic identity."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef evcore_module = {
    PyModuleDef_HEAD_INIT,
    "repro.manet._evcore",
    "Compiled event core: EventQueue/EventHandle drop-ins and the "
    "run_window broadcast kernel (DESIGN.md §14).",
    -1,
    evcore_methods,
};

PyMODINIT_FUNC
PyInit__evcore(void)
{
    if (PyType_Ready(&EvHandle_Type) < 0 || PyType_Ready(&EvQueue_Type) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&evcore_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&EvHandle_Type);
    if (PyModule_AddObject(m, "EventHandle", (PyObject *)&EvHandle_Type) < 0) {
        Py_DECREF(&EvHandle_Type);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&EvQueue_Type);
    if (PyModule_AddObject(m, "EventQueue", (PyObject *)&EvQueue_Type) < 0) {
        Py_DECREF(&EvQueue_Type);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
