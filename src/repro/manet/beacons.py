"""HELLO beaconing and per-node neighbour tables.

AEDB is a cross-layer protocol: every node broadcasts a HELLO beacon each
second at the *default* power, and receivers record the RX power of each
neighbour's latest beacon.  Those recorded powers are the only channel
knowledge a node has — the forwarding-area membership test and the
adaptive TX-power estimate are both computed from them (Sect. III of the
paper).

Beacon rounds are resolved *vectorised*: one ``(n, n)`` path-loss matrix
per round (the HPC guide's "vectorise the hot loop").  Beacons are assumed
collision-free — they are tiny, jittered in real systems, and the paper
uses them only as a neighbour-discovery mechanism; this simplification is
recorded in DESIGN.md §7.

Beacon state is *parameter-independent*: every round sends at the default
power on the fixed schedule, so the table timeline is a pure function of
``(scenario, mobility)``.  When a
:class:`~repro.manet.runtime.ScenarioRuntime` is supplied, rounds on the
canonical grid restore the precomputed snapshot in O(1) instead of
recomputing the O(n²) loss matrix; off-grid rounds fall back to the
incremental update (copy-on-write off the read-only snapshot), which is
bit-identical either way (DESIGN.md §8).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.manet.config import RadioConfig, SimulationConfig
from repro.manet.geometry import pairwise_distances
from repro.manet.mobility import MobilityModel
from repro.manet.propagation import build_path_loss
from repro.utils import flags
from repro.utils.units import DBM_MINUS_INF

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.manet.runtime import ScenarioRuntime

__all__ = ["NeighborTables", "freshness_mask", "live_index_enabled"]


def freshness_mask(last_seen, time_s: float, expiry_s: float):
    """THE freshness predicate: is an entry still live at ``time_s``?

    An entry is live iff ``time_s - last_seen <= expiry_s`` (boundary
    inclusive: an entry seen exactly ``expiry_s`` ago is still live).
    Elementwise over whatever ``last_seen`` is — a table row, the full
    matrix, or the distinct-value vector of the interval live index
    (:class:`repro.manet.runtime.TickLiveIndex`) — so every consumer
    shares one float expression and the expiry/boundary semantics can
    never drift between the scan path and the indexed path.
    """
    return (time_s - last_seen) <= expiry_s


def live_index_enabled() -> bool:
    """Whether tables may serve queries from the interval live index.

    ``REPRO_LIVE_INDEX=0`` forces the O(n) freshness scan everywhere
    (read per table construction, so already-forked campaign workers
    honour the parent's setting) — the ablation knob of
    ``benchmarks/bench_protocol_path.py`` and the identity tests.
    """
    return flags.read_bool("REPRO_LIVE_INDEX")


class NeighborTables:
    """Matrix-backed neighbour tables for all nodes at once.

    ``rx_power[i, j]`` is the RX power (dBm) at node ``i`` of node ``j``'s
    most recent beacon, and ``last_seen[i, j]`` its timestamp.  An entry is
    a *live* neighbour at time ``t`` iff a beacon was heard and
    ``t - last_seen <= neighbor_expiry_s``.
    """

    def __init__(
        self,
        n_nodes: int,
        sim: SimulationConfig,
        mobility: MobilityModel,
        radio: RadioConfig | None = None,
        runtime: "ScenarioRuntime | None" = None,
        use_live_index: bool | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if runtime is not None and radio is not None:
            raise ValueError(
                "pass either a runtime or an explicit radio, not both "
                "(the runtime's snapshots are bound to the scenario's radio)"
            )
        if runtime is not None and runtime.scenario.n_nodes != n_nodes:
            raise ValueError(
                "runtime was precomputed for a different network size "
                f"({runtime.scenario.n_nodes} != {n_nodes})"
            )
        if runtime is not None and mobility is not runtime.mobility:
            raise ValueError(
                "explicit mobility conflicts with the runtime's trace"
            )
        if runtime is not None and sim != runtime.sim:
            raise ValueError(
                "simulation config conflicts with the runtime's scenario"
            )
        self.n_nodes = int(n_nodes)
        self._sim = sim
        self._radio = radio or sim.radio
        self._mobility = mobility
        self._runtime = runtime
        if runtime is not None:
            self._loss = runtime.path_loss
            # Shared read-only pristine state; beacon_round copies on
            # write, and grid rounds just swap in snapshots.
            self.rx_power, self.last_seen = runtime.initial_tables
        else:
            self._loss = build_path_loss(self._radio)
            self.rx_power = np.full((n_nodes, n_nodes), DBM_MINUS_INF)
            self.last_seen = np.full((n_nodes, n_nodes), -np.inf)
        # Snapshots may be restored only while the tables replay the
        # canonical timeline *in order from the start* — a restored
        # snapshot embeds every earlier canonical round.  ``_next_tick``
        # indexes the next expected canonical time; any other round
        # (off-grid, skipped, or out of order) diverges for good and
        # switches the instance to incremental-only updates.
        self._next_tick: int | None = 0 if runtime is not None else None
        # Interval live index (DESIGN.md §11): while the tables sit on
        # the canonical timeline, neighbour queries resolve against the
        # runtime's precomputed per-tick index instead of scanning
        # ``last_seen``.  ``_tick_index`` is the canonical tick whose
        # snapshot is current (None before the first round and forever
        # after the timeline diverges); queries before the tick's own
        # time fall back to the scan, so the index never has to reason
        # about entries it dropped as already-expired.
        self._use_index = (
            live_index_enabled() if use_live_index is None else bool(use_live_index)
        )
        self._tick_index: int | None = None
        #: The current tick's TickLiveIndex, resolved once per snapshot
        #: restore (None off the canonical timeline) — queries then pay
        #: one attribute read instead of a runtime lookup.
        self._tick_entry = None
        self._tick_time = np.inf
        self.rounds_run = 0

    # ------------------------------------------------------------------ #
    # updates                                                            #
    # ------------------------------------------------------------------ #
    def beacon_round(self, time_s: float) -> None:
        """Everyone beacons at default power; update all tables at once.

        With a runtime, rounds that replay the canonical schedule in
        order swap in the precomputed (read-only) snapshots; the first
        round that deviates — off-grid, skipped, or out of order —
        leaves the canonical timeline for good and every round from then
        on recomputes incrementally (copying shared state before
        writing), so the state sequence matches the runtime-less path
        exactly for *any* call sequence.
        """
        if self._runtime is not None:
            if self._next_tick is not None:
                times = self._runtime.beacon_times
                snapshot = (
                    self._runtime.table_snapshot(time_s)
                    if self._next_tick < len(times)
                    and times[self._next_tick] == time_s
                    else None
                )
                if snapshot is not None:
                    self.rx_power, self.last_seen = snapshot
                    self._tick_index = self._next_tick
                    self._tick_entry = (
                        self._runtime.live_index_at(self._next_tick)
                        if self._use_index
                        else None
                    )
                    self._tick_time = time_s
                    self._next_tick += 1
                    self.rounds_run += 1
                    return
                self._next_tick = None
            positions = self._runtime.positions_at(time_s)
        else:
            positions = self._mobility.positions_at(time_s)
        # Incremental update: off the indexed timeline for good.
        self._tick_index = None
        self._tick_entry = None
        dist = pairwise_distances(positions)
        rx = self._loss.rx_power_dbm(self._radio.default_tx_power_dbm, dist)
        heard = rx >= self._radio.detection_threshold_dbm
        np.fill_diagonal(heard, False)
        if not self.rx_power.flags.writeable:
            self.rx_power = self.rx_power.copy()
            self.last_seen = self.last_seen.copy()
        self.rx_power[heard] = rx[heard]
        self.last_seen[heard] = time_s
        self.rounds_run += 1

    def run_schedule(self, start_s: float, end_s: float) -> int:
        """Run beacon rounds at every interval tick in ``[start, end]``.

        Returns the number of rounds executed.  Used to warm tables up to
        the broadcast injection time without going through the event queue
        (beacons never interact with data frames in this model).  Tick
        times are indexed from integers (``start + k * interval``), never
        accumulated, so long schedules cannot drift off the nominal grid.
        """
        interval = self._sim.beacon_interval_s
        count = 0
        while True:
            t = start_s + count * interval
            if t > end_s + 1e-12:
                break
            self.beacon_round(t)
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # queries (all from the point of view of node ``i``)                 #
    # ------------------------------------------------------------------ #
    def _live_index(self, time_s: float):
        """The per-tick live index covering ``time_s``, if one applies.

        Non-None only while the tables replay the canonical timeline, a
        runtime with a precomputed index backs them, and the query does
        not look *before* the current tick (where entries the index
        pruned as expired could still have been live).  Everything else
        — off-grid state, disabled index, runtime-less tables — scans.
        """
        entry = self._tick_entry
        if entry is None or time_s < self._tick_time:
            return None
        return entry

    def live_mask(self, i: int, time_s: float) -> np.ndarray:
        """Boolean mask over nodes: fresh neighbour entries of ``i``.

        On the canonical timeline this is an O(1) read-only row of the
        interval live index (bit-identical to the scan by construction —
        both sides evaluate :func:`freshness_mask`); off the timeline it
        falls back to the O(n) scan and returns a fresh writable array.
        """
        index = self._live_index(time_s)
        if index is not None:
            return index.live_row(i, time_s)
        fresh = freshness_mask(
            self.last_seen[i], time_s, self._sim.neighbor_expiry_s
        )
        fresh[i] = False
        return fresh

    def neighbors_of(self, i: int, time_s: float) -> np.ndarray:
        """Ids of live neighbours of ``i``."""
        return np.flatnonzero(self.live_mask(i, time_s))

    def beacon_rx_from(self, i: int, j: int) -> float:
        """Latest beacon RX power at ``i`` from ``j`` (dBm)."""
        return float(self.rx_power[i, j])

    def link_loss_db(self, i: int, j: int) -> float:
        """Estimated path loss of link ``i``-``j`` from ``j``'s beacon.

        Beacons are sent at default power, so loss = default - rx; channel
        reciprocity makes this the loss in both directions, which is what
        lets a node compute the power needed to *reach* a neighbour.
        """
        return self._radio.default_tx_power_dbm - self.beacon_rx_from(i, j)

    def degree(self, i: int, time_s: float) -> int:
        """Number of live neighbours of node ``i``."""
        index = self._live_index(time_s)
        if index is not None:
            return index.degree(i, time_s)
        return int(np.count_nonzero(self.live_mask(i, time_s)))

    def mean_degree(self, time_s: float) -> float:
        """Average node degree — a density diagnostic used by scenarios."""
        index = self._live_index(time_s)
        if index is not None:
            return float(index.live_total(time_s)) / self.n_nodes
        fresh = freshness_mask(
            self.last_seen, time_s, self._sim.neighbor_expiry_s
        )
        np.fill_diagonal(fresh, False)
        return float(np.count_nonzero(fresh)) / self.n_nodes
