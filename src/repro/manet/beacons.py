"""HELLO beaconing and per-node neighbour tables.

AEDB is a cross-layer protocol: every node broadcasts a HELLO beacon each
second at the *default* power, and receivers record the RX power of each
neighbour's latest beacon.  Those recorded powers are the only channel
knowledge a node has — the forwarding-area membership test and the
adaptive TX-power estimate are both computed from them (Sect. III of the
paper).

Beacon rounds are resolved *vectorised*: one ``(n, n)`` path-loss matrix
per round (the HPC guide's "vectorise the hot loop").  Beacons are assumed
collision-free — they are tiny, jittered in real systems, and the paper
uses them only as a neighbour-discovery mechanism; this simplification is
recorded in DESIGN.md §7.
"""

from __future__ import annotations

import numpy as np

from repro.manet.config import RadioConfig, SimulationConfig
from repro.manet.geometry import pairwise_distances
from repro.manet.mobility import MobilityModel
from repro.manet.propagation import build_path_loss
from repro.utils.units import DBM_MINUS_INF

__all__ = ["NeighborTables"]


class NeighborTables:
    """Matrix-backed neighbour tables for all nodes at once.

    ``rx_power[i, j]`` is the RX power (dBm) at node ``i`` of node ``j``'s
    most recent beacon, and ``last_seen[i, j]`` its timestamp.  An entry is
    a *live* neighbour at time ``t`` iff a beacon was heard and
    ``t - last_seen <= neighbor_expiry_s``.
    """

    def __init__(
        self,
        n_nodes: int,
        sim: SimulationConfig,
        mobility: MobilityModel,
        radio: RadioConfig | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self._sim = sim
        self._radio = radio or sim.radio
        self._mobility = mobility
        self._loss = build_path_loss(self._radio)
        self.rx_power = np.full((n_nodes, n_nodes), DBM_MINUS_INF)
        self.last_seen = np.full((n_nodes, n_nodes), -np.inf)
        self.rounds_run = 0

    # ------------------------------------------------------------------ #
    # updates                                                            #
    # ------------------------------------------------------------------ #
    def beacon_round(self, time_s: float) -> None:
        """Everyone beacons at default power; update all tables at once."""
        positions = self._mobility.positions_at(time_s)
        dist = pairwise_distances(positions)
        rx = self._loss.rx_power_dbm(self._radio.default_tx_power_dbm, dist)
        heard = rx >= self._radio.detection_threshold_dbm
        np.fill_diagonal(heard, False)
        self.rx_power[heard] = rx[heard]
        self.last_seen[heard] = time_s
        self.rounds_run += 1

    def run_schedule(self, start_s: float, end_s: float) -> int:
        """Run beacon rounds at every interval tick in ``[start, end]``.

        Returns the number of rounds executed.  Used to warm tables up to
        the broadcast injection time without going through the event queue
        (beacons never interact with data frames in this model).
        """
        interval = self._sim.beacon_interval_s
        count = 0
        t = start_s
        while t <= end_s + 1e-12:
            self.beacon_round(t)
            count += 1
            t += interval
        return count

    # ------------------------------------------------------------------ #
    # queries (all from the point of view of node ``i``)                 #
    # ------------------------------------------------------------------ #
    def live_mask(self, i: int, time_s: float) -> np.ndarray:
        """Boolean mask over nodes: fresh neighbour entries of ``i``."""
        fresh = (time_s - self.last_seen[i]) <= self._sim.neighbor_expiry_s
        fresh[i] = False
        return fresh

    def neighbors_of(self, i: int, time_s: float) -> np.ndarray:
        """Ids of live neighbours of ``i``."""
        return np.flatnonzero(self.live_mask(i, time_s))

    def beacon_rx_from(self, i: int, j: int) -> float:
        """Latest beacon RX power at ``i`` from ``j`` (dBm)."""
        return float(self.rx_power[i, j])

    def link_loss_db(self, i: int, j: int) -> float:
        """Estimated path loss of link ``i``-``j`` from ``j``'s beacon.

        Beacons are sent at default power, so loss = default - rx; channel
        reciprocity makes this the loss in both directions, which is what
        lets a node compute the power needed to *reach* a neighbour.
        """
        return self._radio.default_tx_power_dbm - self.beacon_rx_from(i, j)

    def degree(self, i: int, time_s: float) -> int:
        """Number of live neighbours of node ``i``."""
        return int(np.count_nonzero(self.live_mask(i, time_s)))

    def mean_degree(self, time_s: float) -> float:
        """Average node degree — a density diagnostic used by scenarios."""
        fresh = (time_s - self.last_seen) <= self._sim.neighbor_expiry_s
        np.fill_diagonal(fresh, False)
        return float(np.count_nonzero(fresh)) / self.n_nodes
