"""The shared radio medium: frame transmission and collision resolution.

Model (a deliberate abstraction of ns3's 802.11 PHY, documented in
DESIGN.md §4/§7):

* A data frame occupies the single shared channel for ``frame_airtime_s``.
* Reception is resolved at frame end.  A receiver decodes the frame iff

  1. it is not itself transmitting during any overlap (half duplex),
  2. the frame's RX power clears the detection threshold, and
  3. the frame's RX power exceeds the *power sum* of all time-overlapping
     other frames at that receiver by at least ``capture_threshold_db``
     (SINR capture; interferers below the detection threshold still count
     toward the interference sum).

* Propagation delay (d/c, < 2 µs at these ranges) is folded into the
  frame-end timestamp and is irrelevant next to millisecond airtimes, so
  positions are sampled at the frame midpoint.

Resolution is vectorised: the frame and all overlapping senders stack
into one ``(k, n)`` distance/path-loss computation, and delivery
candidates come from a single boolean mask instead of a per-receiver
Python scan.  Energy and frame counts are running accumulators (O(1)
readout); per-frame ``delivered_to`` lists are recorded only when
``record_deliveries`` is requested.

The medium knows nothing about AEDB: it reports per-receiver outcomes to a
delivery callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.manet.config import RadioConfig
from repro.manet.events import EventQueue
from repro.manet.mobility import MobilityModel
from repro.manet.propagation import build_path_loss
from repro.utils.units import dbm_to_mw

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.manet.runtime import ScenarioRuntime

__all__ = ["Frame", "RadioMedium"]


@dataclass(slots=True)
class Frame:
    """One in-flight broadcast data frame."""

    sender: int
    tx_power_dbm: float
    start_s: float
    end_s: float
    #: Sequence number assigned by the medium (stable ordering).
    seq: int = 0
    #: Receivers that successfully decoded this frame.  Filled at
    #: resolution only when the medium records deliveries.
    delivered_to: list[int] = field(default_factory=list)

    def overlaps(self, other: "Frame") -> bool:
        """True if the two frames share any airtime."""
        return self.start_s < other.end_s and other.start_s < self.end_s


#: Delivery callback signature: (receiver, frame, rx_power_dbm, time_s).
DeliveryCallback = Callable[[int, "Frame", float, float], None]


class RadioMedium:
    """Single-channel broadcast medium with SINR capture.

    Parameters
    ----------
    queue:
        The simulation's event queue (frame-end events are scheduled on it).
    mobility:
        Position oracle for path-loss computation.
    radio:
        Physical-layer constants.
    on_delivery:
        Called once per (receiver, frame) successful decode.
    runtime:
        Optional :class:`~repro.manet.runtime.ScenarioRuntime`; shares its
        path-loss model and memoised position snapshots (frame midpoints
        that recur across same-scenario evaluations hit the memo).
    record_deliveries:
        Keep per-frame ``delivered_to`` lists.  Off by default — the
        metrics never need them; tests and diagnostics opt in.
    """

    def __init__(
        self,
        queue: EventQueue,
        mobility: MobilityModel,
        radio: RadioConfig,
        on_delivery: DeliveryCallback,
        runtime: "ScenarioRuntime | None" = None,
        record_deliveries: bool = False,
    ):
        if runtime is not None:
            # The runtime's precomputed substrate is bound to its
            # scenario's physics; mixing it with a different radio or
            # trace would resolve frames with inconsistent models.
            if radio != runtime.sim.radio:
                raise ValueError(
                    "radio config conflicts with the runtime's scenario"
                )
            if mobility is not runtime.mobility:
                raise ValueError(
                    "explicit mobility conflicts with the runtime's trace"
                )
        self._queue = queue
        self._mobility = mobility
        self._radio = radio
        self._runtime = runtime
        self._loss = (
            runtime.path_loss if runtime is not None else build_path_loss(radio)
        )
        self._on_delivery = on_delivery
        self._record_deliveries = bool(record_deliveries)
        self._active: list[Frame] = []
        self._recent: list[Frame] = []  # ended frames kept for overlap checks
        self._seq = 0
        # Hot-loop constants and running accumulators (O(1) readout).
        self._capture_lin = 10.0 ** (radio.capture_threshold_db / 10.0)
        self._min_tx = float(radio.min_tx_power_dbm)
        self._max_tx = float(radio.default_tx_power_dbm)
        self._detection_dbm = float(radio.detection_threshold_dbm)
        self._energy_dbm = 0.0
        self._n_frames = 0
        #: All frames ever transmitted (for metrics/inspection).
        self.history: list[Frame] = []

    # ------------------------------------------------------------------ #
    # transmission                                                       #
    # ------------------------------------------------------------------ #
    def transmit(self, sender: int, tx_power_dbm: float, time_s: float) -> Frame:
        """Start a frame at ``time_s``; resolution happens at frame end."""
        power = min(max(float(tx_power_dbm), self._min_tx), self._max_tx)
        frame = Frame(
            sender=sender,
            tx_power_dbm=power,
            start_s=time_s,
            end_s=time_s + self._radio.frame_airtime_s,
            seq=self._seq,
        )
        self._seq += 1
        self._active.append(frame)
        self.history.append(frame)
        self._energy_dbm += power
        self._n_frames += 1
        self._queue.schedule(frame.end_s, lambda t, f=frame: self._resolve(f, t))
        return frame

    # ------------------------------------------------------------------ #
    # resolution                                                         #
    # ------------------------------------------------------------------ #
    def _overlapping(self, frame: Frame) -> list[Frame]:
        """All other frames sharing airtime with ``frame``."""
        pool = self._active + self._recent
        return [f for f in pool if f is not frame and f.overlaps(frame)]

    def _positions_at(self, time_s: float) -> np.ndarray:
        if self._runtime is not None:
            return self._runtime.positions_at(time_s)
        return self._mobility.positions_at(time_s)

    def _resolve(self, frame: Frame, time_s: float) -> None:
        """Frame-end event: decide which nodes decoded ``frame``."""
        self._active.remove(frame)
        # Keep the frame around for overlap checks against transmissions
        # that started during its airtime and have not yet ended.
        self._recent.append(frame)
        self._gc_recent(time_s)

        positions = self._positions_at(0.5 * (frame.start_s + frame.end_s))
        overlap = self._overlapping(frame)

        if overlap:
            # One stacked (k, n) distance/path-loss computation for the
            # frame and every overlapping sender (row 0 is the frame).
            senders = [frame.sender] + [other.sender for other in overlap]
            powers = np.array(
                [frame.tx_power_dbm] + [other.tx_power_dbm for other in overlap]
            )
            diff = positions[None, :, :] - positions[senders][:, None, :]
            dist = np.sqrt(np.einsum("kij,kij->ki", diff, diff))
            rx_all = self._loss.rx_power_dbm(powers[:, None], dist)
            rx_dbm = rx_all[0]
            # Interference power sum per receiver, in mW.  Rows accumulate
            # sequentially in overlap order (bit-stable summation).
            interference_mw = np.zeros(positions.shape[0])
            for row in rx_all[1:]:
                interference_mw += dbm_to_mw(row)
            signal_mw = dbm_to_mw(rx_dbm)
            clear = np.where(
                interference_mw > 0.0,
                signal_mw >= self._capture_lin * interference_mw,
                True,
            )
            eligible = (rx_dbm >= self._detection_dbm) & clear
            eligible[senders] = False  # half duplex / own frame
        else:
            # Clean channel (the common case): zero interference always
            # clears capture, so only detection and half-duplex matter.
            diff = positions - positions[frame.sender]
            dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            rx_dbm = self._loss.rx_power_dbm(frame.tx_power_dbm, dist)
            eligible = rx_dbm >= self._detection_dbm
            eligible[frame.sender] = False

        receivers = np.nonzero(eligible)[0]
        if receivers.size == 0:
            return
        record = self._record_deliveries
        on_delivery = self._on_delivery
        rx_list = rx_dbm.tolist()  # exact python floats, one conversion
        for r in receivers.tolist():
            if record:
                frame.delivered_to.append(r)
            on_delivery(r, frame, rx_list[r], time_s)

    def _gc_recent(self, time_s: float) -> None:
        """Drop ended frames that can no longer overlap anything new."""
        window = 2.0 * self._radio.frame_airtime_s
        self._recent = [f for f in self._recent if f.end_s >= time_s - window]

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def transmission_count(self) -> int:
        """Total frames ever put on the air."""
        return self._n_frames

    def energy_dbm_total(self) -> float:
        """Sum of TX powers in raw dBm — the paper's energy objective.

        O(1): accumulated at transmit time in ``history`` append order.
        """
        return self._energy_dbm
