"""The shared radio medium: frame transmission and collision resolution.

Model (a deliberate abstraction of ns3's 802.11 PHY, documented in
DESIGN.md §4/§7):

* A data frame occupies the single shared channel for ``frame_airtime_s``.
* Reception is resolved at frame end.  A receiver decodes the frame iff

  1. it is not itself transmitting during any overlap (half duplex),
  2. the frame's RX power clears the detection threshold, and
  3. the frame's RX power exceeds the *power sum* of all time-overlapping
     other frames at that receiver by at least ``capture_threshold_db``
     (SINR capture; interferers below the detection threshold still count
     toward the interference sum).

* Propagation delay (d/c, < 2 µs at these ranges) is folded into the
  frame-end timestamp and is irrelevant next to millisecond airtimes, so
  positions are sampled at the frame midpoint.

Resolution is vectorised: the frame and all overlapping senders stack
into one ``(k, n)`` distance/path-loss computation, and delivery
candidates come from a single boolean mask instead of a per-receiver
Python scan.  Energy and frame counts are running accumulators (O(1)
readout); per-frame ``delivered_to`` lists are recorded only when
``record_deliveries`` is requested.

The medium knows nothing about AEDB: it reports per-receiver outcomes to a
delivery callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.manet.config import RadioConfig
from repro.manet.events import EventQueue
from repro.manet.mobility import MobilityModel
from repro.manet.propagation import LogDistancePathLoss, build_path_loss
from repro.utils import flags
from repro.utils.units import dbm_to_mw

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.manet.runtime import ScenarioRuntime

__all__ = ["Frame", "RadioMedium", "batched_deliveries_enabled"]


@dataclass(slots=True)
class Frame:
    """One in-flight broadcast data frame."""

    sender: int
    tx_power_dbm: float
    start_s: float
    end_s: float
    #: Sequence number assigned by the medium (stable ordering).
    seq: int = 0
    #: Receivers that successfully decoded this frame.  Filled at
    #: resolution only when the medium records deliveries.
    delivered_to: list[int] = field(default_factory=list)

    def overlaps(self, other: "Frame") -> bool:
        """True if the two frames share any airtime."""
        return self.start_s < other.end_s and other.start_s < self.end_s


#: Delivery callback signature: (receiver, frame, rx_power_dbm, time_s).
DeliveryCallback = Callable[[int, "Frame", float, float], None]

#: Batched delivery callback: (receivers, frame, rx_dbm, time_s) with
#: ``receivers`` a boolean eligibility mask over ALL nodes and ``rx_dbm``
#: the full per-node rx-power vector — one call per resolved frame
#: instead of one per receiver, with no per-receiver fancy indexing on
#: either side (DESIGN.md §11).  Both arrays are only valid for the
#: duration of the call (the medium reuses its scratch buffers).
BatchDeliveryCallback = Callable[[np.ndarray, "Frame", np.ndarray, float], None]


def batched_deliveries_enabled() -> bool:
    """Whether simulators wire the batched delivery path by default.

    ``REPRO_BATCH_DELIVERIES=0`` restores the historical one-callback-
    per-receiver path (read at simulator construction, so forked
    campaign workers honour the parent's setting) — the ablation knob of
    ``benchmarks/bench_protocol_path.py`` and the identity tests.
    """
    return flags.read_bool("REPRO_BATCH_DELIVERIES")


class RadioMedium:
    """Single-channel broadcast medium with SINR capture.

    Parameters
    ----------
    queue:
        The simulation's event queue (frame-end events are scheduled on it).
    mobility:
        Position oracle for path-loss computation.
    radio:
        Physical-layer constants.
    on_delivery:
        Called once per (receiver, frame) successful decode.
    runtime:
        Optional :class:`~repro.manet.runtime.ScenarioRuntime`; shares its
        path-loss model and memoised position snapshots (frame midpoints
        that recur across same-scenario evaluations hit the memo).
    record_deliveries:
        Keep per-frame ``delivered_to`` lists.  Off by default — the
        metrics never need them; tests and diagnostics opt in.
    on_delivery_batch:
        Optional batched delivery callback.  When set, each resolved
        frame produces ONE call with the full receiver vector and its
        aligned rx powers instead of a per-receiver ``on_delivery``
        loop; the per-event callback is then never invoked for frames
        with at least one receiver (DESIGN.md §11).
    """

    def __init__(
        self,
        queue: EventQueue,
        mobility: MobilityModel,
        radio: RadioConfig,
        on_delivery: DeliveryCallback,
        runtime: "ScenarioRuntime | None" = None,
        record_deliveries: bool = False,
        on_delivery_batch: BatchDeliveryCallback | None = None,
    ):
        if runtime is not None:
            # The runtime's precomputed substrate is bound to its
            # scenario's physics; mixing it with a different radio or
            # trace would resolve frames with inconsistent models.
            if radio != runtime.sim.radio:
                raise ValueError(
                    "radio config conflicts with the runtime's scenario"
                )
            if mobility is not runtime.mobility:
                raise ValueError(
                    "explicit mobility conflicts with the runtime's trace"
                )
        self._queue = queue
        self._mobility = mobility
        self._radio = radio
        self._runtime = runtime
        self._loss = (
            runtime.path_loss if runtime is not None else build_path_loss(radio)
        )
        self._on_delivery = on_delivery
        self._on_delivery_batch = on_delivery_batch
        self._record_deliveries = bool(record_deliveries)
        self._active: list[Frame] = []
        self._recent: list[Frame] = []  # ended frames kept for overlap checks
        self._seq = 0
        # Hot-loop constants and running accumulators (O(1) readout).
        self._capture_lin = 10.0 ** (radio.capture_threshold_db / 10.0)
        self._min_tx = float(radio.min_tx_power_dbm)
        self._max_tx = float(radio.default_tx_power_dbm)
        self._detection_dbm = float(radio.detection_threshold_dbm)
        self._airtime_s = float(radio.frame_airtime_s)
        # Batched-resolution scratch (DESIGN.md §11): the clean-channel
        # path of the batch mode runs the *same* op sequence as the
        # generic path but into reusable buffers (allocated lazily at
        # first resolve), and log-distance — the default model — is
        # inlined with its scalars hoisted.  ``type is`` (not
        # isinstance): a subclass overriding loss_db must not be
        # silently bypassed.
        if type(self._loss) is LogDistancePathLoss:
            self._fast_log_distance = (
                float(self._loss.reference_distance_m),
                float(self._loss.reference_loss_db),
                10.0 * self._loss.exponent,
            )
        else:
            self._fast_log_distance = None
        if on_delivery_batch is not None:
            n = mobility.n_nodes
            self._pos_buf = np.empty((n, 2))
            self._diff_buf = np.empty((n, 2))
            self._rx_buf = np.empty(n)
            self._elig_buf = np.empty(n, dtype=bool)
        self._energy_dbm = 0.0
        self._n_frames = 0
        self._n_resolved = 0
        #: All frames ever transmitted (for metrics/inspection).
        self.history: list[Frame] = []

    # ------------------------------------------------------------------ #
    # transmission                                                       #
    # ------------------------------------------------------------------ #
    def transmit(self, sender: int, tx_power_dbm: float, time_s: float) -> Frame:
        """Start a frame at ``time_s``; resolution happens at frame end."""
        power = min(max(float(tx_power_dbm), self._min_tx), self._max_tx)
        frame = Frame(
            sender=sender,
            tx_power_dbm=power,
            start_s=time_s,
            end_s=time_s + self._airtime_s,
            seq=self._seq,
        )
        self._seq += 1
        self._active.append(frame)
        self.history.append(frame)
        self._energy_dbm += power
        self._n_frames += 1
        self._queue.post(frame.end_s, lambda t, f=frame: self._resolve(f, t))
        return frame

    # ------------------------------------------------------------------ #
    # resolution                                                         #
    # ------------------------------------------------------------------ #
    def _overlapping(self, frame: Frame) -> list[Frame]:
        """All other frames sharing airtime with ``frame``."""
        pool = self._active + self._recent
        return [f for f in pool if f is not frame and f.overlaps(frame)]

    def _positions_at(self, time_s: float) -> np.ndarray:
        # Per-event mode only — byte-for-byte the historical path (the
        # batch mode of _resolve fills its scratch buffer straight off
        # the trace instead).
        if self._runtime is not None:
            return self._runtime.positions_at(time_s)
        return self._mobility.positions_at(time_s)

    def _resolve(self, frame: Frame, time_s: float) -> None:
        """Frame-end event: decide which nodes decoded ``frame``."""
        self._n_resolved += 1
        active = self._active
        recent = self._recent
        active.remove(frame)
        # Keep the frame around for overlap checks against transmissions
        # that started during its airtime and have not yet ended.
        recent.append(frame)
        if recent[0].end_s < time_s - 2.0 * self._airtime_s:
            self._gc_recent(time_s)

        if self._on_delivery_batch is not None:
            # One-shot midpoint query straight off the trace into the
            # scratch buffer: frame midpoints derive from timer draws
            # and essentially never recur, and the runtime's position
            # memo could only ever echo the same bits back (it caches
            # np.array copies of the same pure positions_at answers),
            # so batch mode skips its lookup and churn entirely.
            positions = self._mobility.positions_into(
                0.5 * (frame.start_s + frame.end_s), self._pos_buf
            )
        else:
            positions = self._positions_at(0.5 * (frame.start_s + frame.end_s))
        # Quiet channel (nothing else in flight, the frame alone in the
        # recent window): skip the overlap scan entirely.
        if not active and len(recent) == 1:
            overlap: list[Frame] = []
        else:
            overlap = self._overlapping(frame)
        batch = self._on_delivery_batch

        if batch is not None:
            # Batch mode, clean or colliding: rx and detection always
            # come from one allocation-free scratch chain (identical op
            # sequence to the generic branches — the stacked overlap
            # computation's row 0 IS this chain), and for a collision
            # the interference/capture arithmetic (per-interferer
            # distances, path loss, and the expensive 10**x) runs only
            # at columns that already clear detection and are not
            # transmitting.  Every element actually computed goes
            # through the identical expressions; skipped columns were
            # doomed to eligible=False either way.
            diff, rx_dbm, eligible = self._diff_buf, self._rx_buf, self._elig_buf
            np.subtract(positions, positions[frame.sender], diff)
            # dist² as mul + strided add: einsum's 2-element contraction
            # is the same single addition per row, at ~2x the dispatch
            # cost.
            np.multiply(diff, diff, diff)
            np.add(diff[:, 0], diff[:, 1], rx_dbm)
            np.sqrt(rx_dbm, rx_dbm)
            if self._fast_log_distance is not None:
                ref_d, ref_loss, scale = self._fast_log_distance
                np.maximum(rx_dbm, ref_d, out=rx_dbm)
                if ref_d != 1.0:  # x / 1.0 is the identity, bit for bit
                    np.divide(rx_dbm, ref_d, rx_dbm)
                np.log10(rx_dbm, rx_dbm)
                np.multiply(rx_dbm, scale, rx_dbm)
                np.add(rx_dbm, ref_loss, rx_dbm)
                np.subtract(frame.tx_power_dbm, rx_dbm, rx_dbm)
            else:
                rx_dbm = self._loss.rx_power_dbm(frame.tx_power_dbm, rx_dbm)
            np.greater_equal(rx_dbm, self._detection_dbm, eligible)
            if overlap:
                senders = [frame.sender] + [o.sender for o in overlap]
                eligible[senders] = False  # half duplex / own frame
                det_ids = np.nonzero(eligible)[0]
                eligible[:] = False
                if det_ids.size:
                    powers = np.array([o.tx_power_dbm for o in overlap])
                    sub_pos = positions[det_ids]
                    idiff = sub_pos[None, :, :] - positions[senders[1:]][:, None, :]
                    idist = np.sqrt(np.einsum("kij,kij->ki", idiff, idiff))
                    rx_interf = self._loss.rx_power_dbm(powers[:, None], idist)
                    # Interference power sum per receiver, in mW.  Rows
                    # accumulate sequentially in overlap order exactly
                    # as the generic branch does (bit-stable summation).
                    interference_mw = np.zeros(det_ids.size)
                    for row in rx_interf:
                        interference_mw += dbm_to_mw(row)
                    signal_mw = dbm_to_mw(rx_dbm[det_ids])
                    eligible[det_ids] = np.where(
                        interference_mw > 0.0,
                        signal_mw >= self._capture_lin * interference_mw,
                        True,
                    )
            else:
                eligible[frame.sender] = False
        elif overlap:
            # One stacked (k, n) distance/path-loss computation for the
            # frame and every overlapping sender (row 0 is the frame).
            senders = [frame.sender] + [other.sender for other in overlap]
            powers = np.array(
                [frame.tx_power_dbm] + [other.tx_power_dbm for other in overlap]
            )
            diff = positions[None, :, :] - positions[senders][:, None, :]
            dist = np.sqrt(np.einsum("kij,kij->ki", diff, diff))
            rx_all = self._loss.rx_power_dbm(powers[:, None], dist)
            rx_dbm = rx_all[0]
            # Interference power sum per receiver, in mW.  Rows accumulate
            # sequentially in overlap order (bit-stable summation).
            interference_mw = np.zeros(positions.shape[0])
            for row in rx_all[1:]:
                interference_mw += dbm_to_mw(row)
            signal_mw = dbm_to_mw(rx_dbm)
            clear = np.where(
                interference_mw > 0.0,
                signal_mw >= self._capture_lin * interference_mw,
                True,
            )
            eligible = (rx_dbm >= self._detection_dbm) & clear
            eligible[senders] = False  # half duplex / own frame
        else:
            # Clean channel (the common case): zero interference always
            # clears capture, so only detection and half-duplex matter.
            diff = positions - positions[frame.sender]
            dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            rx_dbm = self._loss.rx_power_dbm(frame.tx_power_dbm, dist)
            eligible = rx_dbm >= self._detection_dbm
            eligible[frame.sender] = False

        record = self._record_deliveries
        if batch is not None:
            # The vectorised seam: the eligibility mask and the full rx
            # vector go out in ONE call instead of one Python callback
            # per receiver — and nobody pays a per-receiver fancy
            # index.  Values are the same float64 entries the per-event
            # loop would pass.  (The receiver consumes the mask however
            # it likes; AEDB drops to a scalar loop for tiny frames, and
            # an all-False mask is its no-op.)
            if record:
                frame.delivered_to.extend(np.nonzero(eligible)[0].tolist())
            batch(eligible, frame, rx_dbm, time_s)
            return
        receivers = np.nonzero(eligible)[0]
        if receivers.size == 0:
            return
        on_delivery = self._on_delivery
        rx_list = rx_dbm.tolist()  # exact python floats, one conversion
        for r in receivers.tolist():
            if record:
                frame.delivered_to.append(r)
            on_delivery(r, frame, rx_list[r], time_s)

    def _gc_recent(self, time_s: float) -> None:
        """Drop ended frames that can no longer overlap anything new.

        Only called when there is something to drop: _resolve gates the
        call on the oldest entry having left the window (append order
        is frame-end order), so the common quiet-channel case never
        pays the rebuild.
        """
        window = 2.0 * self._airtime_s
        self._recent = [f for f in self._recent if f.end_s >= time_s - window]

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def transmission_count(self) -> int:
        """Total frames ever put on the air."""
        return self._n_frames

    @property
    def resolved_count(self) -> int:
        """Frames whose end-of-airtime resolution has run (frames still
        in flight at the horizon never resolve)."""
        return self._n_resolved

    def energy_dbm_total(self) -> float:
        """Sum of TX powers in raw dBm — the paper's energy objective.

        O(1): accumulated at transmit time in ``history`` append order.
        """
        return self._energy_dbm
