"""The shared radio medium: frame transmission and collision resolution.

Model (a deliberate abstraction of ns3's 802.11 PHY, documented in
DESIGN.md §4/§7):

* A data frame occupies the single shared channel for ``frame_airtime_s``.
* Reception is resolved at frame end.  A receiver decodes the frame iff

  1. it is not itself transmitting during any overlap (half duplex),
  2. the frame's RX power clears the detection threshold, and
  3. the frame's RX power exceeds the *power sum* of all time-overlapping
     other frames at that receiver by at least ``capture_threshold_db``
     (SINR capture; interferers below the detection threshold still count
     toward the interference sum).

* Propagation delay (d/c, < 2 µs at these ranges) is folded into the
  frame-end timestamp and is irrelevant next to millisecond airtimes, so
  positions are sampled at the frame midpoint.

The medium knows nothing about AEDB: it reports per-receiver outcomes to a
delivery callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.manet.config import RadioConfig
from repro.manet.events import EventQueue
from repro.manet.mobility import MobilityModel
from repro.manet.propagation import build_path_loss
from repro.utils.units import dbm_to_mw

__all__ = ["Frame", "RadioMedium"]


@dataclass
class Frame:
    """One in-flight broadcast data frame."""

    sender: int
    tx_power_dbm: float
    start_s: float
    end_s: float
    #: Sequence number assigned by the medium (stable ordering).
    seq: int = 0
    #: Receivers that successfully decoded this frame (filled at resolution).
    delivered_to: list[int] = field(default_factory=list)

    def overlaps(self, other: "Frame") -> bool:
        """True if the two frames share any airtime."""
        return self.start_s < other.end_s and other.start_s < self.end_s


#: Delivery callback signature: (receiver, frame, rx_power_dbm, time_s).
DeliveryCallback = Callable[[int, Frame, float, float], None]


class RadioMedium:
    """Single-channel broadcast medium with SINR capture.

    Parameters
    ----------
    queue:
        The simulation's event queue (frame-end events are scheduled on it).
    mobility:
        Position oracle for path-loss computation.
    radio:
        Physical-layer constants.
    on_delivery:
        Called once per (receiver, frame) successful decode.
    """

    def __init__(
        self,
        queue: EventQueue,
        mobility: MobilityModel,
        radio: RadioConfig,
        on_delivery: DeliveryCallback,
    ):
        self._queue = queue
        self._mobility = mobility
        self._radio = radio
        self._loss = build_path_loss(radio)
        self._on_delivery = on_delivery
        self._active: list[Frame] = []
        self._recent: list[Frame] = []  # ended frames kept for overlap checks
        self._seq = 0
        #: All frames ever transmitted (for metrics/inspection).
        self.history: list[Frame] = []

    # ------------------------------------------------------------------ #
    # transmission                                                       #
    # ------------------------------------------------------------------ #
    def transmit(self, sender: int, tx_power_dbm: float, time_s: float) -> Frame:
        """Start a frame at ``time_s``; resolution happens at frame end."""
        power = float(
            np.clip(
                tx_power_dbm,
                self._radio.min_tx_power_dbm,
                self._radio.default_tx_power_dbm,
            )
        )
        frame = Frame(
            sender=sender,
            tx_power_dbm=power,
            start_s=time_s,
            end_s=time_s + self._radio.frame_airtime_s,
            seq=self._seq,
        )
        self._seq += 1
        self._active.append(frame)
        self.history.append(frame)
        self._queue.schedule(frame.end_s, lambda t, f=frame: self._resolve(f, t))
        return frame

    # ------------------------------------------------------------------ #
    # resolution                                                         #
    # ------------------------------------------------------------------ #
    def _overlapping(self, frame: Frame) -> list[Frame]:
        """All other frames sharing airtime with ``frame``."""
        pool = self._active + self._recent
        return [f for f in pool if f is not frame and f.overlaps(frame)]

    def _resolve(self, frame: Frame, time_s: float) -> None:
        """Frame-end event: decide which nodes decoded ``frame``."""
        self._active.remove(frame)
        # Keep the frame around for overlap checks against transmissions
        # that started during its airtime and have not yet ended.
        self._recent.append(frame)
        self._gc_recent(time_s)

        positions = self._mobility.positions_at(
            0.5 * (frame.start_s + frame.end_s)
        )
        n = positions.shape[0]
        sender_pos = positions[frame.sender]
        diff = positions - sender_pos[None, :]
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        rx_dbm = self._loss.rx_power_dbm(frame.tx_power_dbm, dist)

        overlap = self._overlapping(frame)
        # Interference power sum per receiver, in mW.
        interference_mw = np.zeros(n)
        busy_tx = {frame.sender}
        for other in overlap:
            busy_tx.add(other.sender)
            other_pos = positions[other.sender]
            odiff = positions - other_pos[None, :]
            odist = np.sqrt(np.einsum("ij,ij->i", odiff, odiff))
            interference_mw += dbm_to_mw(
                self._loss.rx_power_dbm(other.tx_power_dbm, odist)
            )

        detect = rx_dbm >= self._radio.detection_threshold_dbm
        signal_mw = dbm_to_mw(rx_dbm)
        capture_lin = 10.0 ** (self._radio.capture_threshold_db / 10.0)
        with np.errstate(divide="ignore"):
            clear = np.where(
                interference_mw > 0.0,
                signal_mw >= capture_lin * interference_mw,
                True,
            )

        for receiver in range(n):
            if receiver in busy_tx:
                continue  # half duplex / own frame
            if detect[receiver] and clear[receiver]:
                frame.delivered_to.append(receiver)
                self._on_delivery(receiver, frame, float(rx_dbm[receiver]), time_s)

    def _gc_recent(self, time_s: float) -> None:
        """Drop ended frames that can no longer overlap anything new."""
        window = 2.0 * self._radio.frame_airtime_s
        self._recent = [f for f in self._recent if f.end_s >= time_s - window]

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def transmission_count(self) -> int:
        """Total frames ever put on the air."""
        return len(self.history)

    def energy_dbm_total(self) -> float:
        """Sum of TX powers in raw dBm — the paper's energy objective."""
        return float(sum(f.tx_power_dbm for f in self.history))
