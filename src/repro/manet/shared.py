"""Shared-memory scenario runtimes: one precompute, many processes.

The per-process runtime memo (:mod:`repro.manet.runtime`) spares a worker
the substrate recompute *within* its own process, but a pool of W workers
evaluating the same scenarios still builds — and privately holds — W
copies of every per-tick neighbour-table timeline.  Memory and warm-up
cost scale with worker count instead of scenario count, the exact
overhead the paper's parallel local search is designed to avoid.

:class:`SharedRuntimeArena` fixes that at the OS level: the pool owner
precomputes each scenario's :class:`~repro.manet.runtime.ScenarioRuntime`
once, packs the parameter-independent arrays into one
:mod:`multiprocessing.shared_memory` segment per scenario, and hands
workers a tiny picklable :class:`SharedRuntimeHandle`.  Workers call
:func:`attach_runtime` and get a runtime whose snapshot arrays are
**read-only views into the shared pages** — zero copy, zero recompute,
bit-identical metrics (DESIGN.md §9).

Layout of one segment (C order; ``V`` = total interval-index breakpoint
values across all ticks, ``B = V + T`` suffix blocks)::

    rx_stack      (T, n, n)  f8  per-tick rx_power snapshots, canonical order
    seen_stack    (T, n, n)  f8  per-tick last_seen snapshots
    doubles       (2n,)      f8  raw uniform stream of the default protocol RNG
    index_counts  (T,)       i8  breakpoint values per tick
    index_values  (V,)       f8  concatenated breakpoint values
    index_degrees (B, n)     i8  per-suffix live-neighbour counts
    index_totals  (B,)       i8  per-suffix total live entries
    index_live    (B, n, n)  b1  per-suffix live matrices (DESIGN.md §11)

Lifecycle and ownership rules:

* The **arena owns the segments**: it creates and unlinks them.  Cleanup
  is crash-safe via ``weakref.finalize`` — an arena that is garbage
  collected, or a parent interpreter that exits without calling
  :meth:`SharedRuntimeArena.close`, still unlinks every segment (and the
  stdlib resource tracker backstops abnormal parent death).
* **Workers only attach**: they never unlink, and a worker dying
  mid-attach (even ``os._exit``) leaves nothing behind — the name lives
  until the owner removes it, and the mapping dies with the process.
* Attaching is memoised per ``(process, segment)`` in a bounded LRU, so
  a worker pays one ``mmap`` per scenario however many jobs it runs.

Fallback semantics: every failure mode degrades to the per-process LRU,
never to an error.  ``SharedRuntimeArena.create`` returns ``None`` when
shared memory is unavailable (no ``/dev/shm``, permissions) or when the
feature is disabled (``REPRO_SHARED_RUNTIME=0`` /
:func:`set_shared_runtimes`); :func:`attach_runtime` falls back to
:func:`~repro.manet.runtime.get_runtime` when the segment is gone or its
shape disagrees with the scenario's canonical grid.  Callers therefore
never branch — they pass whatever handle they have and always receive a
usable runtime (or ``None`` exactly when runtime memoisation itself is
off).

Usage (what the pooled evaluators and the campaign executor do)::

    from repro.manet.shared import SharedRuntimeArena, attach_runtime

    arena = SharedRuntimeArena.create(scenarios)      # parent, once
    handle = arena.handle_for(scenario)               # picklable
    # ... ship (scenario, params, handle) to a worker ...
    runtime = attach_runtime(scenario, handle)        # worker, O(mmap)
    metrics = BroadcastSimulator(scenario, params, runtime=runtime).run()
    arena.close()                                     # parent, at the end
"""

from __future__ import annotations

import secrets
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.manet.runtime import (
    ScenarioRuntime,
    get_runtime,
    peek_runtime,
    runtime_memoisation_enabled,
)
from repro.manet.scenarios import NetworkScenario
from repro.utils import flags

__all__ = [
    "SEGMENT_PREFIX",
    "SharedRuntimeHandle",
    "SharedRuntimeArena",
    "attach_runtime",
    "attached_runtime_count",
    "detach_all_runtimes",
    "shared_runtimes_enabled",
    "set_shared_runtimes",
]

#: Every segment name starts with this, so tests (and operators) can
#: audit ``/dev/shm`` for leaks attributable to this package.
SEGMENT_PREFIX = "repro-aedb-rt"

_ENABLED = flags.read_bool("REPRO_SHARED_RUNTIME")

_FLOAT = np.dtype(np.float64)
_INT = np.dtype(np.int64)
_BOOL = np.dtype(np.bool_)


def shared_runtimes_enabled() -> bool:
    """Whether arenas are created at all (``REPRO_SHARED_RUNTIME``)."""
    return _ENABLED


def set_shared_runtimes(enabled: bool) -> None:
    """Globally enable/disable shared-memory runtimes in this process.

    Disabling only affects *future* :meth:`SharedRuntimeArena.create`
    calls and attaches; existing arenas stay valid until closed.
    """
    global _ENABLED
    _ENABLED = bool(enabled)


@dataclass(frozen=True)
class SharedRuntimeHandle:
    """Picklable pointer to one scenario's shared substrate segment.

    Deliberately tiny (a name and two shape ints): job objects already
    carry the scenario, so the handle only has to say *where* the
    precomputed bytes live and how to interpret them.
    """

    #: Shared-memory segment name (``SEGMENT_PREFIX``-…).
    name: str
    #: Beacon ticks in the packed timeline.
    n_ticks: int
    #: Network size the segment was packed for.
    n_nodes: int
    #: Total interval-index breakpoint values across all ticks (the
    #: ragged dimension of the packed live index, DESIGN.md §11).
    n_index_values: int

    def segment_nbytes(self) -> int:
        """Payload size of the segment this handle points at."""
        _, total = _layout(self.n_ticks, self.n_nodes, self.n_index_values)
        return total


def _layout(
    n_ticks: int, n_nodes: int, n_index_values: int
) -> tuple[dict[str, tuple[int, tuple[int, ...], np.dtype]], int]:
    """One segment's field layout: ``({name: (offset, shape, dtype)},
    total_bytes)`` in pack order.  Shared by the packer and the
    rehydrator so the two sides can never disagree byte-for-byte."""
    t, n, v = n_ticks, n_nodes, n_index_values
    b = v + t  # one suffix block per breakpoint value + the all-expired tail
    fields: dict[str, tuple[int, tuple[int, ...], np.dtype]] = {}
    offset = 0
    for name, shape, dtype in (
        ("rx_stack", (t, n, n), _FLOAT),
        ("seen_stack", (t, n, n), _FLOAT),
        ("doubles", (2 * n,), _FLOAT),
        ("index_counts", (t,), _INT),
        ("index_values", (v,), _FLOAT),
        ("index_degrees", (b, n), _INT),
        ("index_totals", (b,), _INT),
        ("index_live", (b, n, n), _BOOL),
    ):
        fields[name] = (offset, shape, dtype)
        offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    return fields, offset


def _segment_views(
    shm: shared_memory.SharedMemory, handle_or_shape
) -> dict[str, np.ndarray]:
    """Numpy views over one segment's fields, by layout name."""
    if isinstance(handle_or_shape, SharedRuntimeHandle):
        h = handle_or_shape
        fields, _ = _layout(h.n_ticks, h.n_nodes, h.n_index_values)
    else:
        fields, _ = _layout(*handle_or_shape)
    return {
        name: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        for name, (offset, shape, dtype) in fields.items()
    }


def _unlink_segments(segments: list[shared_memory.SharedMemory]) -> None:
    """Finalizer target: release every segment the arena owns.

    Module-level (holds no arena reference) and idempotent per segment —
    a name already gone (e.g. the resource tracker beat us to it after a
    crash) is not an error.
    """
    for shm in segments:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - defensive
            pass
    segments.clear()


class SharedRuntimeArena:
    """Owner of the shared substrate segments for a set of scenarios.

    Build with :meth:`create` (which may return ``None`` — callers fall
    back to per-process runtimes), map scenarios to handles with
    :meth:`handle_for`, release with :meth:`close` (or let the finalizer
    do it).  One arena typically lives exactly as long as one process
    pool.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._handles: dict[NetworkScenario, SharedRuntimeHandle] = {}
        self._finalizer: weakref.finalize | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls, scenarios: list[NetworkScenario]
    ) -> "SharedRuntimeArena | None":
        """Precompute and pack every distinct scenario's substrate.

        Returns ``None`` when shared runtimes are disabled, the list is
        empty, or the platform cannot provide shared memory — the
        callers' cue to keep using per-process runtimes.  Partial
        failures clean up after themselves (no half-built arenas leak
        segments).
        """
        if not _ENABLED or not scenarios:
            return None
        if not runtime_memoisation_enabled():
            # REPRO_RUNTIME_MEMO=0 demands the recompute path; workers
            # would refuse to attach anyway, so don't pack at all.
            return None
        arena = cls()
        try:
            for seq, scenario in enumerate(dict.fromkeys(scenarios)):
                # Reuse the parent's memo when it already holds the
                # scenario, but never *insert*: workers fork right after
                # this, and an inherited memo entry would give each of
                # them a private copy of the very timeline being shared.
                runtime = peek_runtime(scenario) or ScenarioRuntime(scenario)
                arena._pack(scenario, runtime, seq)
        except (OSError, ValueError):
            # No /dev/shm, over quota, permissions...  Leave nothing
            # behind and let callers fall back.
            arena.close()
            return None
        arena._finalizer = weakref.finalize(
            arena, _unlink_segments, arena._segments
        )
        return arena

    def _pack(
        self, scenario: NetworkScenario, runtime: ScenarioRuntime, seq: int
    ) -> None:
        n_ticks = runtime.n_beacon_rounds
        n = scenario.n_nodes
        counts, values, live, degrees, totals = runtime.live_index_stacks()
        n_index_values = int(counts.sum())
        _, total = _layout(n_ticks, n, n_index_values)
        shm = None
        for _attempt in range(3):
            # "/" + prefix(13) + "-" + 8-hex token + "-" + hex seq stays
            # under the 31-char POSIX shm name cap (macOS SHM_NAME_MAX)
            # up to ~10^8 segments; the random token (not the pid) makes
            # the name unique, so a collision with a crashed process's
            # leftover just redraws.
            # Segment *names* need cross-process uniqueness only; they
            # never feed simulation state.
            # repro-lint: ok D103 - shm name, not simulation state
            name = f"{SEGMENT_PREFIX}-{secrets.token_hex(4)}-{seq:x}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=total
                )
                break
            except FileExistsError:
                continue
        if shm is None:  # pragma: no cover - 3 token collisions
            raise OSError(f"could not allocate a unique {SEGMENT_PREFIX} name")
        self._segments.append(shm)  # registered before writing: close()
        # cleans up even if packing below fails
        rx_stack, seen_stack = runtime.snapshot_stacks()
        views = _segment_views(shm, (n_ticks, n, n_index_values))
        views["rx_stack"][:] = rx_stack
        views["seen_stack"][:] = seen_stack
        views["doubles"][:] = runtime.protocol_doubles
        views["index_counts"][:] = counts
        views["index_values"][:] = values
        views["index_degrees"][:] = degrees
        views["index_totals"][:] = totals
        views["index_live"][:] = live
        # Drop the exported views before the segment can be closed
        # (mmap refuses to unmap while buffer exports exist).
        del views
        self._handles[scenario] = SharedRuntimeHandle(
            name=shm.name, n_ticks=n_ticks, n_nodes=n,
            n_index_values=n_index_values,
        )

    # ------------------------------------------------------------------ #
    def handle_for(
        self, scenario: NetworkScenario
    ) -> SharedRuntimeHandle | None:
        """The handle packed for ``scenario`` (None if not in the arena)."""
        return self._handles.get(scenario)

    @property
    def n_scenarios(self) -> int:
        return len(self._handles)

    def nbytes(self) -> int:
        """Total payload bytes across all segments (one copy, shared)."""
        return sum(h.segment_nbytes() for h in self._handles.values())

    def close(self) -> None:
        """Unlink every segment (idempotent; also runs via finalizer)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        else:
            _unlink_segments(self._segments)
        self._handles.clear()

    def __enter__(self) -> "SharedRuntimeArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Worker side: attach-once-per-process, bounded, always falls back.
# Values are (runtime, segment) pairs — the segment object must stay
# referenced while any simulator can still hold views into it, so both
# drop together on eviction and the pages unmap when the last consumer
# lets go.
# --------------------------------------------------------------------- #
_ATTACHED: OrderedDict[str, tuple[ScenarioRuntime, shared_memory.SharedMemory]]
_ATTACHED = OrderedDict()
_ATTACHED_MAX_ENTRIES = 32
_ATTACH_LOCK = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without ever unlinking it.

    Python 3.13+ takes ``track=False`` (attachers should not register
    with the resource tracker at all); on older interpreters the plain
    attach re-registers the same name with the fork-shared tracker,
    which is idempotent — the owner's ``unlink`` deregisters it once.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        return shared_memory.SharedMemory(name=name)


def attach_runtime(
    scenario: NetworkScenario, handle: SharedRuntimeHandle | None
) -> ScenarioRuntime | None:
    """A runtime for ``scenario``, preferring the shared segment.

    The workhorse of pool workers: maps ``handle``'s segment (memoised
    per process) and rehydrates a read-only
    :class:`~repro.manet.runtime.ScenarioRuntime` over it.  Any failure
    — no handle, feature disabled, segment unlinked, shape mismatch —
    silently degrades to :func:`~repro.manet.runtime.get_runtime`, so
    the caller's result is identical either way (bit-identity invariant,
    DESIGN.md §9).
    """
    if handle is None or not _ENABLED or not runtime_memoisation_enabled():
        # The third clause keeps REPRO_RUNTIME_MEMO=0 honest: that
        # switch promises the *recompute* path, and a precomputed shared
        # substrate would silently un-ablate it.
        return get_runtime(scenario)
    with _ATTACH_LOCK:
        entry = _ATTACHED.get(handle.name)
        if entry is not None:
            if entry[0].scenario != scenario:
                # A handle paired with the wrong scenario (caller bug):
                # degrade safely instead of handing out a foreign
                # substrate the simulator would reject anyway.
                return get_runtime(scenario)
            _ATTACHED.move_to_end(handle.name)
            return entry[0]
    try:
        shm = _attach_segment(handle.name)
    except (FileNotFoundError, OSError):
        return get_runtime(scenario)
    mismatched = False
    with _ATTACH_LOCK:
        existing = _ATTACHED.get(handle.name)
        if existing is not None:
            # Lost a concurrent attach race.  No views exist over this
            # duplicate mapping yet, so it closes cleanly right here.
            shm.close()
            if existing[0].scenario == scenario:
                return existing[0]
            mismatched = True
        else:
            try:
                runtime = _rehydrate(scenario, handle, shm)
            except ValueError:
                shm.close()
                return get_runtime(scenario)
            if len(_ATTACHED) >= _ATTACHED_MAX_ENTRIES:
                # Drop refs only; the evicted mapping lives on while any
                # in-flight simulator still views it, then unmaps with
                # GC (runtime and segment are released together).
                _ATTACHED.popitem(last=False)
            _ATTACHED[handle.name] = (runtime, shm)
    if mismatched:
        return get_runtime(scenario)
    return runtime


def _rehydrate(
    scenario: NetworkScenario,
    handle: SharedRuntimeHandle,
    shm: shared_memory.SharedMemory,
) -> ScenarioRuntime:
    if handle.n_nodes != scenario.n_nodes:
        raise ValueError(
            f"segment packed for {handle.n_nodes} nodes, "
            f"scenario has {scenario.n_nodes}"
        )
    _, total = _layout(handle.n_ticks, handle.n_nodes, handle.n_index_values)
    if shm.size < total:  # tampered / foreign segment
        raise ValueError(f"segment {handle.name} smaller than its layout")
    views = _segment_views(shm, handle)
    for view in views.values():
        view.setflags(write=False)
    return ScenarioRuntime.from_shared(
        scenario,
        views["rx_stack"],
        views["seen_stack"],
        views["doubles"],
        live_index=(
            views["index_counts"],
            views["index_values"],
            views["index_live"],
            views["index_degrees"],
            views["index_totals"],
        ),
    )


def attached_runtime_count() -> int:
    """Segments currently mapped by this process."""
    with _ATTACH_LOCK:
        return len(_ATTACHED)


def detach_all_runtimes() -> None:
    """Drop every attached runtime in this process (tests / hygiene).

    Does not unlink anything — only the owning arena may do that.
    """
    with _ATTACH_LOCK:
        _ATTACHED.clear()
