"""End-to-end broadcast simulation (the ns3 run of the paper's Sect. V).

One :class:`BroadcastSimulator` runs one AEDB configuration on one
:class:`~repro.manet.scenarios.NetworkScenario`:

1. the mobility trace evolves from t = 0;
2. HELLO beacons fire every second, warming the neighbour tables;
3. at ``warmup_s`` (30 s) the scenario's source node injects the broadcast;
4. the AEDB state machines react to deliveries through the shared medium;
5. at ``horizon_s`` (40 s) the run stops and the four metrics are read out.

Determinism: all randomness (mobility, protocol delays, MAC jitter) is
derived from the scenario seed, so ``run()`` is a pure function of
``(scenario, params)`` — the property the optimiser's fitness relies on.

Passing a :class:`~repro.manet.runtime.ScenarioRuntime` swaps the
parameter-independent substrate (beacon-table timeline, position
snapshots, path-loss model) for its precomputed form: evaluation #2..#N
of different parameters on the same network pays zero beacon cost, and
the metrics are bit-identical to the recompute path (DESIGN.md §8).
"""

from __future__ import annotations

import numpy as np

from repro.manet.aedb import AEDBParams, AEDBProtocol
from repro.manet.beacons import NeighborTables
from repro.manet.compiled import (
    compiled_core_available,
    compiled_core_reason,
    execute_compiled_run,
    precondition_blocker,
    resolve_compiled_mode,
)
from repro.manet.config import SimulationConfig
from repro.manet.events import make_event_queue
from repro.manet.medium import Frame, RadioMedium, batched_deliveries_enabled
from repro.manet.metrics import BroadcastMetrics
from repro.manet.mobility import MobilityModel
from repro.manet.runtime import (
    ScenarioRuntime,
    resolve_mobility,
    run_beacon_schedule,
)
from repro.manet.scenarios import NetworkScenario
from repro.telemetry import deep_telemetry_enabled, get_recorder

__all__ = ["BroadcastSimulator", "simulate_broadcast"]


class BroadcastSimulator:
    """Single-message AEDB dissemination experiment."""

    def __init__(
        self,
        scenario: NetworkScenario,
        params: AEDBParams,
        protocol_seed: int | None = None,
        mobility: MobilityModel | None = None,
        runtime: ScenarioRuntime | None = None,
        record_decisions: bool = False,
        batched: bool | None = None,
        live_index: bool | None = None,
        compiled: bool | str | None = None,
    ):
        """``record_decisions`` opts into the protocol's per-event decision
        log (off by default: evaluation loops never read it and the
        per-event formatting is measurable).  ``batched`` /
        ``live_index`` override the vectorised warm path's env defaults
        (``REPRO_BATCH_DELIVERIES`` / ``REPRO_LIVE_INDEX``, both on):
        batched wires frame resolution to
        :meth:`~repro.manet.aedb.AEDBProtocol.on_receive_batch`,
        live_index serves neighbour queries from the runtime's interval
        index — either way the metrics are bit-identical (DESIGN.md §11).
        ``compiled`` overrides ``REPRO_COMPILED`` (``auto``/``on``/``off``
        or a bool) for the compiled event core of DESIGN.md §14; the
        decision is captured here, so toggling the env var between
        construction and :meth:`run` has no effect."""
        self.scenario = scenario
        self.params = params
        self._sim: SimulationConfig = scenario.sim
        self.runtime = runtime
        self._mobility = resolve_mobility(scenario, mobility, runtime)
        # Protocol randomness is keyed off the scenario so evaluation is a
        # pure function of (scenario, params).  For the default seed the
        # runtime replays the precomputed raw uniform stream (bit-identical
        # draws, no per-run generator construction).
        if runtime is not None and protocol_seed is None:
            self._protocol_rng = runtime.protocol_uniform_stream()
        else:
            seed = (
                protocol_seed
                if protocol_seed is not None
                else (scenario.mobility_seed ^ 0x5EDB) & 0xFFFFFFFF
            )
            self._protocol_rng = np.random.default_rng(seed)

        batched = batched_deliveries_enabled() if batched is None else bool(batched)
        self._compiled_mode = resolve_compiled_mode(compiled)
        if self._compiled_mode == "on" and not compiled_core_available():
            raise RuntimeError(
                "compiled=on but the compiled event core is unavailable: "
                f"{compiled_core_reason()}"
            )
        self.queue = make_event_queue(self._compiled_mode)
        self.tables = NeighborTables(
            scenario.n_nodes, self._sim, self._mobility, runtime=runtime,
            use_live_index=live_index,
        )
        self.medium = RadioMedium(
            self.queue, self._mobility, self._sim.radio, self._deliver,
            runtime=runtime,
            on_delivery_batch=self._deliver_batch if batched else None,
        )
        self.protocol = AEDBProtocol(
            params=params,
            n_nodes=scenario.n_nodes,
            queue=self.queue,
            tables=self.tables,
            radio=self._sim.radio,
            transmit=self._transmit,
            rng=self._protocol_rng,
            mac_jitter_s=self._sim.mac_jitter_s,
            record_decisions=record_decisions,
        )
        self._ran = False
        # Captured once: the off path pays one boolean test per run,
        # never a per-event recorder call (DESIGN.md §12).
        self._deep = deep_telemetry_enabled()
        # Compiled-core dispatch (DESIGN.md §14), decided once per
        # simulator: the fallback ladder is extension availability →
        # arithmetic self-check → run-shape preconditions.  ``on`` only
        # asserts the toolchain (checked above); unsupported shapes fall
        # back silently with the reason recorded.
        #: True when :meth:`run` will execute through the compiled kernel.
        self.compiled_active = False
        #: Why the compiled core is not in use (None when it is).
        self.compiled_reason: str | None = None
        if self._compiled_mode == "off":
            self.compiled_reason = "disabled (REPRO_COMPILED=off)"
        elif not compiled_core_available():
            self.compiled_reason = compiled_core_reason()
        else:
            self.compiled_reason = precondition_blocker(self)
            self.compiled_active = self.compiled_reason is None

    # -- wiring ---------------------------------------------------------- #
    def _deliver(self, receiver: int, frame: Frame, rx_dbm: float, t: float) -> None:
        self.protocol.on_receive(receiver, frame.sender, rx_dbm, t)

    def _deliver_batch(
        self, receivers: np.ndarray, frame: Frame, rx_dbm: np.ndarray, t: float
    ) -> None:
        self.protocol.on_receive_batch(receivers, frame.sender, rx_dbm, t)

    def _transmit(self, sender: int, power_dbm: float, t: float) -> None:
        # Protocol asks for a transmission "now" (or now + jitter); the
        # medium schedules the frame-end resolution on the queue.
        now = self.queue.now
        if t <= now:
            self.medium.transmit(sender, power_dbm, now)
        else:
            self.queue.post(
                t, lambda fire_t, s=sender, p=power_dbm: self.medium.transmit(s, p, fire_t)
            )

    # -- execution ------------------------------------------------------- #
    def run(self) -> BroadcastMetrics:
        """Execute the experiment once and return its metrics."""
        if self._ran:
            raise RuntimeError("BroadcastSimulator instances are single-use")
        self._ran = True
        sim = self._sim
        rec = get_recorder()

        with rec.span("sim.run", n_nodes=self.scenario.n_nodes):
            # Warm-up and in-window beacons on the canonical integer-indexed
            # grid (shared with ScenarioRuntime, so precomputed snapshots and
            # the live schedule agree exactly).  The grid starts just early
            # enough to fully warm the tables: entries older than
            # ``neighbor_expiry_s`` at broadcast time can never influence a
            # query (identical semantics, ~3x fewer pairwise-loss matrices).
            if self.compiled_active:
                # Compiled core (DESIGN.md §14): warm rounds stay in
                # Python (O(1) snapshot swaps), then the whole broadcast
                # window — window beacons, frames, timers, deliveries —
                # runs as one kernel call whose writeback restores the
                # exact pure-path end state.
                with rec.span("sim.beacon_schedule"):
                    for t in self.runtime.warm_times:
                        self.tables.beacon_round(t)
                with rec.span("sim.broadcast_window"):
                    execute_compiled_run(self)
            else:
                with rec.span("sim.beacon_schedule"):
                    run_beacon_schedule(sim, self.runtime, self.tables, self.queue)

                self.protocol.start_broadcast(self.scenario.source, sim.warmup_s)
                with rec.span("sim.broadcast_window"):
                    self.queue.run_until(sim.horizon_s)
            metrics = self._collect_metrics()
        if self._deep:
            # Fine-grained readout (REPRO_TELEMETRY=deep): totals kept as
            # plain ints on the warm path, shipped as counters once per
            # run — zero recorder traffic inside the event loop.
            rec.count("sim.events_fired", self.queue.fired)
            rec.count("sim.frames_transmitted",
                      self.medium.transmission_count)
            rec.count("sim.frames_resolved", self.medium.resolved_count)
            rec.count("sim.batch_frames_vector",
                      self.protocol.batch_frames_vector)
            rec.count("sim.batch_frames_scalar",
                      self.protocol.batch_frames_scalar)
            rec.count("sim.runs")
        return metrics

    def _collect_metrics(self) -> BroadcastMetrics:
        sim = self._sim
        src = self.scenario.source
        first_rx = self.protocol.first_rx_time
        received = ~np.isnan(first_rx)
        received_non_source = received.copy()
        received_non_source[src] = False
        coverage = int(np.count_nonzero(received_non_source))

        forwardings = max(self.medium.transmission_count - 1, 0)
        energy = self.medium.energy_dbm_total()

        if coverage > 0:
            # Last first-reception among receivers: the mask selects
            # exactly the non-NaN entries (excluding the source), so a
            # plain max equals the nanmax over the masked array.
            bt = float(np.max(first_rx[received_non_source]))
            broadcast_time = bt - sim.warmup_s
        else:
            broadcast_time = 0.0

        return BroadcastMetrics(
            coverage=float(coverage),
            energy_dbm=float(energy),
            forwardings=float(forwardings),
            broadcast_time_s=float(broadcast_time),
            n_nodes=self.scenario.n_nodes,
        )


def simulate_broadcast(
    scenario: NetworkScenario,
    params: AEDBParams,
    protocol_seed: int | None = None,
    runtime: ScenarioRuntime | None = None,
) -> BroadcastMetrics:
    """Convenience wrapper: build, run, and return the metrics."""
    return BroadcastSimulator(
        scenario, params, protocol_seed=protocol_seed, runtime=runtime
    ).run()
