"""Connectivity diagnostics of a network snapshot (networkx-backed).

Not part of the paper's pipeline, but indispensable when judging its
results: a broadcast can only ever cover the source's connected
component, so coverage ceilings, the two-cluster front structure, and
the density-dependent behaviour of AEDB all trace back to these graph
properties.  Used by the scenario tests and the extended examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.manet.config import RadioConfig
from repro.manet.geometry import pairwise_distances
from repro.manet.mobility import MobilityModel
from repro.manet.propagation import LogDistancePathLoss
from repro.manet.scenarios import NetworkScenario

__all__ = ["TopologySnapshot", "snapshot", "scenario_snapshot"]


@dataclass(frozen=True)
class TopologySnapshot:
    """Connectivity facts about one instant of one network."""

    time_s: float
    n_nodes: int
    #: Number of undirected radio links at default power.
    n_links: int
    mean_degree: float
    #: Sizes of connected components, descending.
    component_sizes: tuple[int, ...]
    #: Size of the component containing the broadcast source (0-size if
    #: no source was given).
    source_component: int
    #: The graph itself, for custom analyses.
    graph: nx.Graph

    @property
    def is_connected(self) -> bool:
        """True when a broadcast could reach every node."""
        return len(self.component_sizes) == 1

    @property
    def coverage_ceiling(self) -> int:
        """Max devices (excl. source) any broadcast from the source can
        reach at this instant."""
        return max(self.source_component - 1, 0)


def snapshot(
    positions: np.ndarray,
    radio: RadioConfig | None = None,
    time_s: float = 0.0,
    source: int | None = None,
) -> TopologySnapshot:
    """Build the default-power connectivity graph of a position set."""
    radio = radio or RadioConfig()
    pos = np.asarray(positions, dtype=float)
    n = pos.shape[0]
    loss = LogDistancePathLoss.from_config(radio)
    rx = loss.rx_power_dbm(radio.default_tx_power_dbm, pairwise_distances(pos))
    adjacency = rx >= radio.detection_threshold_dbm
    np.fill_diagonal(adjacency, False)

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(np.triu(adjacency, k=1))
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))

    components = sorted(
        (len(c) for c in nx.connected_components(graph)), reverse=True
    )
    if source is not None:
        source_component = len(nx.node_connected_component(graph, source))
    else:
        source_component = 0
    return TopologySnapshot(
        time_s=float(time_s),
        n_nodes=n,
        n_links=graph.number_of_edges(),
        mean_degree=2.0 * graph.number_of_edges() / max(n, 1),
        component_sizes=tuple(components),
        source_component=source_component,
        graph=graph,
    )


def scenario_snapshot(
    scenario: NetworkScenario,
    time_s: float | None = None,
    mobility: MobilityModel | None = None,
) -> TopologySnapshot:
    """Snapshot one evaluation network (at broadcast time by default)."""
    mob = mobility or scenario.build_mobility()
    t = scenario.sim.warmup_s if time_s is None else float(time_s)
    return snapshot(
        mob.positions_at(t),
        radio=scenario.sim.radio,
        time_s=t,
        source=scenario.source,
    )
