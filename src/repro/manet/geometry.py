"""Planar geometry helpers for the square simulation arena.

The arena is the axis-aligned square ``[0, side] x [0, side]``.  Mobility
uses *reflective* boundaries: a node hitting a wall bounces back, which is
the behaviour of ns3's ``RandomWalk2dMobilityModel`` in "mode time" with
rebound.  Reflection of uniform linear motion is computed analytically with
a triangle-wave fold, so positions at an arbitrary time cost O(1) — no
sub-stepping.
"""

from __future__ import annotations

import numpy as np

__all__ = ["reflect_fold", "pairwise_distances", "distances_from_point"]


def reflect_fold(coords: np.ndarray, side: float) -> np.ndarray:
    """Fold unbounded coordinates into ``[0, side]`` by mirror reflection.

    A particle moving ballistically from ``x0`` with velocity ``v`` inside
    reflecting walls at 0 and ``side`` is, after time ``t``, at
    ``reflect_fold(x0 + v t, side)``: the trajectory unrolled on the real
    line, folded back by the triangle wave of period ``2 * side``.

    Works element-wise on arrays of any shape; always returns values in
    ``[0, side]`` (closed at both ends).
    """
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    period = 2.0 * side
    y = np.mod(np.asarray(coords, dtype=float), period)
    return side - np.abs(y - side)


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` Euclidean distance matrix for ``(n, 2)`` positions.

    The diagonal is zero.  Vectorised (broadcasted differences) per the
    HPC guide — this is the hot operation of every beacon round.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {pos.shape}")
    diff = pos[:, None, :] - pos[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distances_from_point(positions: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Euclidean distances from each of ``(n, 2)`` positions to ``point``."""
    pos = np.asarray(positions, dtype=float)
    pt = np.asarray(point, dtype=float)
    if pt.shape != (2,):
        raise ValueError(f"point must have shape (2,), got {pt.shape}")
    diff = pos - pt[None, :]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))
