"""Per-scenario runtime cache: the parameter-independent simulation substrate.

Every :class:`~repro.manet.simulator.BroadcastSimulator` run replays the
same scenario material before the protocol under test does anything
distinctive: ~40 beacon rounds of O(n²) pairwise distances and ``log10``
path loss, mobility snapshots, and the propagation model.  None of that
depends on :class:`~repro.manet.aedb.AEDBParams` — beacons are always
sent at the default power on the fixed 1 Hz grid, and the mobility trace
is frozen by the scenario seed — so across the thousands of evaluations
of a local search or campaign sweep the identical matrices are recomputed
thousands of times.

:class:`ScenarioRuntime` precomputes that substrate once per
``(scenario, mobility)`` pair:

* the full :class:`~repro.manet.beacons.NeighborTables` state
  (``rx_power`` / ``last_seen``) *after every beacon tick* of the
  canonical schedule, warm-up included — a table-backed simulator
  restores snapshots in O(1) instead of recomputing the round;
* position snapshots memoised on the exact query-time grid (beacon ticks
  always hit; the deterministic early frame midpoints hit across
  evaluations);
* the scenario's path-loss model, shared by beacons and medium;
* the raw uniform stream of the default protocol RNG, replayed
  bit-identically by :class:`UniformStream` (one double per
  ``uniform`` call, whatever the bounds — so the stream itself is
  parameter-independent).

Snapshot arrays are handed out **read-only** so one runtime can be shared
by any number of simulators (and threads) without cross-evaluation
contamination; an accidental write raises instead of corrupting a
neighbouring run.

The cache invariant (DESIGN.md §8): consuming a runtime must leave every
``BroadcastMetrics`` bit-identical to the recompute path, because the
snapshots are produced by literally the same update sequence
:meth:`NeighborTables.beacon_round` would execute.

:func:`get_runtime` is the per-process bounded-LRU entry point (the same
discipline as the mobility memo in :mod:`repro.manet.scenarios`):
evaluators and campaign workers ask for a scenario's runtime and hit the
cache for every evaluation after the first.  Opt out with
:func:`set_runtime_memoisation` or ``REPRO_RUNTIME_MEMO=0``, which makes
:func:`get_runtime` return ``None`` and callers fall back to the
recompute path.

Usage — the two public entry points:

* **Per-process memo** (the default everywhere): ask for the shared
  runtime and hand it to a simulator::

      from repro.manet import get_runtime, make_scenarios
      from repro.manet.simulator import BroadcastSimulator

      scenario = make_scenarios(300, n_networks=1)[0]
      sim = BroadcastSimulator(scenario, params,
                               runtime=get_runtime(scenario))

* **Cross-process sharing** (:mod:`repro.manet.shared`, DESIGN.md §9):
  the parent precomputes once, pool workers map the same bytes
  read-only via :func:`~repro.manet.shared.attach_runtime` —
  :class:`ScenarioRuntime.from_shared` is the rehydration hook it uses.

Both paths are bound by the same invariant: metrics from a
runtime-backed run are bit-identical to the recompute path
(``runtime=None``) for every ``(scenario, params, seed)``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.manet.beacons import NeighborTables, freshness_mask
from repro.manet.config import SimulationConfig
from repro.manet.mobility import MobilityModel
from repro.manet.propagation import build_path_loss
from repro.manet.scenarios import NetworkScenario
from repro.telemetry import get_recorder
from repro.utils import flags
from repro.utils.units import DBM_MINUS_INF

__all__ = [
    "ScenarioRuntime",
    "TickLiveIndex",
    "UniformStream",
    "beacon_grid",
    "resolve_mobility",
    "run_beacon_schedule",
    "get_runtime",
    "peek_runtime",
    "runtime_memoisation_enabled",
    "set_runtime_memoisation",
    "clear_runtime_cache",
    "runtime_cache_size",
    "runtime_cache_nbytes",
]


def resolve_mobility(scenario, mobility, runtime):
    """Validate a simulator's ``(scenario, mobility, runtime)`` triple.

    Returns the mobility trace to use: the runtime's when one is given
    (after checking it was precomputed for this scenario and does not
    conflict with an explicitly passed trace), else the explicit trace
    or the scenario's own.  Shared by both simulator front-ends so their
    validation can never drift apart.
    """
    if runtime is not None:
        if runtime.scenario != scenario:
            raise ValueError(
                "runtime was precomputed for a different scenario"
            )
        if mobility is not None and mobility is not runtime.mobility:
            raise ValueError(
                "explicit mobility conflicts with the runtime's trace"
            )
        mobility = runtime.mobility
    else:
        mobility = mobility or scenario.build_mobility()
    if mobility.n_nodes != scenario.n_nodes:
        raise ValueError(
            "mobility model size does not match scenario "
            f"({mobility.n_nodes} != {scenario.n_nodes})"
        )
    return mobility


def run_beacon_schedule(sim, runtime, tables, queue) -> None:
    """Execute the canonical beacon schedule of one run.

    Warm-up rounds run directly (beacons never contend with data frames,
    DESIGN.md §7); broadcast-window rounds are scheduled on the event
    queue *before* any protocol event so stable tie-breaking fires them
    first at equal timestamps.  Shared by both simulator front-ends —
    the grid this executes is exactly the one a runtime precomputed.
    """
    if runtime is not None:
        warm, window = runtime.warm_times, runtime.window_times
    else:
        warm, window = beacon_grid(sim)
    for t in warm:
        tables.beacon_round(t)
    for t in window:
        queue.post(t, tables.beacon_round)


class UniformStream:
    """Replay of a Generator's uniform stream from precomputed doubles.

    ``np.random.Generator.uniform(low, high)`` consumes exactly one raw
    standard double ``u`` per call and returns ``low + (high - low) * u``
    (numpy's ``random_uniform``), *whatever* the bounds are — so the raw
    stream underneath a protocol RNG is parameter-independent and can be
    precomputed once per scenario.  This class replays it with the exact
    same arithmetic, making every draw bit-identical to the live
    generator's while skipping both the per-run ``default_rng``
    construction and the per-draw Generator overhead.

    Each simulator gets its own stream object (own cursor) over the
    shared read-only doubles, so concurrent evaluations cannot disturb
    each other.  Exhausting the stream raises ``IndexError`` — callers
    size it to a proven upper bound on draws.
    """

    __slots__ = ("_doubles", "_i")

    def __init__(self, doubles: list[float]):
        self._doubles = doubles
        self._i = 0

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Next draw, identical to ``Generator.uniform(low, high)``."""
        i = self._i
        self._i = i + 1
        return low + (high - low) * self._doubles[i]


class TickLiveIndex:
    """O(1) live-neighbour lookups for one canonical beacon tick.

    Freshness flips only at ``last_seen + expiry`` breakpoints
    (DESIGN.md §11), and within one tick's snapshot the distinct
    ``last_seen`` values still live at the tick number at most
    ``ceil(expiry / interval) + 1`` — a handful.  The index stores those
    values sorted ascending plus, for each *suffix* of them, the full
    live matrix, per-node degrees, and the total live count; suffix
    ``j`` is exactly the set of entries that are fresh while the query
    time sits between two breakpoints.  Because freshness is monotone
    in ``last_seen``, locating the suffix means evaluating the shared
    :func:`~repro.manet.beacons.freshness_mask` predicate on the value
    vector only (O(m), m ~ 3) — the *same* float expression the scan
    path applies entrywise, which is what makes indexed and scanned
    answers bit-identical rather than merely close.

    Valid only for query times at or after ``tick_time``: the index
    prunes values already expired at the tick (they can never revive
    later), so earlier queries must use the scan.  All arrays are
    read-only and may be views into a shared-memory segment.
    """

    __slots__ = (
        "tick_time",
        "expiry_s",
        "values",
        "_values_list",
        "live",
        "degrees",
        "totals",
    )

    def __init__(
        self,
        tick_time: float,
        expiry_s: float,
        values: np.ndarray,
        live: np.ndarray,
        degrees: np.ndarray,
        totals: np.ndarray,
    ):
        if live.shape[0] != values.size + 1:
            raise ValueError(
                f"live stack holds {live.shape[0]} suffix masks for "
                f"{values.size} breakpoint values (need one extra for the "
                "all-expired interval)"
            )
        self.tick_time = float(tick_time)
        self.expiry_s = float(expiry_s)
        #: Distinct ``last_seen`` values still live at the tick, ascending.
        self.values = values
        # Plain floats for locate(): the value vector is tiny (~3), where
        # a scalar loop beats numpy's fixed dispatch overhead; tolist()
        # round-trips float64 exactly, so the predicate sees the same
        # IEEE doubles either way.
        self._values_list = values.tolist()
        #: ``live[j]`` — (n, n) live matrix while values[j:] are the fresh
        #: ones; ``live[m]`` is the all-expired matrix.
        self.live = live
        #: ``degrees[j, i]`` — live-neighbour count of node ``i`` there.
        self.degrees = degrees
        #: ``totals[j]`` — total live entries (the mean-degree numerator).
        self.totals = totals

    def locate(self, time_s: float) -> int:
        """Suffix start: index of the oldest value still fresh at ``time_s``.

        Fresh values form a suffix of the ascending ``values`` vector
        (freshness is monotone in ``last_seen``), so the first value the
        shared predicate accepts starts the suffix; ``m`` means
        everything has expired.
        """
        expiry = self.expiry_s
        for j, value in enumerate(self._values_list):
            if freshness_mask(value, time_s, expiry):
                return j
        return len(self._values_list)

    def live_row(self, i: int, time_s: float) -> np.ndarray:
        """Read-only live mask of node ``i`` (diagonal already cleared)."""
        return self.live[self.locate(time_s), i]

    def degree(self, i: int, time_s: float) -> int:
        """Live-neighbour count of node ``i``."""
        return int(self.degrees[self.locate(time_s), i])

    def live_total(self, time_s: float) -> int:
        """Total live entries across the whole table (diagonal excluded)."""
        return int(self.totals[self.locate(time_s)])

    def nbytes(self) -> int:
        return (
            self.values.nbytes
            + self.live.nbytes
            + self.degrees.nbytes
            + self.totals.nbytes
        )


def beacon_grid(sim: SimulationConfig) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """The canonical beacon schedule of one run: ``(warm, window)`` times.

    Warm-up rounds sit on the absolute ``k * interval`` grid, starting at
    the first tick that can still influence a neighbour query at
    broadcast time (entries older than ``neighbor_expiry_s`` are dead)
    and ending strictly before ``warmup_s``; in-window rounds continue at
    ``warmup_s + j * interval`` up to the horizon.  Every time is indexed
    from integers — never accumulated with ``t += interval`` — so long
    horizons and non-representable intervals cannot drift off the grid,
    and a precomputed runtime grid and the live schedule agree exactly.
    """
    interval = sim.beacon_interval_s
    first_relevant = max(
        0.0, sim.warmup_s - sim.neighbor_expiry_s - interval
    )
    first_tick = int(np.ceil(first_relevant / interval))
    warm_end = sim.warmup_s - 1e-9
    warm: list[float] = []
    k = first_tick
    while True:
        t = k * interval
        if t > warm_end + 1e-12:
            break
        warm.append(t)
        k += 1
    window: list[float] = []
    j = 0
    while True:
        t = sim.warmup_s + j * interval
        if t > sim.horizon_s:
            break
        window.append(t)
        j += 1
    return tuple(warm), tuple(window)


class ScenarioRuntime:
    """Precomputed parameter-independent substrate of one scenario.

    Built once per ``(scenario, mobility)`` pair; consumed by any number
    of :class:`~repro.manet.simulator.BroadcastSimulator` /
    :class:`~repro.manet.protocols.runner.ProtocolSimulator` runs with
    different protocol parameters.  All exposed arrays are read-only.
    """

    def __init__(
        self,
        scenario: NetworkScenario,
        mobility: MobilityModel | None = None,
        position_memo_entries: int = 256,
    ):
        self._init_base(scenario, mobility, position_memo_entries)
        # Substrate-build span (DESIGN.md §12) — only the full precompute
        # path; from_shared maps existing arrays and pays nothing worth
        # timing.
        with get_recorder().span(
            "runtime.build", n_nodes=scenario.n_nodes
        ):
            self._precompute_tables()
            self._build_live_index()
        # Raw uniform stream of the scenario's default protocol RNG.
        # The AEDB state machine draws at most 2 doubles per node (one
        # forwarding delay, one MAC jitter, each at most once — a node
        # leaves IDLE on its first copy and forwards at most once).
        default_seed = (scenario.mobility_seed ^ 0x5EDB) & 0xFFFFFFFF
        self._protocol_doubles: list[float] = np.random.default_rng(
            default_seed
        ).random(2 * scenario.n_nodes).tolist()

    def _init_base(
        self,
        scenario: NetworkScenario,
        mobility: MobilityModel | None,
        position_memo_entries: int,
    ) -> None:
        """Everything cheap and per-process: configs, grid, empty memos.

        Shared by :meth:`__init__` (which then pays the precompute) and
        :meth:`from_shared` (which maps the precomputed arrays instead).
        """
        if position_memo_entries <= 0:
            raise ValueError(
                f"position_memo_entries must be positive, got {position_memo_entries}"
            )
        self.scenario = scenario
        self.sim: SimulationConfig = scenario.sim
        self.mobility = mobility or scenario.build_mobility()
        if self.mobility.n_nodes != scenario.n_nodes:
            raise ValueError(
                "mobility model size does not match scenario "
                f"({self.mobility.n_nodes} != {scenario.n_nodes})"
            )
        #: Propagation model shared by beacon precompute, tables and medium.
        self.path_loss = build_path_loss(self.sim.radio)
        self._position_memo: OrderedDict[float, np.ndarray] = OrderedDict()
        self._position_memo_entries = int(position_memo_entries)
        self._position_lock = threading.Lock()
        #: Canonical beacon schedule (warm-up / broadcast-window times).
        self.warm_times, self.window_times = beacon_grid(self.sim)
        self.beacon_times = self.warm_times + self.window_times
        self._snapshots: dict[float, tuple[np.ndarray, np.ndarray]] = {}
        #: Pristine pre-beacon table state, shared read-only by every
        #: consumer (tables copy-on-write before any incremental update).
        n = scenario.n_nodes
        rx0 = np.full((n, n), DBM_MINUS_INF)
        seen0 = np.full((n, n), -np.inf)
        rx0.setflags(write=False)
        seen0.setflags(write=False)
        self.initial_tables = (rx0, seen0)
        #: Per-tick interval live index, canonical order (DESIGN.md §11).
        self._live_index: list[TickLiveIndex] = []
        #: True when the snapshot arrays live in a shared-memory segment
        #: owned by another process (:meth:`from_shared`); the private
        #: memory attributable to this runtime is then ~0.
        self.shared = False

    @classmethod
    def from_shared(
        cls,
        scenario: NetworkScenario,
        rx_stack: np.ndarray,
        seen_stack: np.ndarray,
        protocol_doubles: np.ndarray,
        mobility: MobilityModel | None = None,
        live_index: tuple[np.ndarray, ...] | None = None,
    ) -> "ScenarioRuntime":
        """Rehydrate a runtime from precomputed snapshot arrays.

        ``rx_stack`` / ``seen_stack`` are ``(T, n, n)`` read-only views
        (typically into a :mod:`multiprocessing.shared_memory` segment
        packed by :class:`~repro.manet.shared.SharedRuntimeArena`)
        holding exactly the per-tick state :meth:`_precompute_tables`
        would produce, in canonical beacon order; ``protocol_doubles``
        is the scenario's raw uniform stream; ``live_index`` is the
        flattened interval index in :meth:`live_index_stacks` layout
        (``None`` rebuilds it from the snapshots — cheap, but private to
        this process).  No substrate is recomputed — the per-process
        cost is the cheap ``_init_base`` setup plus one dict over the
        existing views, which is what lets every pool worker map one
        precompute instead of owning a copy.
        """
        self = cls.__new__(cls)
        self._init_base(scenario, mobility, 256)
        n_ticks = len(self.beacon_times)
        if len(rx_stack) != n_ticks or len(seen_stack) != n_ticks:
            raise ValueError(
                f"snapshot stack holds {len(rx_stack)} ticks, scenario's "
                f"canonical grid has {n_ticks}"
            )
        expected = 2 * scenario.n_nodes
        if len(protocol_doubles) != expected:
            raise ValueError(
                f"protocol stream holds {len(protocol_doubles)} doubles, "
                f"expected {expected}"
            )
        for i, t in enumerate(self.beacon_times):
            self._snapshots[t] = (rx_stack[i], seen_stack[i])
        # Plain floats: UniformStream replays list items with the exact
        # Generator arithmetic; tolist() round-trips float64 exactly.
        self._protocol_doubles = protocol_doubles.tolist()
        if live_index is not None:
            self._rehydrate_live_index(*live_index)
        else:
            self._build_live_index()
        self.shared = True
        return self

    # ------------------------------------------------------------------ #
    # beacon-table timeline                                              #
    # ------------------------------------------------------------------ #
    def _precompute_tables(self) -> None:
        """Replay the canonical schedule once; store the cumulative state.

        The rounds are driven through a real
        :class:`~repro.manet.beacons.NeighborTables` (no snapshots exist
        yet, so every round takes its incremental path), which makes the
        bit-identity invariant true by construction: whatever
        ``beacon_round`` computes is exactly what the snapshots hold.
        """
        n = self.scenario.n_nodes
        tables = NeighborTables(n, self.sim, self.mobility, runtime=self)
        for t in self.beacon_times:
            tables.beacon_round(t)
            rx_snap = tables.rx_power.copy()
            seen_snap = tables.last_seen.copy()
            rx_snap.setflags(write=False)
            seen_snap.setflags(write=False)
            self._snapshots[t] = (rx_snap, seen_snap)

    def _build_live_index(self) -> None:
        """Precompute the interval live index over the snapshot timeline.

        For each canonical tick: the distinct ``last_seen`` values still
        fresh at the tick (under the shared predicate — older values can
        never be fresh at any later query time) and one cumulative live
        matrix / degree vector / total per value suffix, plus the
        all-expired tail.  O(m · n²) per tick with m ~ 3, small next to
        the O(n²·log10) beacon rounds the snapshots already paid for.
        """
        expiry = self.sim.neighbor_expiry_s
        n = self.scenario.n_nodes
        entries: list[TickLiveIndex] = []
        for t in self.beacon_times:
            seen = self._snapshots[t][1]
            finite = seen[np.isfinite(seen)]
            distinct = np.unique(finite)
            values = distinct[freshness_mask(distinct, t, expiry)]
            m = values.size
            live = np.zeros((m + 1, n, n), dtype=bool)
            degrees = np.zeros((m + 1, n), dtype=np.int64)
            for j in range(m):
                mask = seen >= values[j]
                np.fill_diagonal(mask, False)
                live[j] = mask
                degrees[j] = mask.sum(axis=1)
            totals = degrees.sum(axis=1)
            for arr in (values, live, degrees, totals):
                arr.setflags(write=False)
            entries.append(TickLiveIndex(t, expiry, values, live, degrees, totals))
        self._live_index = entries

    def live_index_at(self, tick: int) -> TickLiveIndex | None:
        """The interval live index of canonical tick ``tick`` (or None)."""
        if 0 <= tick < len(self._live_index):
            return self._live_index[tick]
        return None

    def live_index_stacks(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The whole index flattened: ``(counts, values, live, degrees,
        totals)`` in canonical tick order — tick ``k`` owns ``counts[k]``
        values and ``counts[k] + 1`` suffix blocks.  The layout
        :class:`~repro.manet.shared.SharedRuntimeArena` packs and
        :meth:`from_shared` consumes.
        """
        idx = self._live_index  # never empty: the canonical grid always
        # holds at least the warmup tick (SimulationConfig validates
        # warmup_s <= horizon_s)
        counts = np.array([e.values.size for e in idx], dtype=np.int64)
        values = np.concatenate([e.values for e in idx])
        live = np.concatenate([e.live for e in idx], axis=0)
        degrees = np.concatenate([e.degrees for e in idx], axis=0)
        totals = np.concatenate([e.totals for e in idx])
        return counts, values, live, degrees, totals

    def _rehydrate_live_index(
        self,
        counts: np.ndarray,
        values: np.ndarray,
        live: np.ndarray,
        degrees: np.ndarray,
        totals: np.ndarray,
    ) -> None:
        """Rebuild per-tick index entries over flattened (shared) arrays."""
        if len(counts) != len(self.beacon_times):
            raise ValueError(
                f"live index covers {len(counts)} ticks, scenario's "
                f"canonical grid has {len(self.beacon_times)}"
            )
        n_blocks = int(counts.sum()) + len(counts)
        for name, arr in (("live", live), ("degrees", degrees), ("totals", totals)):
            if len(arr) != n_blocks:
                raise ValueError(
                    f"live-index {name} stack holds {len(arr)} blocks, "
                    f"layout requires {n_blocks}"
                )
        if len(values) != int(counts.sum()):
            raise ValueError(
                f"live-index values hold {len(values)} entries, "
                f"counts sum to {int(counts.sum())}"
            )
        expiry = self.sim.neighbor_expiry_s
        entries: list[TickLiveIndex] = []
        voff = boff = 0
        for k, t in enumerate(self.beacon_times):
            m = int(counts[k])
            entries.append(
                TickLiveIndex(
                    t,
                    expiry,
                    values[voff:voff + m],
                    live[boff:boff + m + 1],
                    degrees[boff:boff + m + 1],
                    totals[boff:boff + m + 1],
                )
            )
            voff += m
            boff += m + 1
        self._live_index = entries

    def table_snapshot(
        self, time_s: float
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Neighbour-table state *after* the beacon round at ``time_s``.

        Returns read-only ``(rx_power, last_seen)`` matrices, or ``None``
        when ``time_s`` is not a tick of the canonical grid (callers then
        recompute incrementally).
        """
        return self._snapshots.get(time_s)

    @property
    def n_beacon_rounds(self) -> int:
        """Number of precomputed beacon rounds."""
        return len(self.beacon_times)

    def protocol_uniform_stream(self) -> UniformStream:
        """A fresh replay of the default protocol RNG's uniform stream.

        Valid only for the scenario's *default* protocol seed; callers
        supplying an explicit ``protocol_seed`` must build a real
        generator instead.
        """
        return UniformStream(self._protocol_doubles)

    @property
    def protocol_doubles(self) -> list[float]:
        """The raw precomputed uniform stream (read it, don't mutate it).

        Exposed so :class:`~repro.manet.shared.SharedRuntimeArena` can
        pack the stream next to the snapshot timeline.
        """
        return self._protocol_doubles

    def snapshot_stacks(self) -> tuple[np.ndarray, np.ndarray]:
        """The full timeline as two ``(T, n, n)`` stacks, canonical order.

        Copies the per-tick snapshots into contiguous arrays — the
        shape :meth:`from_shared` consumes and the layout
        :class:`~repro.manet.shared.SharedRuntimeArena` writes into a
        shared-memory segment.
        """
        rx = np.stack([self._snapshots[t][0] for t in self.beacon_times])
        seen = np.stack([self._snapshots[t][1] for t in self.beacon_times])
        return rx, seen

    # ------------------------------------------------------------------ #
    # position snapshots                                                 #
    # ------------------------------------------------------------------ #
    def positions_at(self, time_s: float) -> np.ndarray:
        """Read-only ``(n, 2)`` positions at ``time_s``, memoised.

        Keyed on the *exact* float, so the memo can never change a value
        — it only skips recomputing the trace for query times that recur
        (every beacon tick during precompute; the deterministic early
        frame midpoints across same-scenario evaluations).  Bounded LRU.
        """
        with self._position_lock:
            cached = self._position_memo.get(time_s)
            if cached is not None:
                self._position_memo.move_to_end(time_s)
                return cached
        positions = np.array(self.mobility.positions_at(time_s), dtype=float)
        positions.setflags(write=False)
        with self._position_lock:
            existing = self._position_memo.get(time_s)
            if existing is not None:
                return existing
            if len(self._position_memo) >= self._position_memo_entries:
                self._position_memo.popitem(last=False)
            self._position_memo[time_s] = positions
        return positions

    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        """Approximate memory addressed by the precomputed snapshots.

        For a :meth:`from_shared` runtime these bytes live in the shared
        segment (one physical copy however many processes map it); use
        :attr:`shared` to tell the cases apart, and
        :meth:`private_nbytes` for the per-process cost.
        """
        total = sum(
            rx.nbytes + seen.nbytes for rx, seen in self._snapshots.values()
        )
        total += sum(entry.nbytes() for entry in self._live_index)
        with self._position_lock:
            total += sum(p.nbytes for p in self._position_memo.values())
        return total

    def private_nbytes(self) -> int:
        """Substrate bytes privately owned by this process.

        A shared runtime's snapshot timeline is someone else's pages;
        only the position memo (filled lazily per process) counts.
        """
        if not self.shared:
            return self.nbytes()
        with self._position_lock:
            return sum(p.nbytes for p in self._position_memo.values())


# --------------------------------------------------------------------- #
# Per-process runtime memoisation (same discipline as the mobility memo
# in scenarios.py: bounded LRU, thread-safe lookups, raced duplicate
# builds accepted because construction is deterministic).  The cap is
# smaller than the mobility memo's because one runtime holds the full
# per-tick table timeline (~1.3 MB at 75 nodes).
# --------------------------------------------------------------------- #
_RUNTIME_MEMO: OrderedDict[NetworkScenario, ScenarioRuntime] = OrderedDict()
_MEMO_MAX_ENTRIES = 32
_MEMO_LOCK = threading.Lock()
_MEMO_ENABLED = flags.read_bool("REPRO_RUNTIME_MEMO")


def get_runtime(scenario: NetworkScenario) -> ScenarioRuntime | None:
    """The shared per-process runtime for ``scenario`` (LRU-memoised).

    Returns ``None`` when runtime memoisation is disabled — callers pass
    that straight to the simulator, which then recomputes the substrate
    exactly as before the cache existed.
    """
    if not _MEMO_ENABLED:
        return None
    with _MEMO_LOCK:
        cached = _RUNTIME_MEMO.get(scenario)
        if cached is not None:
            _RUNTIME_MEMO.move_to_end(scenario)
            return cached
    runtime = ScenarioRuntime(scenario)
    with _MEMO_LOCK:
        existing = _RUNTIME_MEMO.get(scenario)
        if existing is not None:
            return existing
        if len(_RUNTIME_MEMO) >= _MEMO_MAX_ENTRIES:
            _RUNTIME_MEMO.popitem(last=False)
        _RUNTIME_MEMO[scenario] = runtime
        return runtime


def runtime_memoisation_enabled() -> bool:
    """Whether cached runtimes may be served at all.

    ``REPRO_RUNTIME_MEMO=0`` / :func:`set_runtime_memoisation` promise
    the recompute path everywhere; the shared-memory layer checks this
    so a precomputed segment cannot silently undo the ablation.
    """
    return _MEMO_ENABLED


def peek_runtime(scenario: NetworkScenario) -> ScenarioRuntime | None:
    """The memoised runtime if one exists — never builds or inserts.

    Used by :class:`~repro.manet.shared.SharedRuntimeArena` when packing
    segments: inserting into the parent's memo right before the pool
    forks would hand every worker an inherited private copy of the
    timeline, defeating the sharing it is about to set up.
    """
    if not _MEMO_ENABLED:
        return None
    with _MEMO_LOCK:
        return _RUNTIME_MEMO.get(scenario)


def set_runtime_memoisation(enabled: bool) -> None:
    """Turn runtime memoisation on or off (off also drops cached runtimes)."""
    global _MEMO_ENABLED
    _MEMO_ENABLED = bool(enabled)
    if not _MEMO_ENABLED:
        clear_runtime_cache()


def clear_runtime_cache() -> None:
    """Drop every memoised scenario runtime in this process."""
    with _MEMO_LOCK:
        _RUNTIME_MEMO.clear()


def runtime_cache_size() -> int:
    """Number of runtimes currently memoised."""
    with _MEMO_LOCK:
        return len(_RUNTIME_MEMO)


def runtime_cache_nbytes() -> int:
    """Private bytes held by this process's memoised runtimes.

    The per-worker substrate-memory metric of
    ``benchmarks/bench_shared_runtime.py``: shared (attached) runtimes
    never enter this memo, so a worker running off a
    :class:`~repro.manet.shared.SharedRuntimeArena` reports ~0 here
    while a per-process worker reports one full timeline per scenario.
    """
    with _MEMO_LOCK:
        runtimes = list(_RUNTIME_MEMO.values())
    return sum(rt.private_nbytes() for rt in runtimes)
