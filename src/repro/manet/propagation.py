"""Radio propagation models.

ns3's ``LogDistancePropagationLossModel`` with its default constants is the
loss model the paper's evaluation inherits; :class:`LogDistancePathLoss`
implements exactly that:

``PL(d) = L0 + 10 * n * log10(d / d0)``   [dB]

with exponent ``n = 3.0`` and ``L0 = 46.6777`` dB at ``d0 = 1`` m.  Received
power is then ``rx = tx - PL(d)`` in dBm.  Distances below ``d0`` clamp to
``d0`` (ns3 behaviour: the model is not defined in the near field).

Extensions beyond the paper (all drop-in substitutes with the same
vectorised dB-domain interface, selectable via
``RadioConfig.propagation`` and :func:`build_path_loss`):

* :class:`FriisPathLoss` — free-space loss, the optimistic bound;
* :class:`TwoRayGroundPathLoss` — Friis near field + fourth-power ground
  reflection beyond the crossover distance (the classic ns2 default);
* :class:`HashedShadowing` — a deterministic rough-channel wrapper that
  adds dB offsets keyed on the quantised distance.  This is *not* a
  physical shadowing model (true log-normal shadowing needs per-link
  state the vectorised substrate deliberately avoids); it is a
  determinism-preserving stand-in used by the robustness ablations to
  ask "does the tuned configuration survive a channel that is not
  textbook-smooth?".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.manet.config import RadioConfig
from repro.utils.validation import check_positive

__all__ = [
    "LogDistancePathLoss",
    "FriisPathLoss",
    "TwoRayGroundPathLoss",
    "HashedShadowing",
    "build_path_loss",
]


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path-loss model (dB domain, vectorised)."""

    exponent: float = 3.0
    reference_loss_db: float = 46.6777
    reference_distance_m: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.exponent, "exponent")
        check_positive(self.reference_distance_m, "reference_distance_m")

    @classmethod
    def from_config(cls, radio: RadioConfig) -> "LogDistancePathLoss":
        """Build the model from a :class:`RadioConfig`."""
        return cls(
            exponent=radio.path_loss_exponent,
            reference_loss_db=radio.reference_loss_db,
            reference_distance_m=radio.reference_distance_m,
        )

    def loss_db(self, distance_m):
        """Path loss in dB at the given distance(s).  Vectorised."""
        d = np.maximum(np.asarray(distance_m, dtype=float), self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(
            d / self.reference_distance_m
        )

    def rx_power_dbm(self, tx_power_dbm, distance_m):
        """Received power (dBm) for transmit power(s) at distance(s)."""
        return np.asarray(tx_power_dbm, dtype=float) - self.loss_db(distance_m)

    def range_for_budget(self, link_budget_db: float) -> float:
        """Largest distance whose loss fits in the link budget (dB).

        Inverse of :meth:`loss_db`; returns ``reference_distance_m`` when
        the budget does not even cover the reference loss.
        """
        excess = (link_budget_db - self.reference_loss_db) / (10.0 * self.exponent)
        if excess <= 0:
            return self.reference_distance_m
        return self.reference_distance_m * float(10.0**excess)

    def tx_power_for(
        self, distance_m: float, required_rx_dbm: float
    ) -> float:
        """Transmit power (dBm) needed to deliver ``required_rx_dbm`` at
        ``distance_m``."""
        return required_rx_dbm + float(self.loss_db(distance_m))


@dataclass(frozen=True)
class FriisPathLoss:
    """Free-space (Friis) path loss.

    ``PL(d) = 20 log10(4 pi d f / c)`` dB — the no-obstruction lower
    bound on loss; ranges come out far larger than log-distance with
    exponent 3, which is exactly what the propagation ablation contrasts.
    """

    frequency_ghz: float = 2.4
    #: Near-field clamp (the model diverges at d -> 0).
    min_distance_m: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.frequency_ghz, "frequency_ghz")
        check_positive(self.min_distance_m, "min_distance_m")

    def loss_db(self, distance_m):
        """Path loss in dB at the given distance(s).  Vectorised."""
        d = np.maximum(np.asarray(distance_m, dtype=float), self.min_distance_m)
        # 20 log10(4 pi f / c) = 32.4478 + 20 log10(f_GHz), d in metres.
        const = 32.4478 + 20.0 * np.log10(self.frequency_ghz)
        return const + 20.0 * np.log10(d)

    def rx_power_dbm(self, tx_power_dbm, distance_m):
        """Received power (dBm) for transmit power(s) at distance(s)."""
        return np.asarray(tx_power_dbm, dtype=float) - self.loss_db(distance_m)

    def range_for_budget(self, link_budget_db: float) -> float:
        """Largest distance whose loss fits in the link budget (dB)."""
        const = 32.4478 + 20.0 * np.log10(self.frequency_ghz)
        excess = (link_budget_db - const) / 20.0
        if excess <= 0:
            return self.min_distance_m
        return max(self.min_distance_m, float(10.0**excess))

    def tx_power_for(self, distance_m: float, required_rx_dbm: float) -> float:
        """Transmit power (dBm) delivering ``required_rx_dbm`` at range."""
        return required_rx_dbm + float(self.loss_db(distance_m))


@dataclass(frozen=True)
class TwoRayGroundPathLoss:
    """Two-ray ground-reflection model with a Friis near field.

    Below the crossover distance ``dc = 4 pi ht hr f / c`` the direct ray
    dominates and Friis applies; beyond it the ground reflection drives
    the classic fourth-power law ``PL = 40 log10(d) - 20 log10(ht hr)``.
    The loss is continuous at ``dc`` by construction of the crossover.
    """

    frequency_ghz: float = 2.4
    tx_antenna_height_m: float = 1.5
    rx_antenna_height_m: float = 1.5
    min_distance_m: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.frequency_ghz, "frequency_ghz")
        check_positive(self.tx_antenna_height_m, "tx_antenna_height_m")
        check_positive(self.rx_antenna_height_m, "rx_antenna_height_m")
        check_positive(self.min_distance_m, "min_distance_m")

    @property
    def crossover_distance_m(self) -> float:
        """Distance where the ground-reflection regime takes over."""
        wavelength = 0.299792458 / self.frequency_ghz  # metres
        return (
            4.0
            * np.pi
            * self.tx_antenna_height_m
            * self.rx_antenna_height_m
            / wavelength
        )

    def loss_db(self, distance_m):
        """Path loss in dB at the given distance(s).  Vectorised."""
        d = np.maximum(np.asarray(distance_m, dtype=float), self.min_distance_m)
        friis = FriisPathLoss(
            frequency_ghz=self.frequency_ghz, min_distance_m=self.min_distance_m
        ).loss_db(d)
        far = 40.0 * np.log10(d) - 20.0 * np.log10(
            self.tx_antenna_height_m * self.rx_antenna_height_m
        )
        return np.where(d < self.crossover_distance_m, friis, far)

    def rx_power_dbm(self, tx_power_dbm, distance_m):
        """Received power (dBm) for transmit power(s) at distance(s)."""
        return np.asarray(tx_power_dbm, dtype=float) - self.loss_db(distance_m)

    def range_for_budget(self, link_budget_db: float) -> float:
        """Largest distance whose loss fits in the link budget (dB)."""
        dc = self.crossover_distance_m
        if float(self.loss_db(dc)) >= link_budget_db:
            return FriisPathLoss(
                frequency_ghz=self.frequency_ghz,
                min_distance_m=self.min_distance_m,
            ).range_for_budget(link_budget_db)
        heights = 20.0 * np.log10(
            self.tx_antenna_height_m * self.rx_antenna_height_m
        )
        return float(10.0 ** ((link_budget_db + heights) / 40.0))

    def tx_power_for(self, distance_m: float, required_rx_dbm: float) -> float:
        """Transmit power (dBm) delivering ``required_rx_dbm`` at range."""
        return required_rx_dbm + float(self.loss_db(distance_m))


@dataclass(frozen=True)
class HashedShadowing:
    """Deterministic rough-channel wrapper around a base loss model.

    Adds a zero-mean dB offset drawn from ``sigma_db`` times a standard
    normal that is *keyed on the quantised distance* (bin width
    ``bin_m``) and a seed.  Properties that make it usable inside the
    vectorised substrate:

    * **deterministic** — same distance, same offset, every call: runs
      stay pure functions of (scenario, params);
    * **reciprocal** — distance is symmetric, so both link directions
      see the same loss (the beacon power-estimation logic relies on
      channel reciprocity);
    * **zero interface change** — same ``loss_db``/``rx_power_dbm``
      vectorised signatures.

    It is *not* log-normal shadowing (links at equal distance share an
    offset); see the module docstring for the honest framing.
    """

    base: LogDistancePathLoss = LogDistancePathLoss()
    sigma_db: float = 4.0
    bin_m: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive(self.sigma_db, "sigma_db", strict=False)
        check_positive(self.bin_m, "bin_m")

    def _offset_db(self, distance_m) -> np.ndarray:
        d = np.asarray(distance_m, dtype=float)
        bins = np.floor(d / self.bin_m).astype(np.uint64)
        # SplitMix64-style integer hash -> uniform in (0, 1) -> normal.
        # The seed constant wraps modulo 2^64 by construction.
        seed_mix = np.uint64(
            (int(self.seed) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        )
        h = bins + seed_mix
        h ^= h >> np.uint64(30)
        h *= np.uint64(0xBF58476D1CE4E5B9)
        h ^= h >> np.uint64(27)
        h *= np.uint64(0x94D049BB133111EB)
        h ^= h >> np.uint64(31)
        u = (h.astype(np.float64) + 0.5) / 2.0**64
        # Box: inverse-CDF via scipy would add a dependency here; the
        # (cheap, bounded) inverse of the logistic approximates the probit
        # well within +-3 sigma, which is all a robustness knob needs.
        z = np.log(u / (1.0 - u)) / 1.702
        return self.sigma_db * z

    def loss_db(self, distance_m):
        """Base loss plus the deterministic distance-keyed offset."""
        return self.base.loss_db(distance_m) + self._offset_db(distance_m)

    def rx_power_dbm(self, tx_power_dbm, distance_m):
        """Received power (dBm) under the rough channel."""
        return np.asarray(tx_power_dbm, dtype=float) - self.loss_db(distance_m)

    def range_for_budget(self, link_budget_db: float) -> float:
        """Base model's range (offsets are zero-mean)."""
        return self.base.range_for_budget(link_budget_db)

    def tx_power_for(self, distance_m: float, required_rx_dbm: float) -> float:
        """Transmit power (dBm) delivering ``required_rx_dbm`` at range."""
        return required_rx_dbm + float(self.loss_db(distance_m))


def build_path_loss(radio: RadioConfig):
    """The propagation model a :class:`RadioConfig` selects.

    ``radio.propagation`` chooses the family; the log-distance constants
    of the config parameterise the default model, and the extension
    models read their extra knobs from ``radio`` where present.
    """
    kind = getattr(radio, "propagation", "log-distance")
    if kind == "log-distance":
        return LogDistancePathLoss.from_config(radio)
    if kind == "friis":
        return FriisPathLoss(frequency_ghz=radio.frequency_ghz)
    if kind == "two-ray":
        return TwoRayGroundPathLoss(
            frequency_ghz=radio.frequency_ghz,
            tx_antenna_height_m=radio.antenna_height_m,
            rx_antenna_height_m=radio.antenna_height_m,
        )
    if kind == "shadowed":
        return HashedShadowing(
            base=LogDistancePathLoss.from_config(radio),
            sigma_db=radio.shadowing_sigma_db,
            seed=radio.shadowing_seed,
        )
    raise ValueError(
        f"unknown propagation model {kind!r}; choose from "
        "'log-distance', 'friis', 'two-ray', 'shadowed'"
    )
