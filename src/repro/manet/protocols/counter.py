"""Counter-based broadcasting.

The node counts copies of the message heard during a random assessment
window; if ``counter_threshold`` or more copies arrive before the timer
fires, its own retransmission would be redundant (the neighbourhood is
evidently saturated) and it drops.  From Ni et al. [12]: the counter is a
cheap, position-free proxy for local density — the same quantity AEDB's
``neighbors_threshold`` reads from beacon tables.
"""

from __future__ import annotations

from repro.manet.protocols.base import BroadcastProtocol, ProtocolContext

__all__ = ["CounterBasedProtocol"]


class CounterBasedProtocol(BroadcastProtocol):
    """Counter scheme: drop after hearing ``c`` copies while waiting."""

    name = "counter"

    def __init__(
        self,
        ctx: ProtocolContext,
        counter_threshold: int = 3,
        delay_interval_s: tuple[float, float] = (0.0, 0.1),
    ):
        super().__init__(ctx)
        if counter_threshold < 1:
            raise ValueError(
                f"counter_threshold must be >= 1, got {counter_threshold}"
            )
        #: Copies (including the first) that cancel the forwarding.
        self.counter_threshold = int(counter_threshold)
        #: Uniform window for the assessment delay, s.
        self.delay_interval_s = (
            float(delay_interval_s[0]),
            float(delay_interval_s[1]),
        )

    def _on_first_copy(
        self, node: int, sender: int, rx_power_dbm: float, time_s: float
    ) -> None:
        self._arm_timer(node, time_s, self._draw_delay(self.delay_interval_s))

    def _on_timer(self, node: int, time_s: float) -> None:
        # ``copies_heard`` includes the first copy, matching the classic
        # formulation (threshold c: forward while counter < c).
        if self.copies_heard[node] >= self.counter_threshold:
            self._drop(node, time_s, f"counter:{self.copies_heard[node]}")
        else:
            self._forward(node, time_s)
