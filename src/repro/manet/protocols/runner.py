"""Generic single-broadcast experiment for any protocol.

:class:`ProtocolSimulator` is the scheme-agnostic counterpart of
:class:`repro.manet.simulator.BroadcastSimulator`: the same substrate
(mobility trace, 1 Hz beaconing, shared radio medium with SINR capture,
same timeline and metrics), but the protocol is produced by a factory
``factory(ctx) -> protocol``.  Anything exposing ``start_broadcast``,
``on_receive`` and ``first_rx_time`` runs — the baselines of this
subpackage and, through :func:`aedb_protocol`, AEDB itself, which is what
makes like-for-like storm comparisons possible.

Determinism matches the AEDB simulator: all randomness derives from the
scenario seed, so a run is a pure function of ``(scenario, factory)``.
A shared :class:`~repro.manet.runtime.ScenarioRuntime` swaps the
parameter-independent substrate for its precomputed form exactly as in
the AEDB simulator — baselines compared on the same scenario reuse one
beacon grid.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.manet.aedb import AEDBParams, AEDBProtocol
from repro.manet.beacons import NeighborTables
from repro.manet.config import SimulationConfig
from repro.manet.events import make_event_queue
from repro.manet.medium import Frame, RadioMedium, batched_deliveries_enabled
from repro.manet.metrics import BroadcastMetrics
from repro.manet.mobility import MobilityModel
from repro.manet.protocols.base import ProtocolContext
from repro.manet.runtime import (
    ScenarioRuntime,
    resolve_mobility,
    run_beacon_schedule,
)
from repro.manet.scenarios import NetworkScenario

__all__ = ["ProtocolFactory", "ProtocolSimulator", "simulate_protocol", "aedb_protocol"]

#: Builds a protocol instance from the simulator-provided context.
ProtocolFactory = Callable[[ProtocolContext], object]


class ProtocolSimulator:
    """One dissemination experiment for an arbitrary broadcast protocol."""

    def __init__(
        self,
        scenario: NetworkScenario,
        factory: ProtocolFactory,
        protocol_seed: int | None = None,
        mobility: MobilityModel | None = None,
        runtime: ScenarioRuntime | None = None,
        batched: bool | None = None,
        live_index: bool | None = None,
    ):
        self.scenario = scenario
        self._sim: SimulationConfig = scenario.sim
        self.runtime = runtime
        self._mobility = resolve_mobility(scenario, mobility, runtime)
        seed = (
            protocol_seed
            if protocol_seed is not None
            else (scenario.mobility_seed ^ 0x5EDB) & 0xFFFFFFFF
        )
        batched = batched_deliveries_enabled() if batched is None else bool(batched)
        # The event queue honours REPRO_COMPILED like the AEDB simulator:
        # baseline protocols run on the compiled heap when it is built
        # (identical semantics either way; the §14 kernel itself only
        # dispatches for AEDB, so this buys the queue, not the window).
        self.queue = make_event_queue()
        self.tables = NeighborTables(
            scenario.n_nodes, self._sim, self._mobility, runtime=runtime,
            use_live_index=live_index,
        )
        self.medium = RadioMedium(
            self.queue, self._mobility, self._sim.radio, self._deliver,
            runtime=runtime,
            on_delivery_batch=self._deliver_batch if batched else None,
        )
        ctx = ProtocolContext(
            n_nodes=scenario.n_nodes,
            queue=self.queue,
            tables=self.tables,
            radio=self._sim.radio,
            transmit=self._transmit,
            rng=np.random.default_rng(seed),
            mac_jitter_s=self._sim.mac_jitter_s,
        )
        self.protocol = factory(ctx)
        for attr in ("start_broadcast", "on_receive", "first_rx_time"):
            if not hasattr(self.protocol, attr):
                raise TypeError(
                    f"factory produced {type(self.protocol).__name__} "
                    f"without required attribute {attr!r}"
                )
        # Resolved once: the batch hook is invariant for the protocol's
        # lifetime, so the per-frame dispatch need not re-getattr it.
        self._batch_hook = getattr(self.protocol, "on_receive_batch", None)
        self._ran = False

    # -- wiring ---------------------------------------------------------- #
    def _deliver(self, receiver: int, frame: Frame, rx_dbm: float, t: float) -> None:
        self.protocol.on_receive(receiver, frame.sender, rx_dbm, t)

    def _deliver_batch(
        self, receivers: np.ndarray, frame: Frame, rx_dbm: np.ndarray, t: float
    ) -> None:
        # Protocols that implement the batch hook (AEDB) get the whole
        # eligibility mask + rx vector; the baselines fall back to the
        # identical per-receiver loop the medium would otherwise run
        # (same ascending order, same full-vector floats), so one
        # runner serves both.
        batch = self._batch_hook
        if batch is not None:
            batch(receivers, frame.sender, rx_dbm, t)
            return
        on_receive = self.protocol.on_receive
        sender = frame.sender
        rx_list = rx_dbm.tolist()
        for r in np.flatnonzero(receivers).tolist():
            on_receive(r, sender, rx_list[r], t)

    def _transmit(self, sender: int, power_dbm: float, t: float) -> None:
        now = self.queue.now
        if t <= now:
            self.medium.transmit(sender, power_dbm, now)
        else:
            self.queue.post(
                t, lambda fire_t, s=sender, p=power_dbm: self.medium.transmit(s, p, fire_t)
            )

    # -- execution ------------------------------------------------------- #
    def run(self) -> BroadcastMetrics:
        """Execute the experiment once and return its metrics."""
        if self._ran:
            raise RuntimeError("ProtocolSimulator instances are single-use")
        self._ran = True
        sim = self._sim

        run_beacon_schedule(sim, self.runtime, self.tables, self.queue)

        self.protocol.start_broadcast(self.scenario.source, sim.warmup_s)
        self.queue.run_until(sim.horizon_s)
        return self._collect_metrics()

    def _collect_metrics(self) -> BroadcastMetrics:
        sim = self._sim
        src = self.scenario.source
        first_rx = np.asarray(self.protocol.first_rx_time, dtype=float)
        received_non_source = ~np.isnan(first_rx)
        received_non_source[src] = False
        coverage = int(np.count_nonzero(received_non_source))

        forwardings = max(self.medium.transmission_count - 1, 0)
        energy = self.medium.energy_dbm_total()

        if coverage > 0:
            bt = float(np.max(first_rx[received_non_source]))
            broadcast_time = bt - sim.warmup_s
        else:
            broadcast_time = 0.0

        return BroadcastMetrics(
            coverage=float(coverage),
            energy_dbm=float(energy),
            forwardings=float(forwardings),
            broadcast_time_s=float(broadcast_time),
            n_nodes=self.scenario.n_nodes,
        )


def simulate_protocol(
    scenario: NetworkScenario,
    factory: ProtocolFactory,
    protocol_seed: int | None = None,
    runtime: ScenarioRuntime | None = None,
) -> BroadcastMetrics:
    """Convenience wrapper: build, run, and return the metrics."""
    return ProtocolSimulator(
        scenario, factory, protocol_seed=protocol_seed, runtime=runtime
    ).run()


def aedb_protocol(params: AEDBParams) -> ProtocolFactory:
    """Factory adapter: run AEDB under the generic runner.

    The produced :class:`~repro.manet.aedb.AEDBProtocol` is byte-for-byte
    the one :class:`~repro.manet.simulator.BroadcastSimulator` uses, so
    comparisons against the baselines share every modelling assumption.
    """

    def build(ctx: ProtocolContext) -> AEDBProtocol:
        return AEDBProtocol(
            params=params,
            n_nodes=ctx.n_nodes,
            queue=ctx.queue,
            tables=ctx.tables,
            radio=ctx.radio,
            transmit=ctx.transmit,
            rng=ctx.rng,
            mac_jitter_s=ctx.mac_jitter_s,
        )

    return build
