"""Baseline broadcast protocols (the broadcast-storm context of Sect. I).

The paper motivates AEDB against the *broadcast storm problem* (Ni et
al. [12]): naive flooding wastes energy and bandwidth on redundant
retransmissions.  This subpackage implements the classic suppression
schemes from that literature as drop-in protocols for the same simulator
substrate AEDB runs on, so the AEDB trade-off can be measured against the
baselines it improves upon:

* :class:`FloodingProtocol` — every node retransmits once (the storm);
* :class:`ProbabilisticProtocol` — retransmit with fixed probability;
* :class:`CounterBasedProtocol` — drop after hearing ``c`` copies;
* :class:`DistanceBasedProtocol` — the power/distance border test AEDB
  extends, at fixed transmission power (EDB without the A);
* :func:`aedb_protocol` — adapter running AEDB itself under the same
  generic :class:`ProtocolSimulator`.

All protocols share :class:`BroadcastProtocol`'s state machine scaffolding
and are scored with the same four metrics as AEDB (coverage, energy,
forwardings, broadcast time).
"""

from repro.manet.protocols.base import BroadcastProtocol, NodePhase, ProtocolContext
from repro.manet.protocols.compare import (
    ProtocolComparison,
    ProtocolOutcome,
    compare_protocols,
    standard_protocol_suite,
)
from repro.manet.protocols.counter import CounterBasedProtocol
from repro.manet.protocols.distance import DistanceBasedProtocol
from repro.manet.protocols.flooding import FloodingProtocol
from repro.manet.protocols.probabilistic import ProbabilisticProtocol
from repro.manet.protocols.runner import (
    ProtocolSimulator,
    aedb_protocol,
    simulate_protocol,
)

__all__ = [
    "BroadcastProtocol",
    "NodePhase",
    "ProtocolContext",
    "FloodingProtocol",
    "ProbabilisticProtocol",
    "CounterBasedProtocol",
    "DistanceBasedProtocol",
    "ProtocolSimulator",
    "simulate_protocol",
    "aedb_protocol",
    "ProtocolComparison",
    "ProtocolOutcome",
    "compare_protocols",
    "standard_protocol_suite",
]
