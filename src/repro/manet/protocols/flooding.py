"""Simple flooding — the broadcast storm itself.

Every node retransmits the message exactly once, at full power, on first
reception.  With the default zero delay window, retransmissions are
near-simultaneous (desynchronised only by MAC jitter) and collide
heavily — the storm in its purest form, the energy/forwardings *worst
case* that motivates AEDB (Sect. I of the paper, via Ni et al. [12]).
Passing a non-degenerate ``delay_interval_s`` gives *jittered flooding*,
the standard storm mitigation that trades latency for fewer collisions
while keeping full redundancy.
"""

from __future__ import annotations

from repro.manet.protocols.base import BroadcastProtocol, ProtocolContext

__all__ = ["FloodingProtocol"]


class FloodingProtocol(BroadcastProtocol):
    """Blind flooding: first copy -> one full-power retransmission."""

    name = "flooding"

    def __init__(
        self,
        ctx: ProtocolContext,
        delay_interval_s: tuple[float, float] = (0.0, 0.0),
    ):
        super().__init__(ctx)
        #: Uniform window for the pre-forward delay, s.  (0, 0) = blind
        #: flooding; a wider window = jittered flooding.
        self.delay_interval_s = (
            float(delay_interval_s[0]),
            float(delay_interval_s[1]),
        )

    def _on_first_copy(
        self, node: int, sender: int, rx_power_dbm: float, time_s: float
    ) -> None:
        # No suppression statistic: the timer only spaces transmissions.
        self._arm_timer(node, time_s, self._draw_delay(self.delay_interval_s))

    def _on_timer(self, node: int, time_s: float) -> None:
        self._forward(node, time_s)
