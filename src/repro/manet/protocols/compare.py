"""Like-for-like comparison of broadcast protocols.

Runs every protocol of a suite on the *same* evaluation networks (the
paper's fixed-scenario methodology, Sect. V) and reports the four AEDB
metrics plus the broadcast-storm diagnostics of Ni et al. [12]:

* **reachability** — covered fraction of the non-source population;
* **saved rebroadcasts (SRB)** — ``1 - forwarders / receivers``: how much
  of the storm the suppression scheme removed (flooding scores ~0).

The comparison returns plain dataclasses; :func:`render_comparison`
formats the table the protocol-showdown example and bench print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.manet.aedb import AEDBParams
from repro.manet.metrics import BroadcastMetrics, aggregate_metrics
from repro.manet.protocols.base import ProtocolContext
from repro.manet.protocols.counter import CounterBasedProtocol
from repro.manet.protocols.distance import DistanceBasedProtocol
from repro.manet.protocols.flooding import FloodingProtocol
from repro.manet.protocols.probabilistic import ProbabilisticProtocol
from repro.manet.protocols.runner import (
    ProtocolFactory,
    aedb_protocol,
    simulate_protocol,
)
from repro.manet.runtime import get_runtime
from repro.manet.scenarios import NetworkScenario

__all__ = [
    "ProtocolOutcome",
    "ProtocolComparison",
    "standard_protocol_suite",
    "compare_protocols",
    "render_comparison",
]


@dataclass
class ProtocolOutcome:
    """Aggregated result of one protocol over the evaluation networks."""

    #: Suite label of the protocol.
    name: str
    #: Per-network metrics, in scenario order.
    per_network: list[BroadcastMetrics] = field(default_factory=list)

    @property
    def mean(self) -> BroadcastMetrics:
        """Average metrics over the evaluation networks."""
        return aggregate_metrics(self.per_network)

    @property
    def reachability(self) -> float:
        """Mean covered fraction of the non-source population."""
        return float(np.mean([m.coverage_ratio for m in self.per_network]))

    @property
    def saved_rebroadcasts(self) -> float:
        """Mean SRB: 1 - (retransmitting nodes / receiving nodes).

        Receivers include the source (it holds the message), matching the
        classic definition; an uncovered network scores 0 savings.
        """
        vals = []
        for m in self.per_network:
            receivers = m.coverage + 1.0  # + the source
            forwarders = m.forwardings + 1.0  # + the source's seed frame
            vals.append(1.0 - forwarders / receivers if receivers > 0 else 0.0)
        return float(np.mean(vals))


@dataclass
class ProtocolComparison:
    """All protocol outcomes for one evaluation-network set."""

    #: Density label of the underlying scenarios (devices/km²).
    density_per_km2: float
    #: Number of evaluation networks each protocol ran on.
    n_networks: int
    #: Outcomes keyed by protocol label, in insertion (suite) order.
    outcomes: dict[str, ProtocolOutcome] = field(default_factory=dict)

    def ranking(self, key: str = "reachability") -> list[str]:
        """Protocol labels sorted best-first by an outcome property.

        ``reachability``/``saved_rebroadcasts`` rank descending; the raw
        metric keys (``energy_dbm``, ``forwardings``,
        ``broadcast_time_s``) rank ascending (lower is better).
        """
        descending = key in ("reachability", "saved_rebroadcasts")

        def value(name: str) -> float:
            out = self.outcomes[name]
            if hasattr(out, key):
                return float(getattr(out, key))
            return float(getattr(out.mean, key))

        return sorted(self.outcomes, key=value, reverse=descending)


def standard_protocol_suite(
    aedb_params: AEDBParams | None = None,
    gossip_p: float = 0.6,
    counter_threshold: int = 3,
    border_threshold_dbm: float = -90.0,
    delay_interval_s: tuple[float, float] = (0.0, 0.1),
) -> dict[str, ProtocolFactory]:
    """The canonical five-way suite: storm baselines + AEDB.

    Scheme knobs default to mid-range literature values; the AEDB entry
    uses ``aedb_params`` (default: :class:`AEDBParams` defaults, i.e. an
    untuned configuration — exactly what the optimiser improves on).
    """
    params = aedb_params or AEDBParams()

    def flooding(ctx: ProtocolContext) -> FloodingProtocol:
        return FloodingProtocol(ctx)

    def jittered(ctx: ProtocolContext) -> FloodingProtocol:
        return FloodingProtocol(ctx, delay_interval_s=delay_interval_s)

    def gossip(ctx: ProtocolContext) -> ProbabilisticProtocol:
        return ProbabilisticProtocol(
            ctx, forward_probability=gossip_p, delay_interval_s=delay_interval_s
        )

    def counter(ctx: ProtocolContext) -> CounterBasedProtocol:
        return CounterBasedProtocol(
            ctx,
            counter_threshold=counter_threshold,
            delay_interval_s=delay_interval_s,
        )

    def distance(ctx: ProtocolContext) -> DistanceBasedProtocol:
        return DistanceBasedProtocol(
            ctx,
            border_threshold_dbm=border_threshold_dbm,
            delay_interval_s=delay_interval_s,
        )

    return {
        "flooding": flooding,
        "flood+jit": jittered,
        "gossip": gossip,
        "counter": counter,
        "distance": distance,
        "AEDB": aedb_protocol(params),
    }


def compare_protocols(
    suite: dict[str, ProtocolFactory],
    scenarios: list[NetworkScenario],
) -> ProtocolComparison:
    """Run every protocol of ``suite`` on every scenario."""
    if not suite:
        raise ValueError("protocol suite is empty")
    if not scenarios:
        raise ValueError("scenario list is empty")
    comparison = ProtocolComparison(
        density_per_km2=scenarios[0].density_per_km2,
        n_networks=len(scenarios),
    )
    for name, factory in suite.items():
        outcome = ProtocolOutcome(name=name)
        for scenario in scenarios:
            # Every protocol of the suite shares one precomputed runtime
            # per scenario (beacons are protocol-independent).
            outcome.per_network.append(
                simulate_protocol(scenario, factory, runtime=get_runtime(scenario))
            )
        comparison.outcomes[name] = outcome
    return comparison


def render_comparison(comparison: ProtocolComparison) -> str:
    """Text table of the comparison (example/bench output)."""
    lines = [
        f"Broadcast-protocol comparison — {comparison.density_per_km2:.0f} "
        f"dev/km^2, {comparison.n_networks} networks",
        f"  {'protocol':>12s} {'reach':>7s} {'SRB':>7s} {'energy':>9s} "
        f"{'fwd':>7s} {'time':>8s}",
    ]
    for name, out in comparison.outcomes.items():
        m = out.mean
        lines.append(
            f"  {name:>12s} {out.reachability:>7.2%} "
            f"{out.saved_rebroadcasts:>7.2%} {m.energy_dbm:>9.1f} "
            f"{m.forwardings:>7.1f} {m.broadcast_time_s:>7.3f}s"
        )
    return "\n".join(lines)
