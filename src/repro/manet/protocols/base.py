"""Shared state-machine scaffolding for broadcast protocols.

Every suppression scheme in the broadcast-storm literature follows the
same skeleton: the first copy of the message puts the node into a
*waiting* state (possibly with an assessment timer armed), duplicates
heard while waiting feed the suppression statistic, and when the timer
fires the node either forwards once or drops.  :class:`BroadcastProtocol`
implements that skeleton — reception bookkeeping, timer management,
transmission with MAC jitter, decision logging — and subclasses supply
only the three scheme-specific hooks:

* :meth:`BroadcastProtocol._on_first_copy` — first reception;
* :meth:`BroadcastProtocol._on_duplicate` — copies heard while waiting;
* :meth:`BroadcastProtocol._on_timer` — the forwarding decision.

The interface (``start_broadcast`` / ``on_receive`` driven by the radio
medium) matches :class:`repro.manet.aedb.AEDBProtocol`, so the generic
:class:`~repro.manet.protocols.runner.ProtocolSimulator` can run either.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.manet.beacons import NeighborTables
from repro.manet.config import RadioConfig
from repro.manet.events import EventHandle, EventQueue
from repro.utils.rng import as_generator

__all__ = ["NodePhase", "ProtocolContext", "BroadcastProtocol"]


class NodePhase(enum.Enum):
    """Per-node phase for the current broadcast message."""

    IDLE = "idle"  # never received the message
    WAITING = "waiting"  # received; assessment timer armed
    DROPPED = "dropped"  # received; decided not to forward
    FORWARDED = "forwarded"  # received and retransmitted


#: Transmit callback: (sender, tx_power_dbm, time_s) -> None
TransmitFn = Callable[[int, float, float], None]


@dataclass
class ProtocolContext:
    """Everything the simulator wires into a protocol instance.

    A protocol factory receives one of these and returns a protocol
    object; the indirection keeps protocol constructors free to take
    scheme parameters while the runner stays scheme-agnostic.
    """

    n_nodes: int
    queue: EventQueue
    tables: NeighborTables
    radio: RadioConfig
    transmit: TransmitFn
    rng: np.random.Generator
    mac_jitter_s: float = 0.0005


class BroadcastProtocol:
    """Base class: one dissemination attempt over ``n_nodes`` devices.

    Subclasses decide *whether and when* a node forwards; the base class
    owns every piece of bookkeeping the metrics and the medium need.
    """

    #: Human-readable scheme label (overridden by subclasses).
    name = "base"

    def __init__(self, ctx: ProtocolContext):
        self.ctx = ctx
        self.n_nodes = int(ctx.n_nodes)
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {ctx.n_nodes}")
        self._queue = ctx.queue
        self._radio = ctx.radio
        self._transmit = ctx.transmit
        self._rng = as_generator(ctx.rng)
        self._mac_jitter_s = float(ctx.mac_jitter_s)

        self.phase = [NodePhase.IDLE] * self.n_nodes
        #: Time of first successful reception per node (NaN = never).
        self.first_rx_time = np.full(self.n_nodes, np.nan)
        #: Copies of the message heard per node (first + duplicates).
        self.copies_heard = np.zeros(self.n_nodes, dtype=int)
        #: Nodes this node heard the message *from* (they already have it).
        self._heard_from: list[set[int]] = [set() for _ in range(self.n_nodes)]
        self._timers: list[EventHandle | None] = [None] * self.n_nodes
        #: Decision log ``(time, node, what)`` for tests and diagnostics.
        self.decisions: list[tuple[float, int, str]] = []

    # ------------------------------------------------------------------ #
    # message origin                                                     #
    # ------------------------------------------------------------------ #
    def start_broadcast(self, source: int, time_s: float) -> None:
        """Source node seeds the dissemination at the default power."""
        if not (0 <= source < self.n_nodes):
            raise ValueError(f"source {source} out of range")
        self.phase[source] = NodePhase.FORWARDED
        self.first_rx_time[source] = time_s
        self.decisions.append((time_s, source, "source"))
        self._transmit(source, self._radio.default_tx_power_dbm, time_s)

    # ------------------------------------------------------------------ #
    # reception path                                                     #
    # ------------------------------------------------------------------ #
    def on_receive(
        self, node: int, sender: int, rx_power_dbm: float, time_s: float
    ) -> None:
        """Radio delivered a copy of the message to ``node``."""
        self._heard_from[node].add(sender)
        self.copies_heard[node] += 1
        state = self.phase[node]
        if state is NodePhase.IDLE:
            self.first_rx_time[node] = time_s
            self._on_first_copy(node, sender, rx_power_dbm, time_s)
        elif state is NodePhase.WAITING:
            self._on_duplicate(node, sender, rx_power_dbm, time_s)
        # DROPPED / FORWARDED: the decision is final; duplicates ignored.

    # ------------------------------------------------------------------ #
    # subclass hooks                                                     #
    # ------------------------------------------------------------------ #
    def _on_first_copy(
        self, node: int, sender: int, rx_power_dbm: float, time_s: float
    ) -> None:
        """Decide the node's reaction to its first copy of the message."""
        raise NotImplementedError

    def _on_duplicate(
        self, node: int, sender: int, rx_power_dbm: float, time_s: float
    ) -> None:
        """React to a copy heard while WAITING (default: ignore)."""

    def _on_timer(self, node: int, time_s: float) -> None:
        """Assessment timer fired; make the forwarding decision."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # shared actions for subclasses                                      #
    # ------------------------------------------------------------------ #
    def _arm_timer(self, node: int, time_s: float, delay_s: float) -> None:
        """Move ``node`` to WAITING with the assessment timer armed."""
        self.phase[node] = NodePhase.WAITING
        self._timers[node] = self._queue.schedule(
            time_s + max(delay_s, 0.0),
            lambda t, n=node: self._fire_timer(n, t),
        )
        self.decisions.append((time_s, node, f"arm:{delay_s:.4f}"))

    def _fire_timer(self, node: int, time_s: float) -> None:
        self._timers[node] = None
        if self.phase[node] is not NodePhase.WAITING:
            return
        self._on_timer(node, time_s)

    def _forward(
        self, node: int, time_s: float, power_dbm: float | None = None
    ) -> None:
        """Retransmit at ``power_dbm`` (default: full power) + MAC jitter."""
        power = (
            self._radio.default_tx_power_dbm if power_dbm is None else power_dbm
        )
        self.phase[node] = NodePhase.FORWARDED
        self.decisions.append((time_s, node, f"forward:{power:.2f}dBm"))
        jitter = (
            float(self._rng.uniform(0.0, self._mac_jitter_s))
            if self._mac_jitter_s > 0
            else 0.0
        )
        self._transmit(node, power, time_s + jitter)

    def _drop(self, node: int, time_s: float, reason: str) -> None:
        """Final negative decision for ``node``."""
        self.phase[node] = NodePhase.DROPPED
        self.decisions.append((time_s, node, f"drop:{reason}"))

    def _draw_delay(self, interval: tuple[float, float]) -> float:
        """Uniform draw from an (ordered, clamped-at-zero) delay window."""
        lo, hi = interval
        lo, hi = (lo, hi) if lo <= hi else (hi, lo)
        lo, hi = max(lo, 0.0), max(hi, 0.0)
        return float(self._rng.uniform(lo, hi)) if hi > lo else lo

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #
    def covered_nodes(self) -> np.ndarray:
        """Ids of nodes that received the message (including the source)."""
        return np.flatnonzero(~np.isnan(self.first_rx_time))

    def forwarder_nodes(self) -> np.ndarray:
        """Ids of nodes that (re)transmitted, including the source."""
        return np.array(
            [
                i
                for i in range(self.n_nodes)
                if self.phase[i] is NodePhase.FORWARDED
            ],
            dtype=int,
        )
