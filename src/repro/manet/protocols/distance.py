"""Distance-based broadcasting at fixed power (EDB without the A).

The direct ancestor of AEDB: a node forwards only if every transmitter
it heard the message from is far enough away — measured, as in AEDB's
cross-layer design, by received signal strength against a *border
threshold* (stronger copy = closer transmitter = smaller additional
coverage from forwarding).  Duplicates heard during the assessment delay
update the strongest-copy tracker and can cancel the forwarding.

Unlike AEDB the retransmission is always at the default (full) power:
comparing the two isolates exactly what the paper's adaptive power
selection and density switch (Fig. 1 lines 19-24) buy.
"""

from __future__ import annotations

import numpy as np

from repro.manet.protocols.base import BroadcastProtocol, ProtocolContext

__all__ = ["DistanceBasedProtocol"]


class DistanceBasedProtocol(BroadcastProtocol):
    """Border-threshold suppression, full-power forwarding."""

    name = "distance"

    def __init__(
        self,
        ctx: ProtocolContext,
        border_threshold_dbm: float = -90.0,
        delay_interval_s: tuple[float, float] = (0.0, 0.1),
    ):
        super().__init__(ctx)
        #: Forwarding-area border: forward only if the strongest copy
        #: heard is at most this power (all transmitters far enough away).
        self.border_threshold_dbm = float(border_threshold_dbm)
        #: Uniform window for the assessment delay, s.
        self.delay_interval_s = (
            float(delay_interval_s[0]),
            float(delay_interval_s[1]),
        )
        #: Strongest copy heard per node, dBm (the AEDB ``pmin`` tracker).
        self.strongest_copy_dbm = np.full(self.n_nodes, -np.inf)

    def _on_first_copy(
        self, node: int, sender: int, rx_power_dbm: float, time_s: float
    ) -> None:
        self.strongest_copy_dbm[node] = rx_power_dbm
        if rx_power_dbm > self.border_threshold_dbm:
            self._drop(node, time_s, "border-first")
            return
        self._arm_timer(node, time_s, self._draw_delay(self.delay_interval_s))

    def _on_duplicate(
        self, node: int, sender: int, rx_power_dbm: float, time_s: float
    ) -> None:
        if rx_power_dbm > self.strongest_copy_dbm[node]:
            self.strongest_copy_dbm[node] = rx_power_dbm

    def _on_timer(self, node: int, time_s: float) -> None:
        if self.strongest_copy_dbm[node] > self.border_threshold_dbm:
            self._drop(node, time_s, "border-timer")
        else:
            self._forward(node, time_s)
