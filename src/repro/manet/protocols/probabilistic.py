"""Probabilistic (gossip) broadcasting.

On first reception each node flips a biased coin: with probability ``p``
it arms a random assessment delay and then retransmits at full power;
with probability ``1 - p`` it stays silent.  The scheme from Ni et
al. [12] (and the optimisation target of Abdou et al. [1], cited in the
paper's related work): redundancy falls linearly with ``p``, but so does
the reachability guarantee in sparse regions — exactly the trade-off
AEDB's adaptive border test avoids.
"""

from __future__ import annotations

from repro.manet.protocols.base import BroadcastProtocol, ProtocolContext

__all__ = ["ProbabilisticProtocol"]


class ProbabilisticProtocol(BroadcastProtocol):
    """Gossip: forward once with fixed probability ``p``."""

    name = "probabilistic"

    def __init__(
        self,
        ctx: ProtocolContext,
        forward_probability: float = 0.5,
        delay_interval_s: tuple[float, float] = (0.0, 0.1),
    ):
        super().__init__(ctx)
        if not 0.0 <= forward_probability <= 1.0:
            raise ValueError(
                f"forward_probability must be in [0, 1], got {forward_probability}"
            )
        #: Probability that a receiving node retransmits.
        self.forward_probability = float(forward_probability)
        #: Uniform window for the pre-forward delay, s.
        self.delay_interval_s = (
            float(delay_interval_s[0]),
            float(delay_interval_s[1]),
        )

    def _on_first_copy(
        self, node: int, sender: int, rx_power_dbm: float, time_s: float
    ) -> None:
        if self._rng.uniform() < self.forward_probability:
            self._arm_timer(node, time_s, self._draw_delay(self.delay_interval_s))
        else:
            self._drop(node, time_s, "coin")

    def _on_timer(self, node: int, time_s: float) -> None:
        self._forward(node, time_s)
