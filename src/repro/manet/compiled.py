"""Compiled event-core selection, marshalling, and writeback.

This module is the Python half of ``repro.manet._evcore`` (DESIGN.md
§14).  It decides whether the compiled core may run (the fallback
ladder), flattens one :class:`~repro.manet.simulator.BroadcastSimulator`
into the typed arrays the kernel consumes, and — after the kernel has
executed the whole broadcast window — writes the end-of-run state back
into the live simulator objects so that metrics collection, decision
logs, telemetry counters, and post-run introspection are byte-for-byte
what the pure-Python reference would have produced.

Selection (``REPRO_COMPILED``, overridable per simulator via the
``compiled=`` argument):

* ``auto`` (default) — use the compiled core when the extension imports,
  its arithmetic self-check passes, and the run shape is supported;
  otherwise fall back silently (``sim.compiled_reason`` says why).
* ``on`` — require the extension: raise at simulator construction if it
  cannot be imported or fails the self-check.  Unsupported run shapes
  still fall back (the pure path is the reference; ``on`` asserts the
  *toolchain*, not the workload).
* ``off`` — pure Python everywhere (the reference path).

The fallback ladder, in order: extension import → ``probe_ops``
arithmetic self-check (sqrt / FMA-contraction canary / floored-mod
replica vs numpy) → per-run preconditions (runtime attached, replay RNG
stream, batched deliveries, log-distance path loss, static or
random-walk mobility).  Every rung lands on the pure path with a
human-readable reason.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.utils import flags

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.manet.simulator import BroadcastSimulator

__all__ = [
    "compiled_core_available",
    "compiled_core_reason",
    "execute_compiled_run",
    "precondition_blocker",
    "resolve_compiled_mode",
]

#: Lazily-resolved (extension module | None, reason | None).
_STATE: tuple[object, str | None] | None = None

_MODES = ("auto", "on", "off")


def resolve_compiled_mode(override=None) -> str:
    """The effective compiled-core mode: ``auto`` | ``on`` | ``off``.

    ``override`` is the simulator's ``compiled=`` argument: ``None``
    defers to ``REPRO_COMPILED`` (default ``auto``); a bool maps to
    ``on``/``off``; a string names a mode directly.
    """
    if override is None:
        mode = (flags.read_raw("REPRO_COMPILED") or "auto").strip().lower() or "auto"
    elif isinstance(override, str):
        mode = override.strip().lower()
    else:
        mode = "on" if override else "off"
    if mode not in _MODES:
        raise ValueError(
            f"REPRO_COMPILED/compiled= must be one of {_MODES}, got {mode!r}"
        )
    return mode


def _bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return a.tobytes() == b.tobytes()


def _self_check(ext) -> str | None:
    """Verify the extension's native arithmetic against numpy, bitwise.

    The kernel's identity argument (DESIGN.md §14) rests on C sqrt and
    the IEEE basics matching numpy exactly, on the compiler not having
    contracted ``a*a + b*b`` into an FMA, and on the floored-mod replica
    of ``np.mod`` used by the mobility fold.  A host where any of these
    fails (exotic libm, forced -ffast-math, FMA contraction) must land
    on the pure path, not produce subtly different metrics.
    """
    rng = np.random.default_rng(0x5EDB)
    a = rng.uniform(0.5, 1200.0, 257)
    b = rng.uniform(0.5, 1200.0, 257)
    out = np.empty(257)
    ext.probe_ops(0, a, b, out)
    if not _bits_equal(out, np.sqrt(a)):
        return "self-check failed: sqrt differs from numpy"
    ext.probe_ops(1, a, b, out)
    if not _bits_equal(out, np.add(np.multiply(a, a), np.multiply(b, b))):
        return "self-check failed: FMA-contraction canary tripped"
    signed = a - 600.0  # negatives exercise the floored-mod adjustment
    period = np.full(257, 713.0)
    ext.probe_ops(2, signed, period, out)
    if not _bits_equal(out, np.mod(signed, period)):
        return "self-check failed: floored mod differs from np.mod"
    return None


def _resolve_extension() -> tuple[object, str | None]:
    global _STATE
    if _STATE is None:
        try:
            from repro.manet import _evcore
        except ImportError as exc:
            _STATE = (None, f"extension not built ({exc})")
        else:
            reason = _self_check(_evcore)
            _STATE = (None, reason) if reason else (_evcore, None)
    return _STATE


def compiled_core_available() -> bool:
    """True when the extension imports and passes its self-check."""
    return _resolve_extension()[0] is not None


def compiled_core_reason() -> str | None:
    """Why the compiled core is unavailable (None when it is usable)."""
    return _resolve_extension()[1]


def precondition_blocker(sim: "BroadcastSimulator") -> str | None:
    """First unsupported-run-shape reason, or None if the kernel applies.

    The kernel covers exactly the warm evaluation path the campaign and
    tuning layers run: a :class:`ScenarioRuntime` substrate, the replay
    RNG stream, batched deliveries, the log-distance model, and a
    static or random-walk trace.  Anything else is the pure path's job.
    """
    from repro.manet.mobility import RandomWalkMobility, StaticMobility
    from repro.manet.runtime import UniformStream

    if sim.runtime is None:
        return "no ScenarioRuntime attached"
    if type(sim._protocol_rng) is not UniformStream:
        return "protocol rng is not the runtime's replay stream"
    if sim.medium._on_delivery_batch is None:
        return "batched deliveries disabled"
    if sim.medium._record_deliveries:
        return "per-frame delivery recording requested"
    if sim.medium._fast_log_distance is None:
        return "path-loss model is not plain log-distance"
    if type(sim._mobility) not in (StaticMobility, RandomWalkMobility):
        return f"unsupported mobility model {type(sim._mobility).__name__}"
    if not sim.runtime.window_times:
        return "runtime has no in-window beacon ticks"
    return None


# --------------------------------------------------------------------- #
# marshalling                                                           #
# --------------------------------------------------------------------- #

# fparams/iparams slot order — must match the enums in _evcore.c.
_N_FPARAMS = 21
_N_IPARAMS = 8
_N_COUNTS = 7

#: Decision-kind codes emitted by the kernel, formatted here with the
#: exact f-strings of :class:`~repro.manet.aedb.AEDBProtocol`.
_DECISION_SOURCE = 0
_DECISION_DROP_FIRST = 1
_DECISION_ARM = 2
_DECISION_DROP_TIMER = 3
_DECISION_FORWARD = 4


def _runtime_pack(runtime, n_nodes: int):
    """Per-runtime marshalling constants, built once and cached.

    The raw uniform stream and the window snapshot tuples never change
    for a given runtime, and the two scratch vectors are the kernel's
    bridge into numpy's own ``log10``/``power`` ufuncs — reusing them
    across runs keeps the per-evaluation marshalling cost to a handful
    of small array constructions.
    """
    pack = getattr(runtime, "_evcore_pack", None)
    if pack is None:
        window_times = np.asarray(runtime.window_times, dtype=np.float64)
        snaps = [runtime.table_snapshot(t) for t in runtime.window_times]
        pack = {
            "doubles": np.asarray(runtime.protocol_doubles, dtype=np.float64),
            "window_times": window_times,
            "win_rx": tuple(s[0] for s in snaps),
            "win_seen": tuple(s[1] for s in snaps),
            "scratch_a": np.empty(n_nodes),
            "scratch_b": np.empty(n_nodes),
        }
        runtime._evcore_pack = pack
    return pack


def execute_compiled_run(sim: "BroadcastSimulator") -> None:
    """Run the broadcast window through the kernel and write back.

    Preconditions (:func:`precondition_blocker`) and the warm beacon
    replay must already have happened; on return the simulator holds
    the same end-of-run state — protocol arrays, decision log, RNG
    cursor, frame history, medium counters, neighbour tables, queue
    clock/pending set — as a pure-Python ``run()`` would leave.
    """
    from repro.manet.aedb import AEDBNodeState
    from repro.manet.medium import Frame
    from repro.manet.mobility import RandomWalkMobility

    ext = _resolve_extension()[0]
    assert ext is not None, "execute_compiled_run without a usable extension"

    runtime = sim.runtime
    scenario = sim.scenario
    cfg = sim._sim
    radio = cfg.radio
    medium = sim.medium
    protocol = sim.protocol
    tables = sim.tables
    mobility = sim._mobility
    n = scenario.n_nodes
    rng = protocol._rng

    pack = _runtime_pack(runtime, n)
    window_times = pack["window_times"]
    W = len(window_times)
    ref_d, ref_loss, scale = medium._fast_log_distance

    if type(mobility) is RandomWalkMobility:
        mob_mode = 1
        n_epochs = int(mobility._n_epochs)
        epoch_s = float(mobility._epoch_s)
        fold_one = 1 if mobility._fold_is_one_period else 0
        static_pos = None
        walk_starts = mobility._starts
        walk_vel = mobility._vel
        walk_neg = mobility._epoch_has_negative
    else:  # StaticMobility (precondition-checked)
        mob_mode = 0
        n_epochs = 1
        epoch_s = 1.0
        fold_one = 0
        static_pos = mobility._pos
        walk_starts = walk_vel = walk_neg = None

    fparams = np.array(
        [
            cfg.warmup_s,
            cfg.horizon_s,
            medium._airtime_s,
            medium._detection_dbm,
            medium._capture_lin,
            medium._min_tx,
            medium._max_tx,
            float(radio.default_tx_power_dbm),
            ref_d,
            ref_loss,
            scale,
            protocol._border_dbm,
            protocol._delay_lo,
            protocol._delay_hi,
            protocol._neighbors_threshold,
            protocol._margin_db,
            protocol._required_dbm,
            protocol._mac_jitter_s,
            float(cfg.neighbor_expiry_s),
            epoch_s,
            float(mobility.area_side_m),
        ],
        dtype=np.float64,
    )
    assert fparams.size == _N_FPARAMS
    iparams = np.array(
        [
            n,
            scenario.source,
            W,
            1 if protocol._record_decisions else 0,
            mob_mode,
            n_epochs,
            fold_one,
            rng._i,
        ],
        dtype=np.int64,
    )
    assert iparams.size == _N_IPARAMS

    frame_out = np.empty((4, n))
    timer_deadline = np.full(n, np.nan)
    decisions_out = np.empty((2 * n + 1, 4))
    counts = np.zeros(_N_COUNTS, dtype=np.int64)

    energy = ext.run_window(
        fparams,
        iparams,
        pack["doubles"],
        tables.rx_power,
        tables.last_seen,
        window_times,
        pack["win_rx"],
        pack["win_seen"],
        static_pos,
        walk_starts,
        walk_vel,
        walk_neg,
        pack["scratch_a"],
        pack["scratch_b"],
        np.log10,
        np.power,
        protocol.first_rx_time,
        protocol.strongest_copy_dbm,
        protocol._state_code,
        protocol._heard_from,
        frame_out,
        timer_deadline,
        decisions_out,
        counts,
    )

    fired, n_frames, n_resolved, draws, b_vec, b_scal, n_dec = counts.tolist()

    # -- protocol ----------------------------------------------------- #
    rng._i += draws
    protocol.batch_frames_vector += b_vec
    protocol.batch_frames_scalar += b_scal
    states_by_code = (
        AEDBNodeState.IDLE,
        AEDBNodeState.WAITING,
        AEDBNodeState.DROPPED,
        AEDBNodeState.FORWARDED,
    )
    state = protocol.state
    n_idle = n_waiting = 0
    for node, code in enumerate(protocol._state_code.tolist()):
        state[node] = states_by_code[code]
        if code == 0:
            n_idle += 1
        elif code == 1:
            n_waiting += 1
    protocol._n_idle = n_idle
    protocol._n_waiting = n_waiting

    if protocol._record_decisions and n_dec:
        append = protocol.decisions.append
        for t, node_f, kind_f, value in decisions_out[:n_dec].tolist():
            kind = int(kind_f)
            if kind == _DECISION_ARM:
                label = f"arm:{value:.4f}"
            elif kind == _DECISION_FORWARD:
                label = f"forward:{value:.2f}dBm"
            elif kind == _DECISION_SOURCE:
                label = "source"
            elif kind == _DECISION_DROP_FIRST:
                label = "drop:border-first"
            else:
                label = "drop:border-timer"
            append((t, int(node_f), label))

    # -- medium ------------------------------------------------------- #
    airtime = medium._airtime_s
    senders = frame_out[0, :n_frames].tolist()
    powers = frame_out[1, :n_frames].tolist()
    starts = frame_out[2, :n_frames].tolist()
    flags = frame_out[3, :n_frames].tolist()
    frames = [
        Frame(
            sender=int(senders[i]),
            tx_power_dbm=powers[i],
            start_s=starts[i],
            end_s=starts[i] + airtime,
            seq=i,
        )
        for i in range(n_frames)
    ]
    medium.history.extend(frames)
    medium._active = [f for f, flag in zip(frames, flags) if flag == 1.0]
    medium._recent = [f for f, flag in zip(frames, flags) if flag == 2.0]
    medium._seq = n_frames
    medium._n_frames = n_frames
    medium._n_resolved = n_resolved
    medium._energy_dbm = energy

    # -- neighbour tables --------------------------------------------- #
    # The kernel consumed the window snapshots read-only; replaying the
    # canonical rounds through the live tables is W O(1) snapshot swaps
    # that land rounds_run, the live-index tick, and the current-view
    # arrays exactly where the pure event loop leaves them.
    for t in runtime.window_times:
        tables.beacon_round(t)

    # -- event queue --------------------------------------------------- #
    # Rebuild the pending set the pure run leaves behind: in-flight
    # frame resolutions and armed timers past the horizon.  (Timers are
    # re-armed through the real scheduler so cancellation handles work.)
    queue = sim.queue
    for f in medium._active:
        queue.post(f.end_s, lambda t, fr=f: medium._resolve(fr, t))
    timers = protocol._timers
    for node in np.flatnonzero(protocol._state_code == 1).tolist():
        timers[node] = queue.schedule(
            float(timer_deadline[node]),
            lambda t, nd=node: protocol._on_timer(nd, t),
        )
    try:
        queue._fired = fired
        queue._now = cfg.horizon_s
    except AttributeError:  # compiled queue: settable properties
        queue.fired = fired
        queue.now = cfg.horizon_s
