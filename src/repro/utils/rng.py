"""Deterministic random-number management.

Everything stochastic in this repository — network topologies, mobility
traces, protocol delays, search operators — draws from
:class:`numpy.random.Generator` instances fanned out from a single master
seed through :class:`numpy.random.SeedSequence`.  This gives three
properties the experiments rely on:

* **Reproducibility**: a campaign is fully determined by one integer seed.
* **Independence**: sibling generators (e.g. the 10 evaluation networks,
  or the T local-search threads) are statistically independent streams.
* **Stability under parallelism**: each worker derives its own stream from
  a (master, key) pair, so results do not depend on scheduling order.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators", "RngFactory"]


def as_generator(
    seed: int | np.random.Generator | np.random.SeedSequence | None,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged so
    callers can thread one stream through a call chain).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.SeedSequence | None, n: int
) -> list[np.random.Generator]:
    """Create ``n`` independent generators from one master seed.

    Uses ``SeedSequence.spawn`` so the streams are provably independent
    regardless of how many numbers each consumer draws.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


class RngFactory:
    """Hierarchical, *keyed* generator factory.

    A campaign creates one factory from the master seed; components then
    request named streams (``factory.generator("networks", density=300)``).
    Identical key tuples always produce identical streams, independent of
    request order — the property that makes multi-process runs agree with
    serial ones.

    Keys are hashed into the entropy pool of a child ``SeedSequence``; any
    hashable, ``repr``-stable values may be used as key parts.
    """

    def __init__(self, master_seed: int | None = 0xAEDB):
        self._master = 0 if master_seed is None else int(master_seed)

    @property
    def master_seed(self) -> int:
        """The integer master seed this factory was built from."""
        return self._master

    def _entropy_for(self, key_parts: Sequence[object]) -> list[int]:
        # Stable, platform-independent mapping of the key to integers:
        # hash the repr bytes with a simple FNV-1a so we do not depend on
        # PYTHONHASHSEED.
        out: list[int] = [self._master & 0xFFFFFFFF]
        for part in key_parts:
            data = repr(part).encode("utf-8")
            acc = 0xCBF29CE484222325
            for byte in data:
                acc ^= byte
                acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            out.append(acc & 0xFFFFFFFF)
            out.append((acc >> 32) & 0xFFFFFFFF)
        return out

    def seed_sequence(self, *key_parts: object) -> np.random.SeedSequence:
        """A ``SeedSequence`` deterministically derived from the key."""
        return np.random.SeedSequence(self._entropy_for(key_parts))

    def generator(self, *key_parts: object) -> np.random.Generator:
        """A ``Generator`` deterministically derived from the key."""
        return np.random.default_rng(self.seed_sequence(*key_parts))

    def generators(self, n: int, *key_parts: object) -> list[np.random.Generator]:
        """``n`` sibling generators under the given key."""
        return [
            np.random.default_rng(s)
            for s in self.seed_sequence(*key_parts).spawn(n)
        ]

    def child(self, *key_parts: object) -> "RngFactory":
        """A sub-factory whose streams are namespaced under ``key_parts``."""
        # Derive a 32-bit child master seed from the keyed sequence.
        child_seed = int(self.seed_sequence(*key_parts).generate_state(1)[0])
        return RngFactory(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngFactory(master_seed={self._master:#x})"


def interleave_choices(
    rng: np.random.Generator, pools: Iterable[Sequence[object]]
) -> list[object]:
    """Pick one element from each pool (used by tests to build mixed keys)."""
    return [pool[int(rng.integers(len(pool)))] for pool in pools if len(pool)]
