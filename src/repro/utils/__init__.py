"""Shared low-level utilities: deterministic RNG fan-out, radio unit
conversions, and argument-validation helpers.

These modules are dependency-free (NumPy only) and used by every other
subpackage; nothing here knows about MANETs or optimisation.
"""

from repro.utils.jsonl import ensure_line_boundary
from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.units import (
    DBM_MINUS_INF,
    dbm_sum,
    dbm_to_mw,
    mw_to_dbm,
)
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_probability,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "DBM_MINUS_INF",
    "dbm_sum",
    "dbm_to_mw",
    "mw_to_dbm",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_probability",
    "ensure_line_boundary",
]
