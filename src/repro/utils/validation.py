"""Small argument-validation helpers with consistent error messages.

Public constructors across the package use these so configuration mistakes
fail fast with an actionable message instead of surfacing as NaNs deep in a
simulation.
"""

from __future__ import annotations

import math

__all__ = [
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_finite",
]


def check_finite(value: float, name: str) -> float:
    """Require a finite real number; return it as ``float``."""
    val = float(value)
    if not math.isfinite(val):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return val


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Require ``value`` > 0 (or >= 0 when ``strict`` is False)."""
    val = check_finite(value, name)
    if strict and val <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and val < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return val


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Require ``low <= value <= high`` (strict bounds when not inclusive)."""
    val = check_finite(value, name)
    if inclusive:
        if not (low <= val <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < val < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return val


def check_probability(value: float, name: str) -> float:
    """Require ``value`` in [0, 1]."""
    return check_in_range(value, name, 0.0, 1.0)
