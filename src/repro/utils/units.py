"""Radio power-unit conversions (dBm <-> mW) and dBm-domain arithmetic.

The AEDB literature (and ns3) quotes every power level in dBm; interference
sums must nevertheless happen in the linear (mW) domain.  These helpers keep
that conversion in one audited place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dbm_to_mw", "mw_to_dbm", "dbm_sum", "DBM_MINUS_INF"]

#: Sentinel for "no signal" in dBm-domain arrays.  Finite (so vectorised
#: arithmetic stays NaN-free) but far below any detection threshold.
DBM_MINUS_INF: float = -1.0e3


def dbm_to_mw(dbm):
    """Convert dBm to milliwatts.  Accepts scalars or arrays."""
    return np.power(10.0, np.asarray(dbm, dtype=float) / 10.0)


def mw_to_dbm(mw):
    """Convert milliwatts to dBm.  Accepts scalars or arrays.

    Non-positive powers map to :data:`DBM_MINUS_INF` rather than raising or
    producing ``-inf``, which keeps downstream comparisons well-defined.
    """
    mw_arr = np.asarray(mw, dtype=float)
    out = np.full(mw_arr.shape, DBM_MINUS_INF)
    positive = mw_arr > 0.0
    # np.log10 on the masked selection only, to avoid warnings on zeros.
    out[positive] = 10.0 * np.log10(mw_arr[positive])
    if np.isscalar(mw) or mw_arr.ndim == 0:
        return float(out) if mw_arr.ndim == 0 else float(out[()])
    return out


def dbm_sum(dbm_values) -> float:
    """Power-sum of dBm values (convert to mW, add, convert back).

    This is the physically correct way to aggregate interference from
    multiple concurrent transmitters; it is *not* what the paper's "energy"
    objective does (that objective adds raw dBm figures — see
    ``repro.manet.metrics``).
    """
    arr = np.asarray(dbm_values, dtype=float)
    if arr.size == 0:
        return DBM_MINUS_INF
    total_mw = float(np.sum(dbm_to_mw(arr)))
    return mw_to_dbm(total_mw)
