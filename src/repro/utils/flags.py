"""Central registry for every ``REPRO_*`` environment flag.

Every behaviour toggle in this repo crosses process boundaries as an
environment variable (``fork``/``spawn`` workers, remote shard bundles,
the campaign daemon all inherit it for free), which means a typo'd name
fails silently: ``os.environ.get("REPRO_TELEMTRY")`` is just ``None``.
This module closes that hole the same way the telemetry layer closed
the counter-naming hole — one registry, consulted at read time, with a
static-analysis rule (``repro-lint`` E301/E302, DESIGN.md §16) that
forbids raw ``os.environ`` reads of ``REPRO_*`` names anywhere else.

Contract (shared by every reader in ``src/``):

* **Reads are per call, never cached at import** — campaign workers
  honour the parent's environment and tests flip flags with
  ``monkeypatch.setenv``.  Modules that deliberately sample a flag once
  at import (the memoisation kill-switches) document that in the
  registry entry's ``doc``.
* **Unregistered reads raise** ``UnknownFlagError`` — the registry is
  the single source of truth for name, accepted values, default, and
  the DESIGN.md anchor documenting the semantics.
* The README flag table is *generated* from this registry
  (:func:`registry_table_markdown`); ``tests/test_docs.py`` asserts the
  two never drift.

Build-time flags (``scope="build"``) are read by ``setup.py`` / CI
before this package is importable; they are registered here purely so
the documentation table and the lint's known-name set stay complete.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Flag",
    "UnknownFlagError",
    "all_flags",
    "get_flag",
    "is_registered",
    "read_bool",
    "read_float",
    "read_raw",
    "register",
    "registry_table_markdown",
]


class UnknownFlagError(KeyError):
    """A ``REPRO_*`` name that no code path registered.

    Raised at *read* time: the registry cannot know a flag the caller
    invented, and silently returning ``None`` would reintroduce exactly
    the typo class this module exists to kill.
    """


@dataclass(frozen=True)
class Flag:
    """One registered environment flag.

    ``values`` is the accepted-value summary shown in docs (free-form
    for specs/paths); ``default`` is the *effective* default the reader
    applies, rendered verbatim in the README table; ``anchor`` points at
    the DESIGN.md (or README) section that owns the semantics.
    """

    name: str
    values: str
    default: str
    doc: str
    anchor: str
    scope: str = "runtime"  # "runtime" | "build"

    def read(self) -> str | None:
        """Raw per-call environment read (``None`` when unset)."""
        return os.environ.get(self.name)


_REGISTRY: dict[str, Flag] = {}


def register(
    name: str,
    *,
    values: str,
    default: str,
    doc: str,
    anchor: str,
    scope: str = "runtime",
) -> Flag:
    """Register ``name`` (idempotent for identical re-registration)."""
    if not name.startswith("REPRO_"):
        raise ValueError(f"flag names must start with REPRO_, got {name!r}")
    flag = Flag(name, values, default, doc, anchor, scope)
    existing = _REGISTRY.get(name)
    if existing is not None and existing != flag:
        raise ValueError(f"conflicting re-registration of {name}")
    _REGISTRY[name] = flag
    return flag


def get_flag(name: str) -> Flag:
    """The registered :class:`Flag`, or :class:`UnknownFlagError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownFlagError(
            f"{name} is not a registered REPRO_* flag; add it to "
            "repro/utils/flags.py (see DESIGN.md §16)"
        ) from None


def is_registered(name: str) -> bool:
    """Whether ``name`` is in the registry (no read performed)."""
    return name in _REGISTRY


def all_flags() -> Iterator[Flag]:
    """Registered flags in definition order (stable: dicts preserve it)."""
    return iter(_REGISTRY.values())


def read_raw(name: str) -> str | None:
    """Per-call environment read of a *registered* flag (else raises)."""
    return get_flag(name).read()


def read_bool(name: str) -> bool:
    """The repo-wide kill-switch convention: only ``"0"`` disables.

    Every boolean flag here defaults on and is turned off with ``=0``
    (``REPRO_SHARED_RUNTIME=0`` etc.); any other value — including the
    empty string — leaves the feature enabled, matching the historical
    readers byte for byte.
    """
    flag = get_flag(name)
    raw = flag.read()
    if raw is None:
        raw = flag.default
    return raw != "0"


def read_float(name: str, fallback: float) -> float:
    """Float read with the registry default, tolerating junk values."""
    raw = read_raw(name)
    if raw is None:
        raw = get_flag(name).default
    try:
        return float(raw)
    except ValueError:
        return fallback


def registry_table_markdown() -> str:
    """The README flag table, generated (one row per registered flag)."""
    rows = [
        "| Flag | Values | Default | What it controls |",
        "| --- | --- | --- | --- |",
    ]
    for flag in all_flags():
        doc = flag.doc
        if flag.scope == "build":
            doc = f"{doc} *(build-time)*"
        rows.append(
            f"| `{flag.name}` | {flag.values} | `{flag.default}` "
            f"| {doc} ([{flag.anchor}]) |"
        )
    return "\n".join(rows)


# --------------------------------------------------------------------- #
# The registry.  Order = README table order: simulation semantics first,
# then observation, then failure handling, then build-time knobs.
# --------------------------------------------------------------------- #

register(
    "REPRO_SCALE",
    values="`quick` \\| `medium` \\| `paper`",
    default="quick",
    doc="Experiment scale preset (grid sizes, seed counts, budgets)",
    anchor="README.md — The command line",
)
register(
    "REPRO_COMPILED",
    values="`auto` \\| `on` \\| `off`",
    default="auto",
    doc="Compiled event core selection; `on` raises without the extension",
    anchor="DESIGN.md §14",
)
register(
    "REPRO_BATCH_DELIVERIES",
    values="`0` disables",
    default="1",
    doc="Batched frame-delivery path (read at simulator construction)",
    anchor="DESIGN.md §11",
)
register(
    "REPRO_LIVE_INDEX",
    values="`0` disables",
    default="1",
    doc="Precomputed tick live-index for neighbour queries",
    anchor="DESIGN.md §11",
)
register(
    "REPRO_MOBILITY_MEMO",
    values="`0` disables",
    default="1",
    doc="Mobility-model memoisation (sampled once at import)",
    anchor="DESIGN.md §8",
)
register(
    "REPRO_RUNTIME_MEMO",
    values="`0` disables",
    default="1",
    doc="Per-process scenario-runtime LRU (sampled once at import)",
    anchor="DESIGN.md §8",
)
register(
    "REPRO_SHARED_RUNTIME",
    values="`0` disables",
    default="1",
    doc="Shared-memory runtime arena for campaign workers",
    anchor="DESIGN.md §9",
)
register(
    "REPRO_TELEMETRY",
    values="unset/`off` \\| `on` \\| `deep`",
    default="off",
    doc="Telemetry mode: off (null recorder), on, or deep counters",
    anchor="DESIGN.md §12",
)
register(
    "REPRO_HEARTBEAT_DIR",
    values="directory path",
    default="(unset)",
    doc="Worker heartbeat-file directory (exported by the pool driver)",
    anchor="DESIGN.md §13",
)
register(
    "REPRO_HEARTBEAT_INTERVAL",
    values="seconds (float)",
    default="1.0",
    doc="Worker heartbeat cadence under `REPRO_HEARTBEAT_DIR`",
    anchor="DESIGN.md §13",
)
register(
    "REPRO_FAULTS",
    values="fault spec string",
    default="(unset)",
    doc="Deterministic fault-injection plane (tests/chaos only)",
    anchor="DESIGN.md §13",
)
register(
    "REPRO_REQUIRE_COMPILED",
    values="`1` makes a failed build fatal",
    default="(unset)",
    doc="Hard-fail `setup.py build_ext` when the event core cannot build",
    anchor="DESIGN.md §14",
    scope="build",
)
register(
    "REPRO_SANITIZE",
    values="e.g. `address,undefined`",
    default="(unset)",
    doc="Build `_evcore` with `-fsanitize=<value>` for the CI sanitizer leg",
    anchor="DESIGN.md §16",
    scope="build",
)
