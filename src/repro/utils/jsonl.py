"""Append-safety for the repo's JSON Lines files.

Every JSONL file here (evaluation cache, telemetry stream, failure
ledger, heartbeat files) lives under one torn-tail contract: a process
killed mid-append leaves a final partial line, and every *reader*
skips unparseable lines instead of erroring.  That contract has an
append-side half too: a partial line has no trailing newline, so a
later writer that blindly appends would glue its first record onto the
junk — and lose it to the readers' skip rule.  :func:`ensure_line_boundary`
closes that hole: called before opening an append handle, it terminates
any torn tail so the junk stays an isolated (skipped) line and every
subsequent record starts at column zero.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["ensure_line_boundary"]


def ensure_line_boundary(path: str | Path) -> bool:
    """Make sure ``path`` ends on a line boundary before appending.

    If the file exists, is non-empty, and its last byte is not a
    newline (a predecessor crashed mid-append), append one ``\\n`` so
    the torn fragment becomes a complete — unparseable, hence skipped —
    line of its own.  Returns True iff a repair byte was written.
    Missing or clean files are left untouched.
    """
    path = Path(path)
    try:
        with path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return False
    except FileNotFoundError:
        return False
    except OSError:
        return False  # empty file: seek(-1) from its end is invalid
    with path.open("ab") as fh:
        fh.write(b"\n")
    return True
