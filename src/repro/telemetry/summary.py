"""Replay a ``telemetry.jsonl`` stream into aggregates and reports.

The read side of the telemetry layer (DESIGN.md §12): everything here
derives purely from the recorded lines — no simulation, no store access
— so ``repro-aedb campaign telemetry`` and the Prometheus export work
on a copy of the file, a merged shard aggregate, or a live campaign's
stream mid-run.

Parsing applies the repo-wide torn-tail contract
(:class:`~repro.campaigns.store.ResultStore`,
:class:`~repro.tuning.cache.PersistentEvaluationCache`): unparseable or
foreign-version lines are skipped and counted, never an error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.telemetry.recorder import LINE_VERSION

__all__ = ["SpanStat", "TelemetrySummary", "render_telemetry"]


@dataclass
class SpanStat:
    """Aggregate of every recorded span sharing one name."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s


@dataclass
class TelemetrySummary:
    """Counters, span statistics, and lifecycle events of one stream."""

    #: Counter totals by name (attribute combinations summed).
    counters: dict[str, int] = field(default_factory=dict)
    #: Span aggregates by name.
    spans: dict[str, SpanStat] = field(default_factory=dict)
    #: Last written value per ``(gauge name, attrs json)``.
    gauges: dict[str, float] = field(default_factory=dict)
    #: Lifecycle events in stream order: ``(t, name, attrs)``.
    events: list[tuple[float, str, dict]] = field(default_factory=list)
    #: Per-cell wall-clock: ``cell key -> seconds`` (``campaign.cell``
    #: spans; a resumed cell re-run accumulates).
    cell_seconds: dict[str, float] = field(default_factory=dict)
    #: Parsed / skipped line counts (torn tails, foreign versions).
    n_lines: int = 0
    n_skipped: int = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "TelemetrySummary":
        summary = cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            summary.n_lines += 1
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                summary.n_skipped += 1  # torn tail from a crash mid-append
                continue
            if not isinstance(obj, dict) or obj.get("v") != LINE_VERSION:
                summary.n_skipped += 1  # future/foreign format
                continue
            kind = obj.get("kind")
            name = obj.get("name")
            attrs = obj.get("attrs") or {}
            try:
                if kind == "count":
                    summary.counters[name] = (
                        summary.counters.get(name, 0) + int(obj["n"])
                    )
                elif kind == "span":
                    dur = float(obj["dur_s"])
                    summary.spans.setdefault(name, SpanStat()).add(dur)
                    if name == "campaign.cell" and "cell" in attrs:
                        key = str(attrs["cell"])
                        summary.cell_seconds[key] = (
                            summary.cell_seconds.get(key, 0.0) + dur
                        )
                elif kind == "event":
                    summary.events.append(
                        (float(obj.get("t", 0.0)), name, attrs)
                    )
                elif kind == "gauge":
                    gkey = name if not attrs else (
                        f"{name}{json.dumps(attrs, sort_keys=True)}"
                    )
                    summary.gauges[gkey] = float(obj["value"])
                elif kind == "fold":
                    # Merge-idempotence bookkeeping written by
                    # merge_telemetry_files — not an observation, not a
                    # torn line; pass over it silently.
                    pass
                else:
                    summary.n_skipped += 1
            except (KeyError, TypeError, ValueError):
                summary.n_skipped += 1
        return summary

    @classmethod
    def from_file(cls, path: str | Path) -> "TelemetrySummary":
        try:
            text = Path(path).read_text()
        except FileNotFoundError:
            return cls()
        return cls.from_lines(text.splitlines())

    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        return not (self.counters or self.spans or self.events or self.gauges)

    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def top_cells(self, n: int = 10) -> list[tuple[str, float]]:
        """The ``n`` slowest cells by accumulated wall-clock."""
        ranked = sorted(
            self.cell_seconds.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:n]

    def event_counts(self) -> dict[str, int]:
        """How many times each lifecycle event fired."""
        out: dict[str, int] = {}
        for _, name, _ in self.events:
            out[name] = out.get(name, 0) + 1
        return out


# --------------------------------------------------------------------- #
def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100.0:
        return f"{seconds:8.1f}s "
    if seconds >= 0.1:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1e3:8.2f}ms"


def render_telemetry(summary: TelemetrySummary, top: int = 10) -> str:
    """Plain-text timing/counter report (``campaign telemetry``)."""
    if summary.is_empty:
        return (
            "no telemetry recorded (run the campaign with "
            "REPRO_TELEMETRY=1 or REPRO_TELEMETRY=deep)"
        )
    lines = ["telemetry summary"]

    if summary.spans:
        lines.append("")
        lines.append(
            f"{'span':<24s} {'count':>8s} {'total':>10s} "
            f"{'mean':>10s} {'max':>10s}"
        )
        for name in sorted(
            summary.spans, key=lambda n: -summary.spans[n].total_s
        ):
            stat = summary.spans[name]
            lines.append(
                f"{name:<24s} {stat.count:>8d} {_fmt_seconds(stat.total_s)}"
                f" {_fmt_seconds(stat.mean_s)} {_fmt_seconds(stat.max_s)}"
            )

    if summary.counters:
        lines.append("")
        lines.append(f"{'counter':<40s} {'total':>14s}")
        for name in sorted(summary.counters):
            lines.append(f"{name:<40s} {summary.counters[name]:>14d}")

    if summary.gauges:
        lines.append("")
        lines.append(f"{'gauge':<40s} {'value':>14s}")
        for name in sorted(summary.gauges):
            lines.append(f"{name:<40s} {summary.gauges[name]:>14g}")

    event_counts = summary.event_counts()
    if event_counts:
        lines.append("")
        lines.append(f"{'event':<40s} {'fired':>8s}")
        for name in sorted(event_counts):
            lines.append(f"{name:<40s} {event_counts[name]:>8d}")

    cells = summary.top_cells(top)
    if cells:
        lines.append("")
        lines.append(f"top {len(cells)} slowest cells:")
        for key, seconds in cells:
            lines.append(f"  {_fmt_seconds(seconds)}  {key}")

    if summary.n_skipped:
        lines.append("")
        lines.append(
            f"({summary.n_skipped} of {summary.n_lines} lines skipped: "
            "torn tails or foreign versions)"
        )
    return "\n".join(lines)
