"""Prometheus text-format snapshot of a telemetry summary.

``repro-aedb campaign telemetry --export-prom`` renders the replayed
stream in the exposition format scrapers and pushgateways understand
(https://prometheus.io/docs/instrumenting/exposition_formats/) — the
``grafana_dict.py`` seam of the ROADMAP's results-service direction,
produced without re-running a single simulation.

Mapping:

* counter ``name`` → ``repro_<name>_total`` (``counter``);
* span ``name``    → ``repro_span_seconds_count|sum|max{span="name"}``
  (``summary``-style aggregate; max as a separate ``gauge``);
* gauge ``name``   → ``repro_<name>`` (``gauge``).

Metric names are sanitised to ``[a-zA-Z0-9_]`` (dots become
underscores).  Counter values render as integers — Prometheus floats
hold exact integers up to 2**53; larger values lose precision on the
scraper side, never here.
"""

from __future__ import annotations

import re

from repro.telemetry.summary import TelemetrySummary

__all__ = ["to_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    clean = _NAME_RE.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return f"repro_{clean}"


def _fmt_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 2**63:
        return str(int(value))
    return repr(float(value))


def to_prometheus(summary: TelemetrySummary) -> str:
    """The summary as Prometheus text exposition format (one snapshot)."""
    lines: list[str] = []

    for name in sorted(summary.counters):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt_value(summary.counters[name])}")

    if summary.spans:
        lines.append("# TYPE repro_span_seconds summary")
        for name in sorted(summary.spans):
            stat = summary.spans[name]
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_span_seconds_count{{span="{label}"}} {stat.count}'
            )
            lines.append(
                f'repro_span_seconds_sum{{span="{label}"}} {stat.total_s!r}'
            )
        lines.append("# TYPE repro_span_seconds_max gauge")
        for name in sorted(summary.spans):
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_span_seconds_max{{span="{label}"}} '
                f"{summary.spans[name].max_s!r}"
            )

    for name in sorted(summary.gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt_value(summary.gauges[name])}")

    return "\n".join(lines) + ("\n" if lines else "")
