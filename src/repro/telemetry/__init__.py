"""Campaign-wide telemetry: spans, counters, and heartbeat streams.

The instrumentation subsystem (DESIGN.md §12).  One :class:`Recorder`
protocol, three sinks — :class:`NullRecorder` (the default, near-zero
overhead), :class:`MemoryRecorder` (in-process), :class:`JsonlRecorder`
(streams ``telemetry.jsonl`` next to a campaign store) — switched by
the ``REPRO_TELEMETRY`` environment variable (off | on | deep).

Write side: the campaign executor, backends, evaluators, the persistent
evaluation cache, and the simulator call :func:`get_recorder` at coarse
boundaries.  Read side: :class:`TelemetrySummary` replays a recorded
stream into counter totals, span statistics, and the per-cell timing
behind ``repro-aedb campaign telemetry``; :func:`to_prometheus` renders
the same summary as a Prometheus text-format snapshot.

The hard invariant: telemetry observes, never perturbs — campaign
stores are byte-identical with telemetry off, on, and deep
(``tests/telemetry/test_bit_identity.py``).
"""

from repro.telemetry.prom import to_prometheus
from repro.telemetry.recorder import (
    MODE_DEEP,
    MODE_OFF,
    MODE_ON,
    NULL,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    Recorder,
    deep_telemetry_enabled,
    get_recorder,
    merge_telemetry_files,
    telemetry_enabled,
    telemetry_mode,
    using,
)
from repro.telemetry.summary import (
    SpanStat,
    TelemetrySummary,
    render_telemetry,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "MemoryRecorder",
    "JsonlRecorder",
    "NULL",
    "telemetry_mode",
    "telemetry_enabled",
    "deep_telemetry_enabled",
    "get_recorder",
    "using",
    "merge_telemetry_files",
    "SpanStat",
    "TelemetrySummary",
    "render_telemetry",
    "to_prometheus",
    "MODE_OFF",
    "MODE_ON",
    "MODE_DEEP",
]
