"""Recorder core: the telemetry seam every subsystem writes into.

Three implementations of one :class:`Recorder` protocol (DESIGN.md §12):

* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``span()`` returns one shared, reusable context manager, so an
  instrumented hot path with telemetry off costs a handful of attribute
  lookups per *coarse* operation (per simulation, per cell — never per
  event) and allocates nothing.  The fine-grained counters are not even
  that cheap to skip, so they additionally hide behind a boolean
  captured at construction (:func:`deep_telemetry_enabled`).
* :class:`MemoryRecorder` — in-process accumulation (bounded), the
  ambient sink when ``REPRO_TELEMETRY`` is set but nobody installed a
  file-backed recorder (e.g. pool workers), and the unit-test probe.
* :class:`JsonlRecorder` — streams ``telemetry.jsonl`` next to a
  campaign's :class:`~repro.campaigns.store.ResultStore`.  Events and
  spans are appended (and flushed) as whole lines the moment they
  happen — the heartbeat stream a dashboard or lease manager can tail —
  while counters accumulate in memory and flush as *delta* lines, so a
  per-lookup cache counter never costs a write.

The mode switch is the ``REPRO_TELEMETRY`` environment variable: unset
/ ``0`` / ``off`` — disabled; ``1`` / ``on`` / ``jsonl`` — spans,
counters, lifecycle events; ``deep`` — additionally the per-frame /
per-event counters inside the simulator warm loop.  Telemetry must
never perturb results: recorders only *observe* (wall-clock reads, no
RNG, no ordering influence), and the golden bit-identity harness pins
campaign stores byte-identical with telemetry off, on, and deep
(``tests/telemetry/test_bit_identity.py``).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterable, Iterator, Protocol, runtime_checkable

from repro.utils import flags
from repro.utils.jsonl import ensure_line_boundary

__all__ = [
    "Recorder",
    "NullRecorder",
    "MemoryRecorder",
    "JsonlRecorder",
    "NULL",
    "telemetry_mode",
    "telemetry_enabled",
    "deep_telemetry_enabled",
    "get_recorder",
    "using",
    "merge_telemetry_files",
    "MODE_OFF",
    "MODE_ON",
    "MODE_DEEP",
]

#: Per-line format version (summary readers skip foreign versions).
LINE_VERSION = 1

MODE_OFF = "off"
MODE_ON = "on"
MODE_DEEP = "deep"

_OFF_VALUES = frozenset(("", "0", "off", "none", "false", "no"))


def telemetry_mode() -> str:
    """``"off"`` | ``"on"`` | ``"deep"`` from ``REPRO_TELEMETRY``.

    Read per call (not cached at import), so campaign workers honour the
    parent's environment and tests can flip modes with ``monkeypatch`` —
    the same contract as ``batched_deliveries_enabled``.  Any value that
    is not off-like or ``deep`` (``1``, ``on``, ``jsonl``, ...) means on.
    """
    raw = (flags.read_raw("REPRO_TELEMETRY") or "").strip().lower()
    if raw in _OFF_VALUES:
        return MODE_OFF
    if raw == MODE_DEEP:
        return MODE_DEEP
    return MODE_ON


def telemetry_enabled() -> bool:
    """True when any telemetry mode is active."""
    return telemetry_mode() != MODE_OFF


def deep_telemetry_enabled() -> bool:
    """True only under ``REPRO_TELEMETRY=deep`` (fine-grained counters).

    Consumers on the warm path capture this once at construction and
    branch on the plain boolean, so the off path pays one ``if`` per
    coarse operation and nothing per event.
    """
    return telemetry_mode() == MODE_DEEP


# --------------------------------------------------------------------- #
@runtime_checkable
class Recorder(Protocol):
    """One telemetry sink: spans, counters, gauges, structured events."""

    def span(self, name: str, **attrs):
        """Context manager timing one operation (recorded on exit)."""
        ...  # pragma: no cover - protocol

    def record_span(self, name: str, duration_s: float, **attrs) -> None:
        """Record an already-measured duration (manual span)."""
        ...  # pragma: no cover - protocol

    def count(self, name: str, n: int = 1, **attrs) -> None:
        """Increment a monotonic counter."""
        ...  # pragma: no cover - protocol

    def gauge(self, name: str, value: float, **attrs) -> None:
        """Record a point-in-time measurement (last write wins)."""
        ...  # pragma: no cover - protocol

    def event(self, name: str, **attrs) -> None:
        """Emit one structured lifecycle event (heartbeat stream)."""
        ...  # pragma: no cover - protocol

    def flush(self) -> None:
        """Push buffered state (counter deltas) to the sink."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Flush and release the sink (idempotent)."""
        ...  # pragma: no cover - protocol


class _NullSpan:
    """The shared no-op span — one instance, re-entered freely."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default: every operation is a no-op."""

    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, duration_s: float, **attrs) -> None:
        return None

    def count(self, name: str, n: int = 1, **attrs) -> None:
        return None

    def gauge(self, name: str, value: float, **attrs) -> None:
        return None

    def event(self, name: str, **attrs) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


#: The process-wide null sink (recorders are stateless; share one).
NULL = NullRecorder()


class _Span:
    """Timing context manager for the live recorders.

    Single-use (each ``span()`` call allocates one), records on exit
    even when the body raises — a failed cell still reports how long it
    ran before failing.
    """

    __slots__ = ("_recorder", "_name", "_attrs", "_start")

    def __init__(self, recorder: "Recorder", name: str, attrs: dict):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._recorder.record_span(
            self._name, time.perf_counter() - self._start, **self._attrs
        )


def _attrs_key(attrs: dict) -> tuple:
    """Hashable identity of an attribute set (sorted, insertion-free)."""
    return tuple(sorted(attrs.items()))


class MemoryRecorder:
    """In-process accumulation: counters, span stats, recent events.

    Bounded: at most ``max_records`` spans and events are kept (drops
    are counted in ``dropped``), so a long-lived ambient recorder — a
    pool worker that never ships its telemetry anywhere — cannot grow
    without limit.  Thread-safe (AEDB-MLS evaluates from threads).
    """

    def __init__(self, max_records: int = 100_000):
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.max_records = int(max_records)
        self._lock = threading.Lock()
        #: ``(name, attrs_key) -> int``
        self.counters: dict[tuple, int] = {}
        #: ``(name, attrs_key) -> float`` (last write wins)
        self.gauges: dict[tuple, float] = {}
        #: ``(name, duration_s, attrs)`` in completion order.
        self.spans: list[tuple[str, float, dict]] = []
        #: ``{"name": ..., "t": ..., **attrs}`` in emission order.
        self.events: list[dict] = []
        self.dropped = 0

    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def record_span(self, name: str, duration_s: float, **attrs) -> None:
        with self._lock:
            if len(self.spans) >= self.max_records:
                self.dropped += 1
                return
            self.spans.append((name, float(duration_s), attrs))

    def count(self, name: str, n: int = 1, **attrs) -> None:
        key = (name, _attrs_key(attrs))
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + int(n)

    def gauge(self, name: str, value: float, **attrs) -> None:
        with self._lock:
            self.gauges[(name, _attrs_key(attrs))] = float(value)

    def event(self, name: str, **attrs) -> None:
        with self._lock:
            if len(self.events) >= self.max_records:
                self.dropped += 1
                return
            self.events.append({"name": name, "t": time.time(), **attrs})

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None

    # ------------------------------------------------------------------ #
    def counter_total(self, name: str) -> int:
        """Sum of one counter over every attribute combination."""
        with self._lock:
            return sum(
                v for (n, _), v in self.counters.items() if n == name
            )

    def clear(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.spans.clear()
            self.events.clear()
            self.dropped = 0


class JsonlRecorder:
    """Streams telemetry as JSON Lines next to a campaign store.

    Line shapes (all carry ``"v": 1`` and merge-friendly ``attrs``)::

        {"v":1,"kind":"event","name":...,"t":<unix>,"attrs":{...}}
        {"v":1,"kind":"span","name":...,"dur_s":...,"t":...,"attrs":{...}}
        {"v":1,"kind":"count","name":...,"n":<delta>,"attrs":{...}}
        {"v":1,"kind":"gauge","name":...,"value":...,"t":...,"attrs":{...}}

    Events, spans, and gauges are written (and flushed) immediately —
    whole lines, so a tailing consumer sees a live heartbeat and a crash
    tears at most the line in flight, which every reader skips
    (:mod:`repro.telemetry.summary` applies the store's torn-tail
    contract).  Counter increments accumulate in memory and are written
    as **delta** lines by :meth:`flush` — appending two recorders' files
    therefore sums their counters, which is exactly what the shard-merge
    path needs.

    ``base_attrs`` are merged under every line's attrs (per-call attrs
    win) — how shard workers tag their whole stream with a shard index.
    The file contract is single-writer-per-handle appends of whole
    flushed lines, so a parent may fold a finished shard's file into its
    own with :func:`merge_telemetry_files` while its own handle is open.
    """

    def __init__(self, path: str | Path, base_attrs: dict | None = None):
        self.path = Path(path)
        self.base_attrs = dict(base_attrs or {})
        self._lock = threading.Lock()
        self._writer: IO[str] | None = None
        self._pending_counts: dict[tuple, int] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    def _merged(self, attrs: dict) -> dict:
        if not self.base_attrs:
            return attrs
        return {**self.base_attrs, **attrs}

    def _write_line(self, obj: dict) -> None:
        """Append one whole line and flush (caller holds the lock)."""
        if self._closed:
            return
        if self._writer is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            ensure_line_boundary(self.path)
            self._writer = self.path.open("a", encoding="utf-8")
        self._writer.write(
            json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._writer.flush()

    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def record_span(self, name: str, duration_s: float, **attrs) -> None:
        with self._lock:
            self._write_line({
                "v": LINE_VERSION,
                "kind": "span",
                "name": name,
                "dur_s": float(duration_s),
                "t": time.time(),
                "attrs": self._merged(attrs),
            })

    def count(self, name: str, n: int = 1, **attrs) -> None:
        key = (name, _attrs_key(self._merged(attrs)))
        with self._lock:
            self._pending_counts[key] = self._pending_counts.get(key, 0) + int(n)

    def gauge(self, name: str, value: float, **attrs) -> None:
        with self._lock:
            self._write_line({
                "v": LINE_VERSION,
                "kind": "gauge",
                "name": name,
                "value": float(value),
                "t": time.time(),
                "attrs": self._merged(attrs),
            })

    def event(self, name: str, **attrs) -> None:
        with self._lock:
            self._write_line({
                "v": LINE_VERSION,
                "kind": "event",
                "name": name,
                "t": time.time(),
                "attrs": self._merged(attrs),
            })

    def flush(self) -> None:
        """Write buffered counter deltas (zero deltas are skipped)."""
        with self._lock:
            pending, self._pending_counts = self._pending_counts, {}
            for (name, attrs_key), delta in pending.items():
                if delta == 0:
                    continue
                self._write_line({
                    "v": LINE_VERSION,
                    "kind": "count",
                    "name": name,
                    "n": delta,
                    "attrs": dict(attrs_key),
                })

    def close(self) -> None:
        self.flush()
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None
            self._closed = True

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Process-wide recorder registry.
_active: Recorder | None = None
_active_lock = threading.Lock()
_ambient: MemoryRecorder | None = None


def _ambient_recorder() -> MemoryRecorder:
    global _ambient
    if _ambient is None:
        with _active_lock:
            if _ambient is None:
                _ambient = MemoryRecorder()
    return _ambient


def get_recorder() -> Recorder:
    """The recorder instrumentation points write to.

    Resolution order: the recorder installed by :func:`using` (a
    campaign run installs its store's :class:`JsonlRecorder` here), else
    :data:`NULL` when telemetry is off, else a process-global
    :class:`MemoryRecorder` — so library callers with ``REPRO_TELEMETRY``
    set but no campaign store still accumulate inspectable counters.
    """
    if _active is not None:
        return _active
    if telemetry_mode() == MODE_OFF:
        return NULL
    return _ambient_recorder()


@contextmanager
def using(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the process default for the block.

    Re-entrant in the dynamic-scoping sense (the previous recorder is
    restored on exit); not meant for concurrent installs from multiple
    threads — campaign runs own the process.
    """
    global _active
    previous = _active
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous


# --------------------------------------------------------------------- #
def _parseable_lines(path: Path) -> Iterable[str]:
    try:
        text = path.read_text()
    except FileNotFoundError:
        return []
    out = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from a crash mid-append
        out.append(line)
    return out


def _fold_progress(dest: Path, source_id: str) -> int:
    """Parseable source lines already folded into ``dest`` for this id.

    Fold-marker lines (``kind="fold"``) record the cumulative count; the
    highest wins (markers are whole flushed lines, so a torn marker is
    simply skipped and the fold re-appends at worst its own batch).
    """
    best = 0
    for line in _parseable_lines(dest):
        obj = json.loads(line)
        if (
            isinstance(obj, dict)
            and obj.get("kind") == "fold"
            and obj.get("id") == source_id
        ):
            try:
                best = max(best, int(obj.get("n", 0)))
            except (TypeError, ValueError):
                continue
    return best


def merge_telemetry_files(
    dest: str | Path, src: str | Path, source_id: str | None = None
) -> int:
    """Append ``src``'s parseable telemetry lines to ``dest``.

    The shard backend's aggregation step: a finished shard store's
    ``telemetry.jsonl`` folds into the parent campaign's.  Line-level
    append of whole flushed lines through a private handle (the same
    safety argument as ``ResultStore.merge_eval_files``), torn tails
    skipped.

    Telemetry entries are *not* content-keyed (counter lines are
    deltas), so a naive re-merge double-counts.  Passing ``source_id``
    (the shard backends use the shard's content key) makes the fold
    **idempotent and incremental per source**: after appending, a
    ``{"kind": "fold", "id": ..., "n": <cumulative lines>}`` marker line
    is written to ``dest``, and a later fold of the same source skips
    the already-folded prefix — re-folding an unchanged file is a no-op,
    re-folding a *grown* one (a resumed shard that appended) folds only
    the tail.  Markers are invisible to every reader
    (:class:`~repro.telemetry.summary.TelemetrySummary` passes over the
    ``fold`` kind) and are never copied between files.  Without
    ``source_id`` the merge stays plainly additive (callers that fold a
    file exactly once, like the heartbeat monitor's per-run scratch
    directory).  Returns the number of lines appended.
    """
    src_lines = [
        line
        for line in _parseable_lines(Path(src))
        # A source's own fold markers are its local bookkeeping: copying
        # them would corrupt the destination's progress accounting.
        if json.loads(line).get("kind") != "fold"
    ]
    dest = Path(dest)
    skip = 0
    if source_id is not None:
        skip = _fold_progress(dest, source_id)
        if len(src_lines) <= skip:
            return 0
    lines = src_lines[skip:]
    if not lines:
        return 0
    if source_id is not None:
        lines = lines + [
            json.dumps(
                {
                    "v": LINE_VERSION,
                    "kind": "fold",
                    "id": source_id,
                    "n": len(src_lines),
                    "t": time.time(),
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        ]
    dest.parent.mkdir(parents=True, exist_ok=True)
    ensure_line_boundary(dest)
    with dest.open("a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
        fh.flush()
    return len(lines) - (1 if source_id is not None else 0)
