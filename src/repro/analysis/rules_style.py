"""S-series: mechanical hygiene rules (the ``--fix`` pack).

S601 (unused imports) is the one rule with a mechanical fix: the
binding is provably unreferenced, so deleting it cannot change
behaviour.  S602 keeps coverage exemptions honest — every
``pragma: no cover`` must say *why*, mirroring the repro-lint pragma
contract, so the periodic audit can tell a protocol stub from a path
someone simply never tested.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    FileContext,
    LintConfig,
    Rule,
    Violation,
    register_rule,
)

NO_COVER_RE = re.compile(r"pragma:\s*no\s*cover(?P<tail>[^\n]*)")


def _binding_name(alias: ast.alias, node: ast.stmt) -> str:
    if alias.asname:
        return alias.asname
    if isinstance(node, ast.Import):
        return alias.name.split(".")[0]
    return alias.name


def _used_names(ctx: FileContext) -> set[str]:
    """Every identifier that could reference an imported binding."""
    used: set[str] = set()
    all_names: set[str] = set()
    in_type_checking_strings: list[str] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # handled via the base Name; nothing extra to record
            continue
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name) and tgt.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                all_names.add(elt.value)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            in_type_checking_strings.append(node.value)
    used |= all_names
    # Quoted forward references ("Frame", "np.ndarray", dict[str,
    # "Lease"]) reference names through string constants; count any
    # identifier token inside string constants as a (weak) use so
    # TYPE_CHECKING-only imports used in annotations survive.  ruff's
    # F401 re-checks this precisely in CI.
    ident_re = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
    for text in in_type_checking_strings:
        if len(text) <= 200:  # annotations, not prose
            used.update(ident_re.findall(text))
    return used


@register_rule
class UnusedImportRule(Rule):
    """S601: imports that bind names nothing references."""

    id = "S601"
    title = "unused import"
    fixable = True
    rationale = (
        "Dead imports hide real dependencies and slow cold start; "
        "removal is mechanical (--fix) because the binding is "
        "unreferenced by construction.  __all__ re-exports and names "
        "quoted in annotations count as uses."
    )

    def applies(self, ctx: FileContext, config: LintConfig) -> bool:
        return ctx.rel.startswith(("src/", "tools/"))

    def _unused(self, ctx: FileContext):
        """(node, alias) pairs for unreferenced import bindings."""
        used = _used_names(ctx)
        is_package_init = ctx.rel.endswith("__init__.py")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                if any(alias.name == "*" for alias in node.names):
                    continue
                # ``from x import y as y`` is the PEP 484 explicit
                # re-export idiom; package __init__ re-exports without
                # __all__ coverage are skipped too (they're API).
                if is_package_init:
                    continue
            for alias in node.names:
                name = _binding_name(alias, node)
                if alias.asname == alias.name:
                    continue
                if name not in used:
                    yield node, alias, name

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node, alias, name in self._unused(ctx):
            yield self.violation(ctx, node, f"unused import: {name}")

    def fix(self, ctx: FileContext, config: LintConfig) -> str | None:
        hits = [
            (node, alias, name)
            for node, alias, name in self._unused(ctx)
            if not ctx.allowed(node.lineno, self.id)
        ]
        if not hits:
            return None
        lines = ctx.source.splitlines(keepends=True)
        # Group per statement; rebuild or drop each one.
        by_node: dict[ast.stmt, list[ast.alias]] = {}
        for node, alias, _ in hits:
            by_node.setdefault(node, []).append(alias)
        for node, dead in by_node.items():
            keep = [a for a in node.names if a not in dead]
            start, end = node.lineno - 1, node.end_lineno
            if not keep:
                replacement: list[str] = []
            else:
                names = ", ".join(
                    a.name + (f" as {a.asname}" if a.asname else "")
                    for a in keep
                )
                indent = re.match(
                    r"\s*", lines[start]
                ).group(0)
                if isinstance(node, ast.ImportFrom):
                    stmt = (
                        f"{indent}from {'.' * node.level}"
                        f"{node.module or ''} import {names}\n"
                    )
                else:
                    stmt = f"{indent}import {names}\n"
                replacement = [stmt]
            lines[start:end] = replacement + [None] * (
                (end - start) - len(replacement)
            )
        return "".join(line for line in lines if line is not None)


@register_rule
class NoCoverReasonRule(Rule):
    """S602: every ``pragma: no cover`` carries a reason."""

    id = "S602"
    title = "coverage exemption without a reason"
    rationale = (
        "A bare 'pragma: no cover' is indistinguishable from a path "
        "someone forgot to test; the audit contract (DESIGN.md §16) "
        "requires 'pragma: no cover - <why>' so exemptions stay "
        "reviewable."
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for lineno, text in enumerate(ctx.lines, start=1):
            match = NO_COVER_RE.search(text)
            if not match:
                continue
            if "#" not in text[: match.start()]:
                continue  # prose/regex mention, not a real pragma comment
            tail = match.group("tail").strip()
            if not tail.startswith("-") or len(tail.lstrip("- ")) < 3:
                yield Violation(
                    rule=self.id,
                    path=ctx.rel,
                    line=lineno,
                    col=match.start() + 1,
                    message=(
                        "pragma: no cover without a reason; write "
                        "'pragma: no cover - <why>'"
                    ),
                )
