"""The ``repro-lint`` framework: rules, pragmas, config, and the driver.

This is the machinery half of DESIGN.md §16.  A :class:`Rule` inspects
one parsed file (:class:`FileContext`) and yields :class:`Violation`\\ s;
the :class:`Linter` walks paths, applies per-line pragma suppressions,
and renders human or JSON output.  Everything here is standard library
only — the linter must run on a bare checkout before any scientific
dependency is installed, and it must never import the code it analyses
(all facts come from the AST).

Repo-invariant by construction: rules read their path scopes, layering
seams, and wall-clock zones from :class:`LintConfig`, whose defaults
encode *this* repository; another project overrides them in a
``.repro-lint.toml`` at its root.  The rule IDs are stable public API
(pragmas and baselines reference them).

Suppression contract (mirrors ``pragma: no cover``'s reason rule):

* ``# repro-lint: ok D101 - <why>`` on the offending line (or alone on
  the line directly above) allowlists those rule IDs for that line.
* ``# repro-lint: skip-file`` anywhere skips the whole file (reserved
  for generated code and deliberate fixture files).
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "FileContext",
    "LintConfig",
    "Linter",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "load_config",
    "register_rule",
]

PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<verb>ok|skip-file)"
    r"(?:\s+(?P<rules>[A-Z]\d+(?:\s*,\s*[A-Z]\d+)*))?"
    r"(?:\s*-\s*(?P<reason>.*))?"
)

#: Directory names never descended into.
SKIP_DIRS = {"__pycache__", ".git", "build", ".hypothesis", ".pytest_cache"}


@dataclass(frozen=True)
class Violation:
    """One rule hit, anchored to a file position."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Line-number-free identity used by baseline files."""
        return f"{self.rule}:{self.path}:{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintConfig:
    """Repo-specific facts the repo-invariant rules consume.

    Defaults describe this repository; a ``.repro-lint.toml`` at the
    lint root overrides any field (section ``[repro-lint]``, same key
    names).  Paths are repo-relative posix strings; a trailing ``/``
    means "the whole subtree".
    """

    #: Where wall-clock reads are legitimate: observation and failure
    #: detection layers (telemetry, leases/heartbeats, backend drivers,
    #: fault injection, experiment timing) — never simulation state.
    #: The lint root (set by the Linter; rules resolve repo files
    #: like the flags registry against it).
    root: Path | None = None
    wall_clock_zones: list[str] = field(default_factory=lambda: [
        "src/repro/telemetry/",
        "src/repro/campaigns/resilience.py",
        "src/repro/campaigns/service.py",
        "src/repro/campaigns/faults.py",
        "src/repro/campaigns/backends/",
        "src/repro/experiments/timing.py",
    ])
    #: The one module allowed to touch ``os.environ`` for REPRO_* flags.
    flags_module: str = "src/repro/utils/flags.py"
    #: The blessed JSONL append seam (defines ensure_line_boundary).
    jsonl_module: str = "src/repro/utils/jsonl.py"
    #: campaigns -> manet imports must stay on these seams (L501).
    campaign_manet_seams: list[str] = field(default_factory=lambda: [
        "repro.manet.aedb",
        "repro.manet.config",
        "repro.manet.metrics",
        "repro.manet.runtime",
        "repro.manet.scenarios",
        "repro.manet.shared",
        "repro.manet.simulator",
    ])
    #: Layer order (L502): a module under key may not import prefixes
    #: in its value list.
    upward_imports: dict[str, list[str]] = field(default_factory=lambda: {
        "repro.utils": ["repro."],
        "repro.telemetry": [
            "repro.manet", "repro.campaigns", "repro.tuning",
            "repro.experiments", "repro.moo", "repro.stats",
            "repro.core", "repro.sensitivity", "repro.cli",
            "repro.analysis",
        ],
        "repro.manet": [
            "repro.campaigns", "repro.tuning", "repro.experiments",
            "repro.moo", "repro.stats", "repro.core",
            "repro.sensitivity", "repro.cli", "repro.analysis",
        ],
        "repro.analysis": [
            "repro.manet", "repro.campaigns", "repro.tuning",
            "repro.experiments", "repro.moo", "repro.stats",
            "repro.core", "repro.sensitivity", "repro.cli",
            "repro.telemetry", "repro.utils",
        ],
    })
    #: Exceptions to ``upward_imports`` (exact prefix allowances).
    upward_allowed: dict[str, list[str]] = field(default_factory=lambda: {
        "repro.utils": ["repro.utils"],
        "repro.analysis": [],
    })

    def in_wall_clock_zone(self, rel: str) -> bool:
        return _path_in(rel, self.wall_clock_zones)


def _path_in(rel: str, entries: Iterable[str]) -> bool:
    for entry in entries:
        if entry.endswith("/"):
            if rel.startswith(entry):
                return True
        elif rel == entry or fnmatch.fnmatch(rel, entry):
            return True
    return False


def load_config(root: Path) -> LintConfig:
    """The root's ``.repro-lint.toml`` merged over the defaults."""
    config = LintConfig()
    path = root / ".repro-lint.toml"
    if not path.is_file():
        return config
    import tomllib

    data = tomllib.loads(path.read_text(encoding="utf-8"))
    section = data.get("repro-lint", data)
    for key, value in section.items():
        attr = key.replace("-", "_")
        if hasattr(config, attr):
            setattr(config, attr, value)
    return config


# --------------------------------------------------------------------- #
class FileContext:
    """One parsed source file plus the derived facts rules share."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        self.module = self._module_name(rel)
        self._scan_pragmas()
        self._scan_constants()
        self._parents: dict[ast.AST, ast.AST] | None = None

    @staticmethod
    def _module_name(rel: str) -> str:
        """Dotted module guess (``src/repro/a/b.py`` -> ``repro.a.b``)."""
        parts = Path(rel).with_suffix("").parts
        if "src" in parts:
            parts = parts[parts.index("src") + 1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _scan_pragmas(self) -> None:
        self.skip_file = False
        #: line number -> allowed rule-id set ("*" = all)
        self._allow: dict[int, set[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(text)
            if not match:
                continue
            if match.group("verb") == "skip-file":
                self.skip_file = True
                continue
            rules = match.group("rules")
            ids = (
                {r.strip() for r in rules.split(",")} if rules else {"*"}
            )
            target = lineno
            # A comment-only pragma line covers the following line.
            if text.lstrip().startswith("#"):
                target = lineno + 1
            self._allow.setdefault(target, set()).update(ids)

    def _scan_constants(self) -> None:
        """Module-level ``NAME = "literal"`` string constants."""
        self.str_constants: dict[str, str] = {}
        for node in self.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.str_constants[node.targets[0].id] = node.value.value

    def allowed(self, line: int, rule: str) -> bool:
        ids = self._allow.get(line)
        return bool(ids) and ("*" in ids or rule in ids)

    def parent(self, node: ast.AST) -> ast.AST | None:
        if self._parents is None:
            self._parents = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    self._parents[child] = outer
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def resolve_str(self, node: ast.AST) -> str | None:
        """A literal string, through module-level constant names."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.str_constants.get(node.id)
        return None


# --------------------------------------------------------------------- #
class Rule:
    """One invariant: an ID, a scope predicate, and a checker.

    Subclasses set the class attributes and implement :meth:`check`.
    ``fixable`` rules additionally implement :meth:`fix`, returning the
    corrected source (or ``None`` when nothing mechanical applies).
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    fixable: bool = False

    def applies(self, ctx: FileContext, config: LintConfig) -> bool:
        """Default scope: everything under ``src/``."""
        return ctx.rel.startswith("src/")

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def fix(self, ctx: FileContext, config: LintConfig) -> str | None:
        return None

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.id,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance to the global registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    _load_rule_packs()
    return [_RULES[key] for key in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    _load_rule_packs()
    return _RULES[rule_id]


def _load_rule_packs() -> None:
    """Import the rule modules (idempotent; registration is on import)."""
    from repro.analysis import (  # noqa: F401  (imported for registration)
        rules_determinism,
        rules_flags,
        rules_jsonl,
        rules_layering,
        rules_style,
        rules_telemetry,
    )


# --------------------------------------------------------------------- #
@dataclass
class LintResult:
    violations: list[Violation]
    files_checked: int
    errors: list[str]
    fixed: list[str] = field(default_factory=list)


class Linter:
    """Walks paths, runs the registry, applies pragmas and baselines."""

    def __init__(
        self,
        root: Path,
        config: LintConfig | None = None,
        select: Iterable[str] | None = None,
    ):
        self.root = root.resolve()
        self.config = config if config is not None else load_config(root)
        self.config.root = self.root
        rules = all_rules()
        if select:
            wanted = set(select)
            unknown = wanted - {r.id for r in rules}
            if unknown:
                raise KeyError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))}"
                )
            rules = [r for r in rules if r.id in wanted]
        self.rules = rules

    def iter_files(self, paths: Iterable[Path]) -> Iterator[Path]:
        for path in paths:
            path = Path(path)
            if not path.is_absolute():
                path = self.root / path
            if path.is_file():
                if path.suffix == ".py":
                    yield path
                continue
            for sub in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(sub.parts):
                    yield sub

    def relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def run(
        self,
        paths: Iterable[Path],
        fix: bool = False,
        baseline: set[str] | None = None,
    ) -> LintResult:
        violations: list[Violation] = []
        errors: list[str] = []
        fixed: list[str] = []
        n_files = 0
        for path in self.iter_files(paths):
            rel = self.relpath(path)
            n_files += 1
            try:
                source = path.read_text(encoding="utf-8")
                ctx = FileContext(path, rel, source)
            except (OSError, SyntaxError, ValueError) as exc:
                errors.append(f"{rel}: {exc}")
                continue
            if ctx.skip_file:
                continue
            if fix:
                source, changed = self._fix_file(ctx)
                if changed:
                    path.write_text(source, encoding="utf-8")
                    fixed.append(rel)
                    ctx = FileContext(path, rel, source)
            violations.extend(self.check_file(ctx))
        if baseline:
            violations = [
                v for v in violations if v.fingerprint() not in baseline
            ]
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return LintResult(violations, n_files, errors, fixed)

    def check_file(self, ctx: FileContext) -> list[Violation]:
        out = []
        for rule in self.rules:
            if not rule.applies(ctx, self.config):
                continue
            for violation in rule.check(ctx, self.config):
                if not ctx.allowed(violation.line, rule.id):
                    out.append(violation)
        return out

    def _fix_file(self, ctx: FileContext) -> tuple[str, bool]:
        """Apply every fixable rule until the file stops changing."""
        source = ctx.source
        changed = False
        for _ in range(10):  # converges in 1-2 passes; bound hard
            progressed = False
            for rule in self.rules:
                if not rule.fixable or not rule.applies(ctx, self.config):
                    continue
                new = rule.fix(ctx, self.config)
                if new is not None and new != source:
                    source = new
                    ctx = FileContext(ctx.path, ctx.rel, source)
                    progressed = changed = True
            if not progressed:
                break
        return source, changed


# --------------------------------------------------------------------- #
def render_human(result: LintResult) -> str:
    lines = [v.render() for v in result.violations]
    lines.extend(f"error: {e}" for e in result.errors)
    for rel in result.fixed:
        lines.append(f"fixed: {rel}")
    n = len(result.violations)
    lines.append(
        f"{result.files_checked} files checked, "
        f"{n} violation{'s' if n != 1 else ''}"
        + (f", {len(result.errors)} errors" if result.errors else "")
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(
        {
            "version": 1,
            "files_checked": result.files_checked,
            "violations": [v.as_json() for v in result.violations],
            "errors": result.errors,
            "fixed": result.fixed,
        },
        indent=2,
        sort_keys=True,
    )


def load_baseline(path: Path) -> set[str]:
    data = json.loads(path.read_text(encoding="utf-8"))
    return set(data.get("fingerprints", []))


def write_baseline(path: Path, result: LintResult) -> None:
    data = {
        "version": 1,
        "fingerprints": sorted(v.fingerprint() for v in result.violations),
    }
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    """CLI driver (``python tools/repro_lint.py ...``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis enforcing the repo's determinism, JSONL, "
            "env-flag, telemetry, and layering contracts (DESIGN.md §16)."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories (default: src tests)")
    parser.add_argument("--root", default=".",
                        help="repo root for zone/seam resolution")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (fixable rules only)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run")
    parser.add_argument("--baseline", default=None,
                        help="JSON baseline of accepted violations")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write current violations as the baseline")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            flag = " [fixable]" if rule.fixable else ""
            print(f"{rule.id}{flag}  {rule.title}")
            print(f"       {rule.rationale}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        linter = Linter(Path(args.root), select=select)
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    baseline = (
        load_baseline(Path(args.baseline)) if args.baseline else None
    )
    result = linter.run(
        [Path(p) for p in args.paths], fix=args.fix, baseline=baseline
    )
    if args.write_baseline:
        write_baseline(Path(args.write_baseline), result)
        print(f"baseline written: {args.write_baseline}")
        return 0
    print(render_json(result) if args.as_json else render_human(result))
    if result.errors:
        return 2
    return 1 if result.violations else 0
