"""``repro-lint``: static analysis for the repo's reproduction contracts.

The invariants that make this reproduction trustworthy — bit-identical
determinism, the JSONL torn-tail contract, the central ``REPRO_*`` flag
registry, the zero-overhead telemetry off-switch, and the package
layering — used to live in DESIGN.md prose and reviewers' heads.  This
package encodes them as AST-driven rules (DESIGN.md §16) so a diff
that violates one fails CI instead of shipping.

Standard library only, and it never imports the code it analyses: run
it on a bare checkout with ``python tools/repro_lint.py src tests``.

Rule series
-----------
* **D1xx determinism** — wall clocks, entropy, stdlib random, unseeded
  NumPy generators, unordered-set iteration.
* **J2xx JSONL** — append-mode opens flow through
  ``repro.utils.jsonl.ensure_line_boundary``.
* **E3xx env flags** — every ``REPRO_*`` read goes through the
  ``repro.utils.flags`` registry; every referenced name is registered.
* **T4xx telemetry** — no allocation on the NullRecorder fast path; no
  per-event recorder resolution in hot loops.
* **L5xx layering** — campaigns touch manet only via blessed seams; no
  upward imports.
* **S6xx hygiene** — unused imports (``--fix``), reasoned coverage
  exemptions.

Suppress one finding with ``# repro-lint: ok <RULE> - <why>`` on (or
directly above) the line.
"""

from repro.analysis.core import (
    FileContext,
    LintConfig,
    Linter,
    Rule,
    Violation,
    all_rules,
    get_rule,
    load_config,
    main,
    register_rule,
)

__all__ = [
    "FileContext",
    "LintConfig",
    "Linter",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "load_config",
    "main",
    "register_rule",
]
