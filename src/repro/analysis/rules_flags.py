"""E-series: the ``REPRO_*`` environment-flag registry (DESIGN.md §16).

Flags cross process and host boundaries as plain environment strings
(fork/spawn workers, remote shard bundles, the campaign daemon), so a
typo'd name fails silently as ``None``.  The registry in
``repro/utils/flags.py`` is the single source of truth; these rules
force every read through it (E301), every referenced name into it
(E302), and confine direct environment *writes* to pragma-annotated
propagation seams (E303).

The registered-name set is recovered by parsing the registry module's
AST — the linter never imports the code it checks.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    FileContext,
    LintConfig,
    Rule,
    Violation,
    register_rule,
)

FLAG_NAME_RE = re.compile(r"^REPRO_[A-Z0-9_]+$")

#: Call attributes that take a flag name as their first argument.
_FLAG_READERS = frozenset({
    "read_raw", "read_bool", "read_float", "get_flag", "is_registered",
})
_MONKEYPATCH_FNS = frozenset({"setenv", "delenv"})

_registry_cache: dict[str, frozenset[str]] = {}


def registered_flags(ctx_root_rel: str, config: LintConfig,
                     root) -> frozenset[str] | None:
    """Names registered in the flags module (AST parse, cached).

    Returns ``None`` when the module does not exist under the lint
    root — E302 then degrades to skipped (another repo without the
    registry convention).
    """
    path = root / config.flags_module
    key = str(path)
    if key in _registry_cache:
        return _registry_cache[key]
    if not path.is_file():
        return None
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=key)
    names = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and (
                (isinstance(node.func, ast.Name)
                 and node.func.id == "register")
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "register")
            )
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            names.add(node.args[0].value)
    result = frozenset(names)
    _registry_cache[key] = result
    return result


def _is_os_environ(node: ast.AST) -> bool:
    """``os.environ`` as an attribute chain."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


def _environ_read_key(node: ast.Call | ast.Subscript, ctx: FileContext):
    """The flag-name string read by an os.environ access, if literal."""
    if isinstance(node, ast.Subscript) and _is_os_environ(node.value):
        return ctx.resolve_str(node.slice)
    if isinstance(node, ast.Call):
        func = node.func
        # os.environ.get(KEY) / os.environ.setdefault / .pop
        if (
            isinstance(func, ast.Attribute)
            and _is_os_environ(func.value)
            and func.attr in ("get", "pop", "setdefault")
            and node.args
        ):
            return ctx.resolve_str(node.args[0])
        # os.getenv(KEY)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "getenv"
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
            and node.args
        ):
            return ctx.resolve_str(node.args[0])
    return None


def _broad_scope(ctx: FileContext) -> bool:
    return ctx.rel.startswith(
        ("src/", "tests/", "tools/", "benchmarks/", "examples/")
    ) or "/" not in ctx.rel  # top-level files like setup.py


@register_rule
class RawFlagReadRule(Rule):
    """E301: REPRO_* reads go through repro.utils.flags."""

    id = "E301"
    title = "raw os.environ read of a REPRO_* flag"
    rationale = (
        "The registry (repro/utils/flags.py) is the one place that "
        "knows a flag's name, values, default, and doc anchor; raw "
        "reads bypass the unknown-name guard and drift from the "
        "documented defaults."
    )

    def applies(self, ctx: FileContext, config: LintConfig) -> bool:
        return _broad_scope(ctx) and ctx.rel != config.flags_module

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Call, ast.Subscript)):
                continue
            if isinstance(node, ast.Subscript) and not isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                continue  # writes/deletes are E303's business
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("pop", "setdefault")
                ):
                    continue  # mutation: E303
            key = _environ_read_key(node, ctx)
            if key and FLAG_NAME_RE.match(key):
                yield self.violation(
                    ctx, node,
                    f"raw environment read of {key}; use "
                    "repro.utils.flags.read_raw/read_bool/read_float",
                )


@register_rule
class UnregisteredFlagRule(Rule):
    """E302: every referenced REPRO_* name exists in the registry."""

    id = "E302"
    title = "unregistered REPRO_* flag name"
    rationale = (
        "An unregistered name is either a typo (reads silently return "
        "None across every process boundary) or an undocumented flag; "
        "both are bugs.  Register it in repro/utils/flags.py."
    )

    def applies(self, ctx: FileContext, config: LintConfig) -> bool:
        return _broad_scope(ctx) and ctx.rel != config.flags_module

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        root = config.root
        if root is None:
            root = ctx.path.resolve()
            for _ in ctx.rel.split("/"):
                root = root.parent
        registry = registered_flags(ctx.rel, config, root)
        if registry is None:
            return
        for node, name in self._flag_name_sites(ctx):
            if FLAG_NAME_RE.match(name) and name not in registry:
                yield self.violation(
                    ctx, node,
                    f"{name} is not registered in repro/utils/flags.py",
                )

    @staticmethod
    def _flag_name_sites(ctx: FileContext):
        """(node, candidate-name) pairs from flag-shaped syntax sites."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                attr = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if attr in _FLAG_READERS or attr in _MONKEYPATCH_FNS or (
                    attr in ("get", "pop", "setdefault", "getenv")
                ):
                    if node.args:
                        name = ctx.resolve_str(node.args[0])
                        if name:
                            yield node, name
            elif isinstance(node, ast.Subscript):
                name = ctx.resolve_str(node.slice)
                if name:
                    yield node, name
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is None:
                        continue
                    name = ctx.resolve_str(key)
                    if name:
                        yield key, name
            elif isinstance(node, ast.Assign):
                # NAME_ENV = "REPRO_X" constants: the constant *is* the
                # reference; registration is checked where it's used.
                continue


@register_rule
class RawFlagWriteRule(Rule):
    """E303: direct environment writes of REPRO_* flags."""

    id = "E303"
    title = "raw os.environ write of a REPRO_* flag"
    rationale = (
        "Mutating flag state in-place belongs to the blessed "
        "propagation seams (heartbeat_env, test fixtures via "
        "monkeypatch); anywhere else it silently reconfigures every "
        "subsequent read in the process."
    )

    def applies(self, ctx: FileContext, config: LintConfig) -> bool:
        # Tests mutate env through monkeypatch (auto-restored); direct
        # writes there are still worth flagging, so tests stay in scope.
        return _broad_scope(ctx) and ctx.rel != config.flags_module

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            key = None
            target = None
            if isinstance(node, (ast.Assign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else []
                )
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript) and _is_os_environ(
                        tgt.value
                    ):
                        key = ctx.resolve_str(tgt.slice)
                        target = tgt
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and _is_os_environ(func.value)
                    and func.attr in ("pop", "setdefault", "update")
                    and node.args
                ):
                    key = ctx.resolve_str(node.args[0])
                    target = node
            if key and target is not None and FLAG_NAME_RE.match(key):
                yield self.violation(
                    ctx, target,
                    f"direct environment write of {key}; only blessed "
                    "propagation seams may mutate flag state",
                )
