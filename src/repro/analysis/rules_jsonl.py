"""J-series: the JSONL append contract (DESIGN.md §16).

Every JSONL file in this repo shares one torn-tail discipline: readers
skip unparseable lines, and every *appender* first calls
``repro.utils.jsonl.ensure_line_boundary`` so a predecessor's torn tail
becomes an isolated junk line instead of gluing onto the new record.
PR 7 closed that hole by hand in six writers; this rule keeps it
closed: an append-mode ``open`` whose enclosing function never calls
``ensure_line_boundary`` is a violation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    FileContext,
    LintConfig,
    Rule,
    Violation,
    register_rule,
)


def _append_mode(call: ast.Call, *, is_method: bool) -> bool:
    """Whether this ``open`` call uses a literal append mode."""
    mode_node = None
    # builtin open(path, mode, ...) vs path.open(mode, ...)
    pos_index = 1 if not is_method else 0
    if len(call.args) > pos_index:
        mode_node = call.args[pos_index]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if isinstance(mode_node, ast.Constant) and isinstance(
        mode_node.value, str
    ):
        return "a" in mode_node.value
    return False


def _calls_ensure(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name == "ensure_line_boundary":
                return True
    return False


@register_rule
class AppendBoundaryRule(Rule):
    """J201: append-mode opens must sit behind ensure_line_boundary."""

    id = "J201"
    title = "append-mode open without ensure_line_boundary"
    rationale = (
        "A process killed mid-append leaves a torn final line; blindly "
        "appending glues the next record onto the junk and loses it to "
        "the readers' skip rule.  Call "
        "repro.utils.jsonl.ensure_line_boundary(path) in the same "
        "function before opening for append."
    )

    def applies(self, ctx: FileContext, config: LintConfig) -> bool:
        return (
            ctx.rel.startswith("src/") and ctx.rel != config.jsonl_module
        )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                if not _append_mode(node, is_method=False):
                    continue
            elif isinstance(func, ast.Attribute) and func.attr == "open":
                if not _append_mode(node, is_method=True):
                    continue
            else:
                continue
            scope = ctx.enclosing_function(node) or ctx.tree
            if not _calls_ensure(scope):
                yield self.violation(
                    ctx, node,
                    "append-mode open with no ensure_line_boundary call "
                    "in the enclosing function (torn-tail contract)",
                )
