"""T-series: the telemetry fast-path contract (DESIGN.md §12, §16).

``REPRO_TELEMETRY`` unset means the :class:`NullRecorder` — and the
whole point of the null recorder is that instrumented code pays
*nothing* when nobody is listening.  That breaks the moment a call
site formats strings into the call (the f-string is built before the
no-op method ever runs) or re-resolves the recorder per event inside a
hot loop.  These rules pin the discipline the PR 6 benchmark gate
(≤5 % null overhead) measures.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    FileContext,
    LintConfig,
    Rule,
    Violation,
    register_rule,
)

#: The Recorder protocol's verb set (DESIGN.md §12).
TELEMETRY_VERBS = frozenset({"span", "record_span", "count", "gauge",
                             "event"})

#: Receiver spellings we treat as "a recorder" for verb calls.  The
#: heuristic is deliberately narrow — `somelist.count(x)` must never
#: trip it — so it keys on the repo's naming convention plus the
#: get_recorder() seam.
_RECORDER_NAMES = frozenset({"rec", "recorder", "_rec", "_recorder"})


def _is_recorder_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _RECORDER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _RECORDER_NAMES
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        return name == "get_recorder"
    return False


def _telemetry_call(node: ast.Call) -> str | None:
    """The verb name when ``node`` is a recorder verb call."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in TELEMETRY_VERBS
        and _is_recorder_receiver(func.value)
    ):
        return func.attr
    return None


def _is_string_formatting(node: ast.AST) -> bool:
    """f-string / %-format / .format() / literal concatenation."""
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Mod)
    ):
        for side in (node.left, node.right):
            if isinstance(side, ast.Constant) and isinstance(
                side.value, str
            ):
                return True
            if isinstance(side, ast.JoinedStr):
                return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
        and isinstance(node.func.value, ast.Constant)
        and isinstance(node.func.value.value, str)
    ):
        return True
    return False


@register_rule
class TelemetryFormattingRule(Rule):
    """T401: no string formatting inside telemetry call arguments."""

    id = "T401"
    title = "string formatting in a telemetry call argument"
    rationale = (
        "Arguments are evaluated before the NullRecorder's no-op body "
        "runs, so an f-string name or attribute allocates on every "
        "call even with telemetry off — exactly what the ≤5 % null "
        "overhead gate exists to prevent.  Metric names must be plain "
        "literals (bounded cardinality); dynamic values belong in "
        "attrs as raw values, not formatted strings."
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            verb = _telemetry_call(node)
            if verb is None:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _is_string_formatting(arg):
                    yield self.violation(
                        ctx, arg,
                        f"string formatting in .{verb}() argument runs "
                        "even when telemetry is off; pass literals/raw "
                        "values",
                    )


@register_rule
class RecorderResolveInLoopRule(Rule):
    """T402: ``get_recorder()`` is hoisted out of loops."""

    id = "T402"
    title = "get_recorder() resolved inside a loop"
    rationale = (
        "Registry resolution is a per-operation cost; inside a hot "
        "loop it turns the off-switch into a dict probe per event.  "
        "Capture the recorder once before the loop."
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name != "get_recorder":
                continue
            for anc in ctx.ancestors(node):
                if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
                    yield self.violation(
                        ctx, node,
                        "get_recorder() inside a loop; hoist it out and "
                        "reuse the handle",
                    )
                    break
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break  # nested defs inside loops are fresh scopes


@register_rule
class HotLoopCounterRule(Rule):
    """T403: no recorder verb calls inside manet/ loop bodies."""

    id = "T403"
    title = "telemetry verb call inside a hot-layer loop"
    rationale = (
        "The event core's inner loops run millions of iterations; the "
        "sanctioned pattern (DESIGN.md §12) is a plain int counter in "
        "the loop, shipped through .count() once per run.  Per-event "
        "recorder calls pay the protocol dispatch even when off."
    )

    def applies(self, ctx: FileContext, config: LintConfig) -> bool:
        return ctx.rel.startswith("src/repro/manet/")

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            verb = _telemetry_call(node)
            if verb is None:
                continue
            for anc in ctx.ancestors(node):
                if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
                    yield self.violation(
                        ctx, node,
                        f".{verb}() inside a hot-layer loop; keep a "
                        "plain counter and ship it once per run",
                    )
                    break
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
