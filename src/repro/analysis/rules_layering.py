"""L-series: package layering rules (DESIGN.md §16).

The dependency order that keeps the reproduction auditable:

    utils  <  telemetry  <  manet  <  {tuning, campaigns, ...}  <  cli

``campaigns/`` in particular may reach ``manet/`` only through the
evaluator/runtime seams (the types a campaign cell serialises and the
runtime-attachment entry points) — never the event queue, medium, or
protocol internals, whose APIs are free to change under the
bit-identity discipline without a campaign-layer audit.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    FileContext,
    LintConfig,
    Rule,
    Violation,
    register_rule,
)


def _imports(tree: ast.Module):
    """(node, dotted-module) pairs for every import statement."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            # Relative imports resolve against the package elsewhere;
            # this repo uses absolute imports throughout (enforced by
            # the hit below when someone strays).
            yield node, node.module


@register_rule
class CampaignManetSeamRule(Rule):
    """L501: campaigns -> manet only via the evaluator/runtime seams."""

    id = "L501"
    title = "campaigns/ importing manet/ off the blessed seams"
    rationale = (
        "Campaign code serialises cells and attaches runtimes; if it "
        "reaches into the event queue, medium, or protocol internals, "
        "every kernel-level refactor becomes a campaign audit.  The "
        "seam list lives in LintConfig.campaign_manet_seams."
    )

    def applies(self, ctx: FileContext, config: LintConfig) -> bool:
        return ctx.rel.startswith("src/repro/campaigns/")

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        seams = set(config.campaign_manet_seams)
        for node, module in _imports(ctx.tree):
            if not (module == "repro.manet"
                    or module.startswith("repro.manet.")):
                continue
            if module == "repro.manet" or module not in seams:
                yield self.violation(
                    ctx, node,
                    f"import of {module}; campaigns may only use the "
                    "evaluator/runtime seams "
                    f"({', '.join(sorted(seams))})",
                )


@register_rule
class UpwardImportRule(Rule):
    """L502: no lower layer imports a higher one."""

    id = "L502"
    title = "upward import across the layer order"
    rationale = (
        "utils < telemetry < manet < everything else: an upward edge "
        "makes the observation layer load simulation code (or the "
        "kernel load campaign code) and turns the import graph "
        "cyclic.  The order lives in LintConfig.upward_imports."
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        module = ctx.module
        for prefix, forbidden in config.upward_imports.items():
            if not (module == prefix or module.startswith(prefix + ".")):
                continue
            allowed = config.upward_allowed.get(prefix, [])
            for node, imported in _imports(ctx.tree):
                for bad in forbidden:
                    bad_hit = imported == bad.rstrip(".") or (
                        imported.startswith(bad)
                        if bad.endswith(".")
                        else imported.startswith(bad + ".")
                    )
                    if not bad_hit:
                        continue
                    if any(
                        imported == ok or imported.startswith(ok + ".")
                        for ok in allowed
                    ):
                        continue
                    yield self.violation(
                        ctx, node,
                        f"{module} (layer {prefix}) imports {imported}: "
                        "upward dependency",
                    )
                    break
            break
