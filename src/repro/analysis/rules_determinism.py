"""D-series: determinism rules (DESIGN.md §16).

The reproduction's core guarantee is bit-identity: the same spec and
seeds produce the same bytes on every backend, engine, and resume path.
That only holds while simulation state derives exclusively from the
event clock and the seeded RNG streams.  These rules ban the ambient
nondeterminism sources — wall clocks, process entropy, the stdlib
``random`` globals, unseeded NumPy generators, and unordered-set
iteration — everywhere outside the annotated wall-clock zones
(telemetry, resilience, fault injection: layers that *observe* runs but
never feed state back into them).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    FileContext,
    LintConfig,
    Rule,
    Violation,
    register_rule,
)

#: ``time`` module functions that read a wall clock.  ``sleep`` is
#: absent on purpose: it wastes time but cannot leak it into state.
WALL_CLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time",
    "process_time_ns", "clock_gettime", "clock_gettime_ns",
})
WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: Legacy NumPy global-state RNG entry points (np.random.<fn>).
NUMPY_GLOBAL_RNG_FNS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "get_state", "set_state",
})


def _imported_names(tree: ast.Module) -> dict[str, str]:
    """alias -> origin ("module" or "module.name") for top-level imports."""
    origins: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                origins[bound] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                origins[bound] = f"{node.module}.{alias.name}"
    return origins


def _sim_scope(ctx: FileContext) -> bool:
    return ctx.rel.startswith("src/")


@register_rule
class WallClockRule(Rule):
    """D101: no wall-clock reads outside the wall-clock zones."""

    id = "D101"
    title = "wall-clock read outside an annotated wall-clock zone"
    rationale = (
        "Simulation state must derive from the event clock and seeds "
        "alone; wall-clock values leaking into results break the "
        "bit-identity guarantee (the PR 5 event-clock drift class)."
    )

    def applies(self, ctx: FileContext, config: LintConfig) -> bool:
        return _sim_scope(ctx) and not config.in_wall_clock_zone(ctx.rel)

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        origins = _imported_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                # time.<fn>() via "import time"
                if (
                    isinstance(base, ast.Name)
                    and origins.get(base.id) == "time"
                    and func.attr in WALL_CLOCK_TIME_FNS
                ):
                    yield self.violation(
                        ctx, node,
                        f"wall-clock read time.{func.attr}() outside a "
                        "wall-clock zone",
                    )
                # datetime.now()/utcnow()/today() via class or module
                elif func.attr in WALL_CLOCK_DATETIME_FNS and (
                    (
                        isinstance(base, ast.Name)
                        and origins.get(base.id, "").startswith("datetime")
                    )
                    or (
                        isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and origins.get(base.value.id) == "datetime"
                    )
                ):
                    yield self.violation(
                        ctx, node,
                        f"wall-clock read .{func.attr}() on a datetime "
                        "object outside a wall-clock zone",
                    )
            elif isinstance(func, ast.Name):
                origin = origins.get(func.id, "")
                if origin.startswith("time.") and (
                    origin.split(".", 1)[1] in WALL_CLOCK_TIME_FNS
                ):
                    yield self.violation(
                        ctx, node,
                        f"wall-clock read {origin}() outside a wall-clock "
                        "zone",
                    )


@register_rule
class StdlibRandomRule(Rule):
    """D102: the stdlib ``random`` module is banned in ``src/``."""

    id = "D102"
    title = "stdlib random module in simulation code"
    rationale = (
        "All randomness flows through seeded numpy Generators "
        "(repro.utils.rng); the stdlib global Mersenne state is "
        "process-wide and unseedable per-stream."
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.violation(
                            ctx, node,
                            "stdlib random imported; use seeded numpy "
                            "Generators (repro.utils.rng)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        ctx, node,
                        "stdlib random imported; use seeded numpy "
                        "Generators (repro.utils.rng)",
                    )


@register_rule
class EntropyRule(Rule):
    """D103: no ambient process entropy (urandom/secrets/uuid4)."""

    id = "D103"
    title = "ambient entropy source in simulation code"
    rationale = (
        "os.urandom/secrets/uuid draws differ per process and per run; "
        "anything they touch can never replay bit-identically."
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        origins = _imported_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if not isinstance(base, ast.Name):
                continue
            origin = origins.get(base.id, "")
            if origin == "os" and func.attr == "urandom":
                yield self.violation(ctx, node, "os.urandom() is ambient "
                                     "process entropy")
            elif origin == "secrets":
                yield self.violation(
                    ctx, node,
                    f"secrets.{func.attr}() is ambient process entropy",
                )
            elif origin == "uuid" and func.attr in ("uuid1", "uuid4"):
                yield self.violation(
                    ctx, node,
                    f"uuid.{func.attr}() is ambient process entropy",
                )


@register_rule
class SetIterationRule(Rule):
    """D104: no direct iteration over set displays/constructors."""

    id = "D104"
    title = "iteration over an unordered set"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "seeds; feeding it into state or output makes runs "
        "irreproducible.  Sort first (sorted(...)) or use a list/tuple."
    )

    _CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter):
                    yield self.violation(
                        ctx, node.iter,
                        "for-loop over an unordered set; wrap in sorted()",
                    )
            elif isinstance(node, ast.comprehension):
                if self._is_set_expr(node.iter):
                    yield self.violation(
                        ctx, node.iter,
                        "comprehension over an unordered set; wrap in "
                        "sorted()",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._CONSUMERS
                and node.args
                and self._is_set_expr(node.args[0])
            ):
                yield self.violation(
                    ctx, node,
                    f"{node.func.id}() over an unordered set; wrap in "
                    "sorted()",
                )


@register_rule
class UnseededRngRule(Rule):
    """D105: every NumPy generator is explicitly seeded; no globals."""

    id = "D105"
    title = "unseeded or global-state NumPy RNG"
    rationale = (
        "default_rng() with no seed pulls OS entropy; np.random.<fn> "
        "globals share mutable process state across call sites.  Every "
        "stream must be derived from an explicit seed (repro.utils.rng)."
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name == "default_rng" and not node.args and not node.keywords:
                yield self.violation(
                    ctx, node,
                    "default_rng() without a seed draws OS entropy",
                )
                continue
            # np.random.<legacy global>(...)
            if (
                isinstance(func, ast.Attribute)
                and func.attr in NUMPY_GLOBAL_RNG_FNS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ("np", "numpy")
            ):
                yield self.violation(
                    ctx, node,
                    f"np.random.{func.attr}() uses global RNG state; "
                    "use a seeded Generator",
                )
