"""Non-parametric effect sizes (extension beyond the paper).

The paper's Table IV reports only significance (▲/▽/–); modern
metaheuristic-comparison practice pairs the Wilcoxon test with an effect
size so "significant" can be separated from "large":

* :func:`vargha_delaney_a12` — the probability that a random draw from
  sample *a* exceeds one from *b* (ties counted half).  0.5 = no effect;
  1.0 = *a* always larger.
* :func:`cliffs_delta` — the same quantity rescaled to [-1, 1]
  (``delta = 2 A12 - 1``).

Both are computed from midranks, so they are consistent with the
rank-sum test in :mod:`repro.stats.wilcoxon` (same tie handling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.ranks import midranks

__all__ = ["EffectSize", "vargha_delaney_a12", "cliffs_delta"]

#: Vargha & Delaney's magnitude thresholds on ``|A12 - 0.5|``.
_A12_THRESHOLDS = ((0.06, "negligible"), (0.14, "small"), (0.21, "medium"))


@dataclass(frozen=True)
class EffectSize:
    """A scalar effect size with its conventional magnitude label."""

    #: The effect statistic (A12 in [0, 1] or delta in [-1, 1]).
    value: float
    #: "negligible" | "small" | "medium" | "large".
    magnitude: str
    #: Sample sizes the effect was computed from.
    n_a: int
    n_b: int


def _a12_magnitude(a12: float) -> str:
    dev = abs(a12 - 0.5)
    for threshold, label in _A12_THRESHOLDS:
        if dev < threshold:
            return label
    return "large"


def vargha_delaney_a12(a, b) -> EffectSize:
    """A12 statistic of samples ``a`` and ``b``.

    ``P(a > b) + 0.5 P(a = b)`` estimated via the rank-sum identity
    ``A12 = (Ra / na - (na + 1) / 2) / nb`` with midranks.
    """
    xa = np.asarray(a, dtype=float).ravel()
    xb = np.asarray(b, dtype=float).ravel()
    n_a, n_b = xa.size, xb.size
    if n_a == 0 or n_b == 0:
        raise ValueError("both samples must be non-empty")
    ranks = midranks(np.concatenate([xa, xb]))
    rank_sum_a = float(ranks[:n_a].sum())
    a12 = (rank_sum_a / n_a - (n_a + 1) / 2.0) / n_b
    a12 = float(np.clip(a12, 0.0, 1.0))
    return EffectSize(
        value=a12, magnitude=_a12_magnitude(a12), n_a=n_a, n_b=n_b
    )


def cliffs_delta(a, b) -> EffectSize:
    """Cliff's delta: ``P(a > b) - P(a < b)`` in [-1, 1].

    Derived from A12 (``delta = 2 A12 - 1``) so the two effect sizes are
    always mutually consistent; the magnitude label follows Romano et
    al.'s thresholds (0.147 / 0.33 / 0.474).
    """
    a12 = vargha_delaney_a12(a, b)
    delta = float(np.clip(2.0 * a12.value - 1.0, -1.0, 1.0))
    dev = abs(delta)
    if dev < 0.147:
        label = "negligible"
    elif dev < 0.33:
        label = "small"
    elif dev < 0.474:
        label = "medium"
    else:
        label = "large"
    return EffectSize(value=delta, magnitude=label, n_a=a12.n_a, n_b=a12.n_b)
