"""Boxplot descriptive statistics (paper Fig. 7).

The paper shows the 30-run indicator distributions as boxplots; this
module computes the standard five-number summary plus Tukey whiskers and
outliers, so the benchmark harness can print the exact geometry a plot
would draw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoxplotStats", "boxplot_stats"]


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary with Tukey fences."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    #: Whisker ends (innermost points within 1.5 IQR of the box).
    whisker_low: float
    whisker_high: float
    #: Values beyond the whiskers.
    outliers: tuple[float, ...]
    mean: float
    std: float

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q3 - self.q1

    def row(self, label: str = "") -> str:
        """One aligned text row (used by the Fig. 7 harness)."""
        return (
            f"{label:>12s}  n={self.n:3d}  "
            f"min={self.minimum:9.4f}  q1={self.q1:9.4f}  "
            f"med={self.median:9.4f}  q3={self.q3:9.4f}  "
            f"max={self.maximum:9.4f}  outliers={len(self.outliers)}"
        )


def boxplot_stats(values) -> BoxplotStats:
    """Compute the summary for one sample (linear-interpolated quartiles)."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= low_fence) & (arr <= high_fence)]
    whisker_low = float(inside.min()) if inside.size else float(arr.min())
    whisker_high = float(inside.max()) if inside.size else float(arr.max())
    outliers = tuple(
        float(v) for v in np.sort(arr[(arr < low_fence) | (arr > high_fence)])
    )
    return BoxplotStats(
        n=int(arr.size),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
    )
