"""Two-sample Wilcoxon rank-sum test (Mann-Whitney U).

The paper compares 30-run indicator samples pairwise "with 95% statistical
confidence according to Wilcoxon unpaired signed rank test" — the unpaired
(rank-sum) test.  Implemented from first principles with the
tie-corrected normal approximation (the standard choice at n = 30) and
cross-validated against ``scipy.stats`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.stats.ranks import midranks, tie_groups

__all__ = ["RankSumResult", "rank_sum_test"]


@dataclass(frozen=True)
class RankSumResult:
    """Outcome of a two-sample rank-sum test."""

    #: Mann-Whitney U statistic of the first sample.
    u_statistic: float
    #: Standard-normal z score (continuity-corrected).
    z_score: float
    #: Two-sided p-value (normal approximation).
    p_value: float
    #: Sample sizes.
    n_a: int
    n_b: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the samples differ at level ``alpha`` (two-sided)."""
        return self.p_value < alpha

    @property
    def a_tends_larger(self) -> bool:
        """True when sample *a* stochastically dominates sample *b*."""
        return self.u_statistic > self.n_a * self.n_b / 2.0


def rank_sum_test(a, b) -> RankSumResult:
    """Two-sided Wilcoxon rank-sum test of samples ``a`` and ``b``.

    Uses midranks for ties and the tie-corrected normal approximation
    with a 0.5 continuity correction.  Degenerate inputs (all values
    identical across both samples) return p = 1.
    """
    xa = np.asarray(a, dtype=float).ravel()
    xb = np.asarray(b, dtype=float).ravel()
    n_a, n_b = xa.size, xb.size
    if n_a == 0 or n_b == 0:
        raise ValueError("both samples must be non-empty")

    combined = np.concatenate([xa, xb])
    ranks = midranks(combined)
    rank_sum_a = float(ranks[:n_a].sum())
    u_a = rank_sum_a - n_a * (n_a + 1) / 2.0

    n = n_a + n_b
    mean_u = n_a * n_b / 2.0
    ties = tie_groups(combined)
    tie_term = sum(t**3 - t for t in ties)
    var_u = n_a * n_b / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))

    if var_u <= 0:
        return RankSumResult(
            u_statistic=u_a, z_score=0.0, p_value=1.0, n_a=n_a, n_b=n_b
        )
    # Continuity correction toward the mean.
    diff = u_a - mean_u
    correction = -0.5 if diff > 0 else (0.5 if diff < 0 else 0.0)
    z = (diff + correction) / np.sqrt(var_u)
    p = 2.0 * float(norm.sf(abs(z)))
    return RankSumResult(
        u_statistic=u_a,
        z_score=float(z),
        p_value=min(p, 1.0),
        n_a=n_a,
        n_b=n_b,
    )
