"""Rank utilities."""

from __future__ import annotations

import numpy as np

__all__ = ["midranks", "tie_groups"]


def midranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties receiving their group's average rank."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D values, got shape {arr.shape}")
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(arr.size, dtype=float)
    sorted_vals = arr[order]
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        # Positions i..j share the average of ranks i+1..j+1.
        ranks[order[i : j + 1]] = 0.5 * ((i + 1) + (j + 1))
        i = j + 1
    return ranks


def tie_groups(values: np.ndarray) -> list[int]:
    """Sizes of tie groups (>= 2) — the tie-correction ingredients."""
    arr = np.sort(np.asarray(values, dtype=float))
    groups: list[int] = []
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and arr[j + 1] == arr[i]:
            j += 1
        if j > i:
            groups.append(j - i + 1)
        i = j + 1
    return groups
