"""Bootstrap confidence intervals (extension beyond the paper).

Fig. 7 reports boxplots of 30-run indicator samples; a bootstrap CI on
the median (or mean) is the natural companion when runs are expensive
and normality is doubtful.  Two interval constructions:

* ``percentile`` — the plain empirical quantiles of the bootstrap
  distribution;
* ``bca`` — bias-corrected and accelerated (Efron 1987): corrects the
  percentile interval for median bias (``z0``, from the fraction of
  bootstrap replicates below the observed statistic) and for
  skewness (``a``, from the jackknife third moment).

Cross-validated against ``scipy.stats.bootstrap`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.stats import norm

from repro.utils.rng import as_generator

__all__ = ["BootstrapCI", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """A two-sided bootstrap confidence interval."""

    #: Statistic evaluated on the original sample.
    estimate: float
    #: Interval endpoints.
    low: float
    high: float
    #: Confidence level (e.g. 0.95).
    confidence: float
    #: "percentile" or "bca".
    method: str
    #: Bootstrap resamples drawn.
    n_resamples: int

    @property
    def width(self) -> float:
        """Interval width — the sample-size diagnostic reports use."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_ci(
    sample,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    method: str = "bca",
    rng: np.random.Generator | int | None = 0,
) -> BootstrapCI:
    """Bootstrap CI of ``statistic`` over a 1-D ``sample``.

    ``statistic`` must map a 1-D array to a scalar (vectorised per
    resample, not across resamples).  Degenerate samples (constant
    values) return a zero-width interval at the observed statistic.
    """
    x = np.asarray(sample, dtype=float).ravel()
    if x.size < 2:
        raise ValueError(f"sample must have at least 2 values, got {x.size}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 100:
        raise ValueError(f"n_resamples must be >= 100, got {n_resamples}")
    if method not in ("percentile", "bca"):
        raise ValueError(f"unknown method {method!r}")

    gen = as_generator(rng)
    observed = float(statistic(x))

    idx = gen.integers(0, x.size, size=(n_resamples, x.size))
    replicates = np.array([float(statistic(x[row])) for row in idx])

    alpha = 1.0 - confidence
    if np.ptp(replicates) == 0.0:
        lo = hi = float(replicates[0])
    elif method == "percentile":
        lo, hi = np.quantile(replicates, [alpha / 2.0, 1.0 - alpha / 2.0])
    else:  # BCa
        # Bias correction: fraction of replicates below the observed value.
        prop = np.mean(replicates < observed) + 0.5 * np.mean(
            replicates == observed
        )
        prop = min(max(prop, 1.0 / (n_resamples + 1)), n_resamples / (n_resamples + 1))
        z0 = float(norm.ppf(prop))
        # Acceleration from the jackknife third moment.
        jack = np.array(
            [float(statistic(np.delete(x, i))) for i in range(x.size)]
        )
        centred = jack.mean() - jack
        denom = float((centred**2).sum()) ** 1.5
        a = float((centred**3).sum()) / (6.0 * denom) if denom > 0 else 0.0

        z_lo, z_hi = norm.ppf(alpha / 2.0), norm.ppf(1.0 - alpha / 2.0)

        def adjusted_quantile(z: float) -> float:
            num = z0 + z
            adj = norm.cdf(z0 + num / (1.0 - a * num))
            return float(np.clip(adj, 0.0, 1.0))

        lo, hi = np.quantile(
            replicates, [adjusted_quantile(z_lo), adjusted_quantile(z_hi)]
        )

    return BootstrapCI(
        estimate=observed,
        low=float(lo),
        high=float(hi),
        confidence=confidence,
        method=method,
        n_resamples=n_resamples,
    )
