"""Friedman test and Holm step-down correction (extension).

Table IV compares the three algorithms *pairwise*; the Friedman test is
the standard omnibus complement when more than two algorithms share the
same blocks (here: the same 30 independent runs per density).  Workflow:

1. :func:`friedman_test` on the ``(blocks, treatments)`` indicator matrix
   — "do the algorithms differ at all?";
2. if it rejects, :func:`friedman_posthoc` runs all pairwise rank-sum
   tests with :func:`holm_bonferroni` family-wise correction.

The chi-square statistic uses within-block midranks with the standard
tie correction (the same convention as ``scipy.stats.friedmanchisquare``,
which the test suite cross-validates against); the Iman–Davenport F
transform is exposed as well, being less conservative at small block
counts like the paper's 30 runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2, f as f_dist

from repro.stats.ranks import midranks, tie_groups
from repro.stats.wilcoxon import rank_sum_test

__all__ = [
    "FriedmanResult",
    "friedman_test",
    "holm_bonferroni",
    "PosthocCell",
    "friedman_posthoc",
]


@dataclass(frozen=True)
class FriedmanResult:
    """Outcome of the Friedman omnibus test."""

    #: Tie-corrected chi-square statistic (k-1 degrees of freedom).
    chi_square: float
    #: P-value of the chi-square form.
    p_value: float
    #: Iman–Davenport F statistic.
    iman_davenport_f: float
    #: P-value of the F form.
    iman_davenport_p: float
    #: Mean rank per treatment (1 = best under "smaller is better" data).
    mean_ranks: np.ndarray
    #: Blocks (runs) and treatments (algorithms).
    n_blocks: int
    n_treatments: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the treatments differ at level ``alpha``
        (chi-square form)."""
        return self.p_value < alpha


def friedman_test(matrix) -> FriedmanResult:
    """Friedman test on a ``(n_blocks, k_treatments)`` matrix.

    Each row is one block (e.g. one independent run); columns are
    treatments (algorithms).  Values are ranked *within* rows with
    midranks; smaller values get smaller ranks.
    """
    data = np.asarray(matrix, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    n, k = data.shape
    if n < 2 or k < 2:
        raise ValueError(
            f"need at least 2 blocks and 2 treatments, got {data.shape}"
        )

    ranks = np.vstack([midranks(row) for row in data])
    rank_sums = ranks.sum(axis=0)

    # Tie correction: C = 1 - sum(t^3 - t) / (n k (k^2 - 1)).
    tie_term = 0.0
    for row in data:
        tie_term += sum(t**3 - t for t in tie_groups(row))
    correction = 1.0 - tie_term / (n * k * (k**2 - 1))

    chi = (
        12.0 / (n * k * (k + 1)) * float((rank_sums**2).sum())
        - 3.0 * n * (k + 1)
    )
    if correction <= 0:
        # Every row fully tied: no evidence of any difference.
        return FriedmanResult(
            chi_square=0.0,
            p_value=1.0,
            iman_davenport_f=0.0,
            iman_davenport_p=1.0,
            mean_ranks=rank_sums / n,
            n_blocks=n,
            n_treatments=k,
        )
    chi /= correction
    p = float(chi2.sf(chi, df=k - 1))

    denom = n * (k - 1) - chi
    if denom <= 0:
        # Perfect consistency across blocks: F diverges, p -> 0.
        f_stat, f_p = np.inf, 0.0
    else:
        f_stat = (n - 1) * chi / denom
        f_p = float(f_dist.sf(f_stat, dfn=k - 1, dfd=(k - 1) * (n - 1)))

    return FriedmanResult(
        chi_square=float(chi),
        p_value=p,
        iman_davenport_f=float(f_stat),
        iman_davenport_p=f_p,
        mean_ranks=rank_sums / n,
        n_blocks=n,
        n_treatments=k,
    )


def holm_bonferroni(p_values) -> np.ndarray:
    """Holm step-down adjusted p-values (family-wise error control).

    Sorted ascending, ``adj_(i) = max_{j <= i} (m - j) p_(j)``, clipped
    at 1 — uniformly more powerful than plain Bonferroni while
    controlling the same error rate.
    """
    p = np.asarray(p_values, dtype=float).ravel()
    if p.size == 0:
        raise ValueError("p_values must be non-empty")
    if np.any((p < 0) | (p > 1)):
        raise ValueError("p-values must lie in [0, 1]")
    m = p.size
    order = np.argsort(p, kind="stable")
    adjusted = np.empty(m)
    running_max = 0.0
    for rank, idx in enumerate(order):
        candidate = (m - rank) * p[idx]
        running_max = max(running_max, candidate)
        adjusted[idx] = min(running_max, 1.0)
    return adjusted


@dataclass(frozen=True)
class PosthocCell:
    """One pairwise comparison of the post-hoc table."""

    #: Treatment labels.
    a: str
    b: str
    #: Raw rank-sum p-value.
    p_value: float
    #: Holm-adjusted p-value.
    p_adjusted: float
    #: True when *a*'s values tend larger than *b*'s.
    a_tends_larger: bool

    def significant(self, alpha: float = 0.05) -> bool:
        """Family-wise significant difference at level ``alpha``."""
        return self.p_adjusted < alpha


def friedman_posthoc(
    matrix, names: tuple[str, ...] | list[str] | None = None
) -> list[PosthocCell]:
    """All pairwise rank-sum tests with Holm correction.

    Complements :func:`friedman_test` after an omnibus rejection; run on
    the same ``(blocks, treatments)`` matrix.
    """
    data = np.asarray(matrix, dtype=float)
    if data.ndim != 2 or data.shape[1] < 2:
        raise ValueError(f"expected (blocks, >=2 treatments), got {data.shape}")
    k = data.shape[1]
    labels = list(names) if names else [f"t{j}" for j in range(k)]
    if len(labels) != k:
        raise ValueError(f"expected {k} names, got {len(labels)}")

    pairs = [(i, j) for i in range(k) for j in range(i + 1, k)]
    results = [rank_sum_test(data[:, i], data[:, j]) for i, j in pairs]
    adjusted = holm_bonferroni([r.p_value for r in results])
    return [
        PosthocCell(
            a=labels[i],
            b=labels[j],
            p_value=r.p_value,
            p_adjusted=float(adj),
            a_tends_larger=r.a_tends_larger,
        )
        for (i, j), r, adj in zip(pairs, results, adjusted)
    ]
