"""Statistical machinery for the algorithm comparison (Sect. VI).

* :mod:`repro.stats.ranks` — midrank computation with tie handling;
* :mod:`repro.stats.wilcoxon` — the two-sample Wilcoxon rank-sum test
  (a.k.a. Mann-Whitney U) with tie-corrected normal approximation, the
  test behind the paper's Table IV ("95% statistical confidence
  according to Wilcoxon unpaired signed rank test");
* :mod:`repro.stats.comparison` — pairwise ▲/▽/– comparison tables;
* :mod:`repro.stats.descriptive` — five-number boxplot summaries
  (Fig. 7);
* :mod:`repro.stats.effects` — Vargha-Delaney A12 and Cliff's delta
  effect sizes (extension: separates "significant" from "large");
* :mod:`repro.stats.friedman` — Friedman omnibus test, Iman-Davenport
  correction, Holm step-down adjustment and the pairwise post-hoc table
  (extension: the >2-algorithm comparison workflow);
* :mod:`repro.stats.bootstrap` — percentile and BCa bootstrap confidence
  intervals for the indicator samples (extension).
"""

from repro.stats.bootstrap import BootstrapCI, bootstrap_ci
from repro.stats.comparison import ComparisonCell, pairwise_comparison_table
from repro.stats.descriptive import BoxplotStats, boxplot_stats
from repro.stats.effects import EffectSize, cliffs_delta, vargha_delaney_a12
from repro.stats.friedman import (
    FriedmanResult,
    PosthocCell,
    friedman_posthoc,
    friedman_test,
    holm_bonferroni,
)
from repro.stats.ranks import midranks
from repro.stats.wilcoxon import RankSumResult, rank_sum_test

__all__ = [
    "midranks",
    "rank_sum_test",
    "RankSumResult",
    "pairwise_comparison_table",
    "ComparisonCell",
    "boxplot_stats",
    "BoxplotStats",
    "vargha_delaney_a12",
    "cliffs_delta",
    "EffectSize",
    "friedman_test",
    "FriedmanResult",
    "friedman_posthoc",
    "PosthocCell",
    "holm_bonferroni",
    "bootstrap_ci",
    "BootstrapCI",
]
