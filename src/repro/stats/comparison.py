"""Pairwise algorithm comparison tables (paper Table IV).

For each metric and each pair of algorithms, the table holds one symbol
per problem instance: '▲' — the row algorithm is significantly *better*,
'▽' — significantly worse, '–' — no significant difference at the chosen
level.  "Better" depends on the metric's sense (spread and IGD are
minimised, hypervolume maximised).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.stats.wilcoxon import rank_sum_test

__all__ = ["ComparisonCell", "pairwise_comparison_table", "format_table"]

#: Indicator sense: +1 = larger is better, -1 = smaller is better.
METRIC_SENSE = {
    "spread": -1,
    "igd": -1,
    "hypervolume": +1,
    "epsilon": -1,
}


@dataclass(frozen=True)
class ComparisonCell:
    """Row-vs-column verdicts, one symbol per instance."""

    row: str
    column: str
    metric: str
    #: One of '▲', '▽', '–' per instance, in instance order.
    symbols: tuple[str, ...]
    #: Two-sided p-values per instance.
    p_values: tuple[float, ...]

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return "".join(self.symbols)


def _verdict(
    row_sample: np.ndarray,
    col_sample: np.ndarray,
    sense: int,
    alpha: float,
) -> tuple[str, float]:
    res = rank_sum_test(row_sample, col_sample)
    if not res.significant(alpha):
        return "–", res.p_value
    row_larger = res.a_tends_larger
    row_better = row_larger == (sense > 0)
    return ("▲" if row_better else "▽"), res.p_value


def pairwise_comparison_table(
    samples: Mapping[str, Mapping[str, Sequence[np.ndarray]]],
    metric: str,
    algorithms: Sequence[str] | None = None,
    alpha: float = 0.05,
) -> list[ComparisonCell]:
    """Build the upper-triangle comparison for one metric.

    ``samples[algorithm][metric]`` must be a sequence of per-instance
    sample arrays (one array of indicator values per problem instance —
    densities, in the paper) with identical instance ordering.
    """
    if metric not in METRIC_SENSE:
        raise ValueError(
            f"unknown metric {metric!r}; known: {sorted(METRIC_SENSE)}"
        )
    sense = METRIC_SENSE[metric]
    names = list(algorithms) if algorithms else list(samples.keys())
    cells: list[ComparisonCell] = []
    for i, row in enumerate(names):
        for column in names[i + 1 :]:
            row_instances = samples[row][metric]
            col_instances = samples[column][metric]
            if len(row_instances) != len(col_instances):
                raise ValueError(
                    f"instance count mismatch for {row} vs {column}"
                )
            symbols: list[str] = []
            p_values: list[float] = []
            for row_sample, col_sample in zip(row_instances, col_instances):
                symbol, p = _verdict(
                    np.asarray(row_sample), np.asarray(col_sample), sense, alpha
                )
                symbols.append(symbol)
                p_values.append(p)
            cells.append(
                ComparisonCell(
                    row=row,
                    column=column,
                    metric=metric,
                    symbols=tuple(symbols),
                    p_values=tuple(p_values),
                )
            )
    return cells


def format_table(
    cells: Sequence[ComparisonCell],
    metric: str,
) -> str:
    """Render cells as the paper's compact triangle (text)."""
    rows = sorted({c.row for c in cells})
    cols = sorted({c.column for c in cells})
    lines = [f"[{metric}]"]
    header = " " * 12 + "".join(f"{c:>14s}" for c in cols)
    lines.append(header)
    for r in rows:
        entries = []
        for c in cols:
            cell = next(
                (x for x in cells if x.row == r and x.column == c), None
            )
            entries.append("".join(cell.symbols) if cell else "")
        if any(entries):
            lines.append(f"{r:>12s}" + "".join(f"{e:>14s}" for e in entries))
    return "\n".join(lines)
