"""Independent-run campaigns.

Builds the tuning problem for a density, instantiates an algorithm with a
run-specific seed, and collects the :class:`AlgorithmResult` of each of
the K independent runs — the raw material for Figs. 6/7 and Table IV.

:func:`run_campaign` is expressed as a one-algorithm, one-density
:class:`~repro.campaigns.CampaignSpec` driven by the campaign executor —
the seed keying is unchanged, so results are bit-for-bit identical to
the historical hand-rolled loop, but the same spec can now be scaled,
parallelised and resumed through ``repro-aedb campaign``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import AEDBMLS, CellDEMLS
from repro.core.config import MLSConfig
from repro.experiments.config import ExperimentScale, get_scale
from repro.moo.algorithms import (
    PAES,
    SPEA2,
    CellDE,
    MOCell,
    NSGAII,
    RandomSearch,
)
from repro.moo.algorithms.base import AlgorithmResult
from repro.tuning import AEDBTuningProblem

__all__ = ["ALGORITHMS", "Campaign", "make_algorithm", "run_campaign"]

#: The algorithms of the paper's comparison, plus the random-search
#: ablation baseline, the paper's future-work hybrid (Sect. VII), and
#: the extension MOEAs (MOCell / SPEA2 / PAES).
ALGORITHMS = (
    "NSGAII",
    "CellDE",
    "AEDB-MLS",
    "RandomSearch",
    "CellDE-MLS",
    "MOCell",
    "SPEA2",
    "PAES",
)


def make_algorithm(
    name: str,
    problem: AEDBTuningProblem,
    scale: ExperimentScale,
    seed: int,
    mls_engine: str | None = None,
):
    """Instantiate one configured algorithm (uniform ``.run()`` API)."""
    if name == "NSGAII":
        return NSGAII(
            problem,
            max_evaluations=scale.moea_evaluations,
            population_size=scale.nsgaii_population,
            rng=seed,
        )
    if name == "CellDE":
        return CellDE(
            problem,
            max_evaluations=scale.moea_evaluations,
            grid_side=scale.cellde_grid_side,
            archive_capacity=scale.archive_capacity,
            rng=seed,
        )
    if name == "AEDB-MLS":
        config = scale.mls
        if mls_engine is not None and mls_engine != config.engine:
            config = MLSConfig(
                n_populations=config.n_populations,
                threads_per_population=config.threads_per_population,
                evaluations_per_thread=config.evaluations_per_thread,
                alpha=config.alpha,
                reset_iterations=config.reset_iterations,
                archive_capacity=config.archive_capacity,
                archive_bisections=config.archive_bisections,
                engine=mls_engine,
                max_init_attempts=config.max_init_attempts,
                criterion_weights=config.criterion_weights,
            )
        return AEDBMLS(problem, config, seed=seed)
    if name == "RandomSearch":
        return RandomSearch(
            problem,
            max_evaluations=scale.moea_evaluations,
            archive_capacity=scale.archive_capacity,
            rng=seed,
        )
    if name == "CellDE-MLS":
        return CellDEMLS(
            problem,
            max_evaluations=scale.moea_evaluations,
            grid_side=scale.cellde_grid_side,
            archive_capacity=scale.archive_capacity,
            rng=seed,
        )
    if name == "MOCell":
        return MOCell(
            problem,
            max_evaluations=scale.moea_evaluations,
            grid_side=scale.cellde_grid_side,
            archive_capacity=scale.archive_capacity,
            rng=seed,
        )
    if name == "SPEA2":
        return SPEA2(
            problem,
            max_evaluations=scale.moea_evaluations,
            population_size=scale.nsgaii_population,
            archive_size=scale.archive_capacity,
            rng=seed,
        )
    if name == "PAES":
        return PAES(
            problem,
            max_evaluations=scale.moea_evaluations,
            archive_capacity=scale.archive_capacity,
            rng=seed,
        )
    raise ValueError(f"unknown algorithm {name!r}; known: {ALGORITHMS}")


@dataclass
class Campaign:
    """All runs of one (algorithm, density) pair."""

    algorithm: str
    density: int
    results: list[AlgorithmResult] = field(default_factory=list)

    @property
    def fronts(self) -> list[list]:
        """Per-run solution fronts."""
        return [r.front for r in self.results]

    @property
    def runtimes(self) -> list[float]:
        """Per-run wall-clock times, seconds."""
        return [r.runtime_s for r in self.results]

    @property
    def evaluations(self) -> list[int]:
        """Per-run evaluation counts."""
        return [r.evaluations for r in self.results]


def run_campaign(
    algorithm: str,
    density: int,
    scale: ExperimentScale | None = None,
    n_runs: int | None = None,
    mls_engine: str | None = None,
    progress=None,
) -> Campaign:
    """Run K independent executions of one algorithm on one density.

    Each run gets a fresh problem instance (so evaluation counters are
    per-run) over the *same* evaluation networks (scenario construction is
    keyed by the master seed), and a run-specific algorithm seed — the
    seeds axis of a one-algorithm campaign spec.
    """
    # Local import: the campaign executor reaches back into this module
    # for make_algorithm, so the dependency must not be circular at
    # import time.
    from repro.campaigns import CampaignExecutor, CampaignSpec

    scale = scale or get_scale()
    runs = n_runs if n_runs is not None else scale.n_runs
    campaign = Campaign(algorithm=algorithm, density=density)
    if runs <= 0:
        return campaign
    spec = CampaignSpec(
        name=f"{algorithm}-d{density}",
        densities=(density,),
        n_seeds=runs,
        algorithms=(algorithm,),
        n_networks=scale.n_networks,
        master_seed=scale.master_seed,
        scale=scale.name,
    )
    executor = CampaignExecutor(
        spec, store=None, serial=True, scale=scale, mls_engine=mls_engine
    )
    callback = None
    if progress is not None:
        callback = lambda r: progress(  # noqa: E731 - tiny adapter
            algorithm, density, r.cell.seed_index, r.payloads[0]
        )
    report = executor.run(progress=callback)
    campaign.results = [r.payloads[0] for r in report.executed]
    return campaign
