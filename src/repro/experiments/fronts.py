"""Front post-processing: references, normalisation, indicators, domination.

Implements the paper's Sect. VI evaluation pipeline exactly:

1. per density, a **Reference Pareto front** is built from the best
   solutions of the two MOEAs over all runs (AGA-filtered union);
2. a **true-front approximation** from *all three* algorithms provides
   the normalisation bounds;
3. every per-run front is normalised and scored with spread (generalised,
   3 objectives), IGD (Eq. 3) and hypervolume;
4. mutual domination counts are taken between each algorithm's *merged*
   front and the reference front (the 13/54-style numbers of Sect. VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.experiments.runner import Campaign
from repro.moo.dominance import pareto_dominates
from repro.moo.indicators import (
    NormalizationBounds,
    generalized_spread,
    hypervolume,
    inverted_generational_distance,
)
from repro.moo.reference import merge_fronts, reference_front_aga
from repro.moo.solution import FloatSolution

__all__ = [
    "IndicatorSamples",
    "DensityArtifacts",
    "build_density_artifacts",
    "domination_counts",
    "front_matrix",
]


def front_matrix(front: Sequence[FloatSolution]) -> np.ndarray:
    """``(n, m)`` objective matrix of a solution front."""
    if not front:
        return np.empty((0, 0))
    return np.vstack([s.objectives for s in front])


def domination_counts(
    front_a: np.ndarray, front_b: np.ndarray
) -> tuple[int, int]:
    """(how many of b are dominated by some a, and vice versa)."""
    a = np.atleast_2d(front_a)
    b = np.atleast_2d(front_b)
    b_dominated = sum(
        1 for pb in b if any(pareto_dominates(pa, pb) for pa in a)
    )
    a_dominated = sum(
        1 for pa in a if any(pareto_dominates(pb, pa) for pb in b)
    )
    return int(b_dominated), int(a_dominated)


@dataclass
class IndicatorSamples:
    """Per-run indicator values for one (algorithm, density)."""

    algorithm: str
    density: int
    spread: list[float] = field(default_factory=list)
    igd: list[float] = field(default_factory=list)
    hypervolume: list[float] = field(default_factory=list)

    def as_mapping(self) -> dict[str, list[float]]:
        """{metric: samples} in Table IV metric naming."""
        return {
            "spread": self.spread,
            "igd": self.igd,
            "hypervolume": self.hypervolume,
        }


@dataclass
class DensityArtifacts:
    """Everything Sect. VI derives for one density."""

    density: int
    #: AGA-filtered MOEA union (the paper's Reference Pareto front).
    reference_front: list[FloatSolution]
    #: Normalisation fitted on the all-algorithm union.
    bounds: NormalizationBounds
    #: Per-algorithm indicator samples (keyed by algorithm name).
    indicators: dict[str, IndicatorSamples]
    #: Per-algorithm merged fronts (AGA-filtered, like the reference).
    merged_fronts: dict[str, list[FloatSolution]]
    #: Per-algorithm (reference points dominated, own points dominated).
    domination: dict[str, tuple[int, int]]

    def reference_matrix(self) -> np.ndarray:
        """Objective matrix of the reference front."""
        return front_matrix(self.reference_front)


def _feasible(front: Sequence[FloatSolution]) -> list[FloatSolution]:
    return [s for s in front if s.is_feasible]


def build_density_artifacts(
    campaigns: dict[str, Campaign],
    density: int,
    reference_algorithms: tuple[str, ...] = ("NSGAII", "CellDE"),
    archive_capacity: int = 100,
    hv_offset: float = 0.1,
) -> DensityArtifacts:
    """Run the full Sect. VI pipeline for one density.

    ``campaigns`` maps algorithm name to its :class:`Campaign` (all of the
    same density).  Infeasible solutions are dropped before scoring, as in
    the paper (they violate Eq. 1).
    """
    for name, campaign in campaigns.items():
        if campaign.density != density:
            raise ValueError(
                f"campaign {name} is for density {campaign.density}, "
                f"expected {density}"
            )

    feasible_runs = {
        name: [_feasible(front) for front in campaign.fronts]
        for name, campaign in campaigns.items()
    }

    # Reference front: the two MOEAs' best, AGA-bounded (paper Fig. 6).
    moea_fronts = [
        front
        for name in reference_algorithms
        if name in feasible_runs
        for front in feasible_runs[name]
    ]
    if not any(moea_fronts):
        raise ValueError("reference algorithms produced no feasible points")
    reference = reference_front_aga(
        moea_fronts, capacity=archive_capacity, n_objectives=3, rng=0
    )

    # Normalisation bounds: union over every algorithm (the paper's
    # "approximation of the true Pareto front").
    union = merge_fronts(
        front for fronts in feasible_runs.values() for front in fronts
    )
    bounds = NormalizationBounds.from_front(front_matrix(union))
    ref_norm = bounds.apply(front_matrix(reference))
    hv_ref_point = bounds.reference_point(hv_offset)

    indicators: dict[str, IndicatorSamples] = {}
    merged: dict[str, list[FloatSolution]] = {}
    domination: dict[str, tuple[int, int]] = {}
    reference_mat = front_matrix(reference)

    for name, fronts in feasible_runs.items():
        samples = IndicatorSamples(algorithm=name, density=density)
        for front in fronts:
            if not front:
                # A run with no feasible solution scores worst-possible.
                samples.spread.append(1.0)
                samples.igd.append(float("inf"))
                samples.hypervolume.append(0.0)
                continue
            norm = bounds.apply(front_matrix(front))
            samples.spread.append(generalized_spread(norm, ref_norm))
            samples.igd.append(
                inverted_generational_distance(norm, ref_norm)
            )
            samples.hypervolume.append(
                hypervolume(norm, hv_ref_point)
            )
        indicators[name] = samples

        merged_front = reference_front_aga(
            fronts, capacity=archive_capacity, n_objectives=3, rng=0
        )
        merged[name] = merged_front
        domination[name] = domination_counts(
            front_matrix(merged_front), reference_mat
        )

    return DensityArtifacts(
        density=density,
        reference_front=reference,
        bounds=bounds,
        indicators=indicators,
        merged_fronts=merged,
        domination=domination,
    )
