"""Table generators (paper Tables I and IV)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fronts import DensityArtifacts
from repro.sensitivity.analysis import (
    OBJECTIVE_NAMES,
    AEDBSensitivityStudy,
)
from repro.sensitivity.summary import Table1Cell, build_table1
from repro.stats.comparison import (
    ComparisonCell,
    pairwise_comparison_table,
)
from repro.tuning.evaluation import NetworkSetEvaluator

__all__ = [
    "Table1Data",
    "table1",
    "Table4Data",
    "table4",
]


# --------------------------------------------------------------------- #
# Table I                                                               #
# --------------------------------------------------------------------- #
@dataclass
class Table1Data:
    """Sensitivity summary for one density."""

    density: int
    cells: list[Table1Cell]

    def cell(self, parameter: str, objective: str) -> Table1Cell:
        """Look up one (parameter, objective) entry."""
        for c in self.cells:
            if c.parameter == parameter and c.objective == objective:
                return c
        raise KeyError((parameter, objective))

    def render(self) -> str:
        """The paper's Table I as aligned text."""
        params = sorted({c.parameter for c in self.cells})
        lines = [f"Table I summary (density {self.density} dev/km^2)"]
        header = f"{'parameter':>22s}" + "".join(
            f"{obj:>18s}" for obj in OBJECTIVE_NAMES
        )
        lines.append(header)
        for p in params:
            row = f"{p:>22s}"
            for obj in OBJECTIVE_NAMES:
                c = self.cell(p, obj)
                row += f"{c.arrow + ' ' + c.interaction:>18s}"
            lines.append(row)
        return "\n".join(lines)


def table1(
    density: int,
    n_networks: int = 3,
    n_samples: int = 65,
    probe_points: int = 9,
    master_seed: int = 0xAEDB,
) -> Table1Data:
    """Build Table I from a fresh sensitivity study."""
    evaluator = NetworkSetEvaluator.for_density(
        density, n_networks=n_networks, master_seed=master_seed
    )
    study = AEDBSensitivityStudy(evaluator, n_samples=n_samples)
    return Table1Data(
        density=density, cells=build_table1(study, probe_points=probe_points)
    )


# --------------------------------------------------------------------- #
# Table IV                                                              #
# --------------------------------------------------------------------- #
@dataclass
class Table4Data:
    """Pairwise Wilcoxon comparison across densities (Table IV)."""

    #: metric -> list of ComparisonCell (one symbol per density each).
    cells: dict[str, list[ComparisonCell]]
    densities: tuple[int, ...]
    algorithms: tuple[str, ...]

    def render(self) -> str:
        """Aligned text in the paper's triangle layout."""
        lines = [
            "Table IV — pairwise Wilcoxon rank-sum at 95% "
            f"(densities {', '.join(map(str, self.densities))})"
        ]
        for metric, cells in self.cells.items():
            lines.append(f"\n[{metric}]")
            for cell in cells:
                lines.append(
                    f"  {cell.row:>10s} vs {cell.column:<10s}: "
                    + " ".join(cell.symbols)
                )
        return "\n".join(lines)


def table4(
    artifacts_by_density: dict[int, DensityArtifacts],
    algorithms: tuple[str, ...] = ("CellDE", "NSGAII", "AEDB-MLS"),
    alpha: float = 0.05,
) -> Table4Data:
    """Build Table IV from per-density indicator samples."""
    densities = tuple(sorted(artifacts_by_density))
    # samples[algorithm][metric] = [per-density sample arrays]
    samples: dict[str, dict[str, list]] = {
        name: {"spread": [], "igd": [], "hypervolume": []}
        for name in algorithms
    }
    for density in densities:
        artifacts = artifacts_by_density[density]
        for name in algorithms:
            mapping = artifacts.indicators[name].as_mapping()
            for metric in ("spread", "igd", "hypervolume"):
                finite = [v for v in mapping[metric] if v == v and v != float("inf")]
                samples[name][metric].append(finite)

    cells = {
        metric: pairwise_comparison_table(
            samples, metric, algorithms=algorithms, alpha=alpha
        )
        for metric in ("spread", "igd", "hypervolume")
    }
    return Table4Data(cells=cells, densities=densities, algorithms=algorithms)
