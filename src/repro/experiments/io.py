"""JSON persistence for campaign artefacts.

Runs are expensive; benchmarks re-render tables and figures from saved
artefacts when available.  The format is deliberately plain JSON: solution
fronts as nested lists, indicator samples as arrays — stable across
versions and diff-able.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.experiments.fronts import IndicatorSamples
from repro.moo.solution import FloatSolution

__all__ = [
    "front_to_jsonable",
    "front_from_jsonable",
    "save_artifacts",
    "load_artifacts",
]


def front_to_jsonable(front: list[FloatSolution]) -> list[dict]:
    """Serialise a solution front to plain data."""
    return [
        {
            "variables": [float(v) for v in s.variables],
            "objectives": [float(v) for v in s.objectives],
            "constraint_violation": float(s.constraint_violation),
        }
        for s in front
    ]


def front_from_jsonable(payload: list[dict]) -> list[FloatSolution]:
    """Rebuild a solution front from :func:`front_to_jsonable` output."""
    out = []
    for row in payload:
        sol = FloatSolution(
            np.asarray(row["variables"], dtype=float),
            len(row["objectives"]),
        )
        sol.objectives = np.asarray(row["objectives"], dtype=float)
        sol.constraint_violation = float(row["constraint_violation"])
        out.append(sol)
    return out


def save_artifacts(path: str | Path, artifacts_by_density: dict) -> None:
    """Persist per-density artefacts (fronts + indicator samples)."""
    payload = {}
    for density, art in artifacts_by_density.items():
        payload[str(density)] = {
            "density": art.density,
            "reference_front": front_to_jsonable(art.reference_front),
            "merged_fronts": {
                name: front_to_jsonable(front)
                for name, front in art.merged_fronts.items()
            },
            "indicators": {
                name: samples.as_mapping()
                for name, samples in art.indicators.items()
            },
            "domination": {
                name: list(counts) for name, counts in art.domination.items()
            },
        }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_artifacts(path: str | Path) -> dict:
    """Load what :func:`save_artifacts` wrote (plain dict form).

    Returns ``{density: {"reference_front": [...], "indicators": {...},
    ...}}`` with fronts rebuilt as :class:`FloatSolution` lists and
    indicator samples as :class:`IndicatorSamples`.
    """
    raw = json.loads(Path(path).read_text())
    out: dict[int, dict] = {}
    for key, entry in raw.items():
        density = int(key)
        indicators = {}
        for name, mapping in entry["indicators"].items():
            samples = IndicatorSamples(algorithm=name, density=density)
            samples.spread = [float(v) for v in mapping["spread"]]
            samples.igd = [float(v) for v in mapping["igd"]]
            samples.hypervolume = [float(v) for v in mapping["hypervolume"]]
            indicators[name] = samples
        out[density] = {
            "density": density,
            "reference_front": front_from_jsonable(entry["reference_front"]),
            "merged_fronts": {
                name: front_from_jsonable(front)
                for name, front in entry["merged_fronts"].items()
            },
            "indicators": indicators,
            "domination": {
                name: tuple(counts)
                for name, counts in entry["domination"].items()
            },
        }
    return out
